package detect

import (
	"fmt"
	"math/rand"
	"os"
	"testing"
	"time"
)

// benchSet builds a set in bounded-history mode (the daemon's steady
// state) over the scaled-down test configs.
func benchSet(b testing.TB, kinds ...string) *MonitorSet {
	set, err := New(kinds, testConfig())
	if err != nil {
		b.Fatal(err)
	}
	return set
}

// BenchmarkMonitorSetAdd measures the per-sample cost of the set across
// suite shapes — the number the ≤2.5× two-detector budget is asserted
// against in TestMonitorSetOverheadBudget.
func BenchmarkMonitorSetAdd(b *testing.B) {
	shapes := [][]string{
		{KindHolder},
		{KindHolder, KindEntropy},
		{KindHolder, KindEntropy, KindAdaptive},
	}
	for _, kinds := range shapes {
		b.Run(fmt.Sprintf("detectors=%d", len(kinds)), func(b *testing.B) {
			set := benchSet(b, kinds...)
			rng := rand.New(rand.NewSource(1))
			next := func() (float64, float64) {
				return 100 + rng.Float64() - 0.5, 5 + 0.05*(rng.Float64()-0.5)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				free, swap := next()
				set.Add(free, swap)
			}
		})
	}
}

// TestMonitorSetSteadyStateAllocs pins the hot path: a quiet stream
// through the full suite allocates nothing per sample.
func TestMonitorSetSteadyStateAllocs(t *testing.T) {
	set := benchSet(t, KindHolder, KindEntropy, KindAdaptive)
	rng := rand.New(rand.NewSource(2))
	// Warm past every warmup boundary so ring/history growth is done.
	for i := 0; i < 4000; i++ {
		set.Add(100+rng.Float64()-0.5, 5+0.05*(rng.Float64()-0.5))
	}
	if avg := testing.AllocsPerRun(5000, func() {
		set.Add(100+rng.Float64()-0.5, 5+0.05*(rng.Float64()-0.5))
	}); avg != 0 {
		t.Fatalf("steady-state Add allocates %v times per sample, want 0", avg)
	}
}

// TestMonitorSetOverheadBudget asserts the documented cost envelope: a
// two-detector set (holder+entropy) stays within 2.5× the single-holder
// per-sample cost. Timing assertions are noisy under parallel test load,
// so the check runs in isolation via `make bench-smoke`
// (AGINGMF_DETECT_BUDGET=1).
func TestMonitorSetOverheadBudget(t *testing.T) {
	if os.Getenv("AGINGMF_DETECT_BUDGET") == "" {
		t.Skip("timing assertion runs in isolation via `make bench-smoke` (AGINGMF_DETECT_BUDGET=1)")
	}
	const samples = 200000
	run := func(kinds ...string) time.Duration {
		set := benchSet(t, kinds...)
		rng := rand.New(rand.NewSource(3))
		pairs := make([][2]float64, samples)
		for i := range pairs {
			pairs[i] = [2]float64{100 + rng.Float64() - 0.5, 5 + 0.05*(rng.Float64()-0.5)}
		}
		start := time.Now()
		for _, p := range pairs {
			set.Add(p[0], p[1])
		}
		return time.Since(start)
	}
	// Interleave five rounds and keep the fastest of each shape, damping
	// scheduler noise the same way the tracing budget test does; the
	// first round additionally serves as a warmup for both shapes.
	single, dual := time.Duration(1<<62), time.Duration(1<<62)
	for round := 0; round < 5; round++ {
		if d := run(KindHolder); d < single {
			single = d
		}
		if d := run(KindHolder, KindEntropy); d < dual {
			dual = d
		}
	}
	ratio := float64(dual) / float64(single)
	t.Logf("holder: %v for %d samples; holder+entropy: %v; ratio %.2fx", single, samples, dual, ratio)
	if ratio > 2.5 {
		t.Fatalf("two-detector set costs %.2fx the single-detector baseline, budget is 2.5x", ratio)
	}
}
