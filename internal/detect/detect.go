// Package detect turns the repository from a single-method reproduction
// into a detector comparison platform: it defines a pluggable Detector
// interface over the paired free-memory/used-swap sample stream and a
// MonitorSet that runs N detectors side by side on one source, labeling
// every verdict with the detector that produced it.
//
// Three detectors are provided:
//
//   - "holder" wraps the paper's Hölder-volatility pipeline (the
//     aging.DualMonitor stage composition) unchanged — the reference
//     method of the DSN 2003 study.
//   - "entropy" is a CHAOS-style sliding-window multiscale sample-entropy
//     detector (Chen et al., arXiv:1502.00781): rising irregularity of
//     the resource series against a frozen healthy baseline signals
//     aging-oriented failure, often earlier than volatility jumps.
//   - "adaptive" couples internal/changepoint regime detection on the raw
//     counters to Monitor.RecalibrateBaseline (Moura et al.,
//     arXiv:2511.03103): after a confirmed workload shift the Hölder
//     baselines re-anchor instead of alarming forever against the old
//     regime.
//
// Every detector persists versioned gob state (MonitorSet snapshots are
// forward-versioned, and legacy aging.DualMonitor blobs restore into a
// holder-only set), exposes nil-safe instrumentation, and accepts an
// optional *aging.StageNanos so the sampled pipeline tracer can attribute
// push time to stages.
package detect

import (
	"errors"
	"fmt"
	"strings"

	"agingmf/internal/aging"
	"agingmf/internal/obs"
)

// Errors returned by the package.
var (
	// ErrBadConfig reports invalid detector parameters.
	ErrBadConfig = errors.New("detect: bad configuration")
	// ErrBadState reports a snapshot that cannot be restored.
	ErrBadState = errors.New("detect: bad state")
	// ErrUnknownKind reports an unrecognized detector name.
	ErrUnknownKind = errors.New("detect: unknown detector")
)

// Detector kinds, as spelled in -detectors flags, alert labels and
// persisted state.
const (
	// KindHolder is the paper's Hölder-volatility pipeline.
	KindHolder = "holder"
	// KindEntropy is the multiscale sample-entropy detector.
	KindEntropy = "entropy"
	// KindAdaptive is the workload-shift-adaptive Hölder pipeline.
	KindAdaptive = "adaptive"
)

// Event kinds.
const (
	// EventJump is a detection alarm: the detector considers the counter's
	// behaviour to have shifted toward failure.
	EventJump = "jump"
	// EventRecalibrate records that a detector re-anchored its baseline
	// after a confirmed workload shift (adaptive detector only). It is an
	// informational event, not an alarm.
	EventRecalibrate = "recalibrate"
)

// Sample is one paired observation of the two instrumented counters.
type Sample struct {
	// Free is the available-memory counter value.
	Free float64
	// Swap is the used-swap counter value.
	Swap float64
}

// Event is one detector verdict worth reporting: an alarm or a baseline
// recalibration, attributed to the detector and counter that produced it.
type Event struct {
	// Detector is the emitting detector's kind ("holder", ...).
	Detector string
	// Kind is EventJump or EventRecalibrate.
	Kind string
	// Counter identifies the counter stream the event belongs to.
	Counter aging.CounterKind
	// Sample is the raw sample index at which the event fired.
	Sample int
	// Value is the detector-specific magnitude at the event (moving
	// volatility for holder/adaptive jumps, window entropy for entropy
	// jumps, raw counter value for recalibrations).
	Value float64
	// Score is the detector statistic that crossed the threshold.
	Score float64
}

// Verdict is the outcome of pushing one sample into a detector.
type Verdict struct {
	// Events holds the events fired by this sample, in order (nil on the
	// steady-state path).
	Events []Event
	// Phase is the detector's aging assessment after the sample.
	Phase aging.Phase
}

// Detector is one online aging detector over the paired counter stream.
// Implementations are not safe for concurrent use; the ingest registry
// confines each set to its shard goroutine.
type Detector interface {
	// Kind returns the detector's registered name.
	Kind() string
	// Push consumes one sample pair. A non-nil tm accumulates per-stage
	// push time for the sampled tracer; detection state must be
	// byte-for-byte identical either way.
	Push(s Sample, tm *aging.StageNanos) Verdict
	// Phase returns the current aging assessment.
	Phase() aging.Phase
	// SamplesSeen returns how many sample pairs have been consumed.
	SamplesSeen() int
	// Jumps returns how many jump events the detector has emitted.
	Jumps() int
	// Recalibrations returns how many baseline recalibrations the
	// detector has performed (zero for non-adaptive detectors).
	Recalibrations() int
	// LastStats returns the latest per-counter detector statistics (the
	// flight recorder's score columns).
	LastStats() (freeStat, swapStat float64)
	// SaveState serializes the detector; the blob is self-describing (it
	// embeds the configuration) and versioned.
	SaveState() ([]byte, error)
	// Instrument attaches telemetry to reg. A nil receiver or registry is
	// a no-op, so callers never need nil checks.
	Instrument(reg *obs.Registry)
}

// ColumnPusher is the batch-first capability of a Detector: consume one
// whole column per counter (free[i] and swap[i] are sample pair i) in a
// single call, without per-sample interface dispatch. Implementations
// must be state- and event-equivalent to pushing the pairs one at a
// time with a nil *aging.StageNanos — the columnar parity tests assert
// byte-identical SaveState blobs — and events must be reported in
// per-sample arrival order. The traced (non-nil tm) path deliberately
// stays per-sample: stage timing is a per-sample annotation.
type ColumnPusher interface {
	// PushColumns consumes len(free) == len(swap) sample pairs and
	// returns the verdict after the last pair, with every event fired
	// along the way.
	PushColumns(free, swap []float64) Verdict
}

// Config carries the per-kind detector configurations of a MonitorSet.
type Config struct {
	// Monitor configures the holder detector's Hölder pipeline (and, via
	// Adaptive.Monitor when that is zero, the adaptive detector's).
	Monitor aging.Config
	// Entropy configures the entropy detector.
	Entropy EntropyConfig
	// Adaptive configures the adaptive detector. A zero Adaptive.Monitor
	// inherits Monitor.
	Adaptive AdaptiveConfig
}

// DefaultConfig returns the detector suite defaults: the experiments'
// monitor settings for holder and adaptive, and the entropy defaults.
func DefaultConfig() Config {
	return Config{
		Monitor:  aging.DefaultConfig(),
		Entropy:  DefaultEntropyConfig(),
		Adaptive: DefaultAdaptiveConfig(),
	}
}

// withDefaults fills zero-valued sub-configurations.
func (c Config) withDefaults() Config {
	if c.Monitor == (aging.Config{}) {
		c.Monitor = aging.DefaultConfig()
	}
	if c.Entropy == (EntropyConfig{}) {
		c.Entropy = DefaultEntropyConfig()
	}
	if c.Adaptive == (AdaptiveConfig{}) {
		c.Adaptive = DefaultAdaptiveConfig()
	}
	if c.Adaptive.Monitor == (aging.Config{}) {
		c.Adaptive.Monitor = c.Monitor
	}
	return c
}

// newDetector constructs one detector by kind.
func (c Config) newDetector(kind string) (Detector, error) {
	switch kind {
	case KindHolder:
		return NewHolder(c.Monitor)
	case KindEntropy:
		return NewEntropy(c.Entropy)
	case KindAdaptive:
		return NewAdaptive(c.Adaptive)
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownKind, kind)
	}
}

// ParseKinds parses a comma-separated detector list ("holder,entropy")
// into the canonical kind slice, rejecting unknown names and duplicates.
// An empty spec yields the default suite: holder only.
func ParseKinds(spec string) ([]string, error) {
	if strings.TrimSpace(spec) == "" {
		return []string{KindHolder}, nil
	}
	var kinds []string
	for _, part := range strings.Split(spec, ",") {
		kind := strings.TrimSpace(part)
		switch kind {
		case KindHolder, KindEntropy, KindAdaptive:
		case "":
			return nil, fmt.Errorf("detect: empty detector name in %q: %w", spec, ErrBadConfig)
		default:
			return nil, fmt.Errorf("%w: %q", ErrUnknownKind, kind)
		}
		for _, seen := range kinds {
			if seen == kind {
				return nil, fmt.Errorf("detect: duplicate detector %q: %w", kind, ErrBadConfig)
			}
		}
		kinds = append(kinds, kind)
	}
	return kinds, nil
}

// phaseOfJumps maps an emitted-jump count onto the paper's phase ladder:
// no jumps is healthy, one marks aging onset, two or more mean a crash is
// imminent.
func phaseOfJumps(n int) aging.Phase {
	switch {
	case n == 0:
		return aging.PhaseHealthy
	case n == 1:
		return aging.PhaseAgingOnset
	default:
		return aging.PhaseCrashImminent
	}
}

// maxPhase returns the more advanced of two phases.
func maxPhase(a, b aging.Phase) aging.Phase {
	if a > b {
		return a
	}
	return b
}
