package detect

import (
	"math"
	"math/rand"
	"testing"
)

// TestSampEn sanity-checks the statistic: white noise is maximally
// irregular, a periodic series is more regular, and degenerate inputs
// stay finite.
func TestSampEn(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	noise := make([]float64, 64)
	sine := make([]float64, 64)
	for i := range noise {
		noise[i] = rng.Float64()
		sine[i] = math.Sin(2 * math.Pi * float64(i) / 8)
	}
	en := sampEn(noise, 2, 0.2)
	es := sampEn(sine, 2, 0.2)
	if math.IsNaN(en) || math.IsInf(en, 0) || math.IsNaN(es) || math.IsInf(es, 0) {
		t.Fatalf("non-finite entropy: noise %v, sine %v", en, es)
	}
	if en <= es {
		t.Errorf("SampEn(noise)=%v <= SampEn(sine)=%v; irregularity ordering violated", en, es)
	}
	if got := sampEn([]float64{1, 2}, 2, 0.2); got != 0 {
		t.Errorf("too-short series: got %v, want 0", got)
	}
}

// TestSampEnPrunedMatchesNaive: the sort-pruned hot path must agree with
// the quadratic reference on every input shape — random noise, trends,
// constant runs, repeated values (sort ties), and non-finite
// contamination (which takes the reference fallback).
func TestSampEnPrunedMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sc := newSampEnScratch(0)
	check := func(name string, x []float64, m int, r float64) {
		t.Helper()
		want := sampEnNaive(x, m, r)
		got := sampEnPruned(x, m, r, &sc)
		if got != want {
			t.Errorf("%s (m=%d r=%v): pruned %v != naive %v", name, m, r, got, want)
		}
	}
	for trial := 0; trial < 50; trial++ {
		n := 8 + rng.Intn(120)
		x := make([]float64, n)
		for i := range x {
			switch trial % 4 {
			case 0: // white noise
				x[i] = rng.Float64()
			case 1: // trend + noise
				x[i] = float64(i)*0.05 + 0.3*rng.Float64()
			case 2: // quantized (many exact sort ties)
				x[i] = float64(rng.Intn(5))
			default: // near-constant
				x[i] = 7 + 1e-9*rng.Float64()
			}
		}
		m := 1 + rng.Intn(3)
		r := []float64{0.01, 0.1, 0.5, 2}[rng.Intn(4)]
		check("random", x, m, r)
	}
	nan := []float64{1, 2, math.NaN(), 4, 5, 6, 7, 8, 9, 10}
	check("nan", nan, 2, 0.5)
	inf := []float64{1, 2, math.Inf(1), 4, 5, 6, math.Inf(1), 8, 9, 10}
	check("inf", inf, 2, 0.5)
	check("inf-r", []float64{1, 2, 3, 4, 5, 6, 7, 8}, 2, math.Inf(1))
}

// TestEntropyQuietOnStationary: a stationary noisy stream must not alarm.
func TestEntropyQuietOnStationary(t *testing.T) {
	e, err := NewEntropy(testEntropyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range noisePairs(7, 4000, 100, 5, 1) {
		v := e.Push(Sample{Free: p[0], Swap: p[1]}, nil)
		for _, ev := range v.Events {
			t.Fatalf("stationary stream alarmed: %+v", ev)
		}
	}
	if e.Jumps() != 0 {
		t.Fatalf("stationary stream produced %d jumps", e.Jumps())
	}
}

// TestEntropyDetectsRegimeChange: when the free stream's character
// changes from noise to a smooth exhaustion ramp, the window entropy
// collapses away from the frozen baseline and the detector alarms on the
// free counter.
func TestEntropyDetectsRegimeChange(t *testing.T) {
	e, err := NewEntropy(testEntropyConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	const n, change = 2000, 1000
	firstAlarm := -1
	for i := 0; i < n; i++ {
		var free float64
		if i < change {
			free = 100 + (rng.Float64() - 0.5)
		} else {
			// Leak-driven exhaustion: smooth decline, vanishing noise.
			free = 100 - 0.05*float64(i-change) + 0.001*(rng.Float64()-0.5)
		}
		swap := 5 + 0.5*(rng.Float64()-0.5)
		v := e.Push(Sample{Free: free, Swap: swap}, nil)
		for _, ev := range v.Events {
			if ev.Counter.String() != "free-memory" {
				t.Fatalf("alarm on wrong counter: %+v", ev)
			}
			if i < change {
				t.Fatalf("false alarm at sample %d: %+v", i, ev)
			}
			if firstAlarm < 0 {
				firstAlarm = i
			}
		}
	}
	if firstAlarm < 0 {
		t.Fatal("entropy detector never alarmed on the regime change")
	}
	if e.Phase() == 0 {
		t.Fatal("phase unset after alarms")
	}
}

// TestEntropyRefractory: consecutive alarms are separated by at least
// Refractory entropy evaluations (in raw samples: Refractory * Stride).
func TestEntropyRefractory(t *testing.T) {
	cfg := testEntropyConfig()
	e, err := NewEntropy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	var alarmSamples []int
	for i := 0; i < 4000; i++ {
		var free float64
		if i < 1000 {
			free = 100 + (rng.Float64() - 0.5)
		} else {
			free = 100 - 0.05*float64(i-1000) + 0.001*(rng.Float64()-0.5)
		}
		v := e.Push(Sample{Free: free, Swap: 5}, nil)
		for _, ev := range v.Events {
			alarmSamples = append(alarmSamples, ev.Sample)
		}
	}
	if len(alarmSamples) < 2 {
		t.Skipf("only %d alarms; refractory spacing not exercised", len(alarmSamples))
	}
	minGap := (cfg.Refractory + 1) * cfg.Stride
	for i := 1; i < len(alarmSamples); i++ {
		if gap := alarmSamples[i] - alarmSamples[i-1]; gap < minGap {
			t.Errorf("alarms %d and %d only %d samples apart, refractory demands >= %d",
				alarmSamples[i-1], alarmSamples[i], gap, minGap)
		}
	}
}

// TestEntropyRoundTrip: mid-stream save/restore continues byte-for-byte.
func TestEntropyRoundTrip(t *testing.T) {
	e, err := NewEntropy(testEntropyConfig())
	if err != nil {
		t.Fatal(err)
	}
	trace := noisePairs(13, 600, 100, 5, 1)
	for _, p := range trace[:300] {
		e.Push(Sample{Free: p[0], Swap: p[1]}, nil)
	}
	blob, err := e.SaveState()
	if err != nil {
		t.Fatal(err)
	}
	r, err := RestoreEntropy(blob)
	if err != nil {
		t.Fatal(err)
	}
	if r.SamplesSeen() != 300 {
		t.Fatalf("restored SamplesSeen %d, want 300", r.SamplesSeen())
	}
	for _, p := range trace[300:] {
		s := Sample{Free: p[0], Swap: p[1]}
		e.Push(s, nil)
		r.Push(s, nil)
	}
	b1, err := e.SaveState()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := r.SaveState()
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatal("entropy states diverged after identical continuation")
	}
}

func TestEntropyConfigValidation(t *testing.T) {
	bad := []func(*EntropyConfig){
		func(c *EntropyConfig) { c.Window = 4 },
		func(c *EntropyConfig) { c.Stride = 0 },
		func(c *EntropyConfig) { c.MaxScale = 0 },
		func(c *EntropyConfig) { c.MaxScale = 32 }, // window too short at that scale
		func(c *EntropyConfig) { c.M = 0 },
		func(c *EntropyConfig) { c.RFraction = 0 },
		func(c *EntropyConfig) { c.BaselineEvals = 1 },
		func(c *EntropyConfig) { c.K = 0 },
		func(c *EntropyConfig) { c.Refractory = -1 },
	}
	for i, mutate := range bad {
		cfg := DefaultEntropyConfig()
		mutate(&cfg)
		if _, err := NewEntropy(cfg); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
}
