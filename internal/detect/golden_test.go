package detect

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"agingmf/internal/aging"
)

// Gob-compatibility golden tests for the MonitorSet snapshot contract:
// a holder-only set serializes as the RAW aging.DualMonitor blob, so
// pre-MonitorSet snapshots restore into MonitorSet{holder} and a
// restored set re-saves byte-identically. Two committed fixtures pin
// this in both directions:
//
//   - internal/aging/testdata/dual_v0.gob — written by the pre-
//     internal/stream (v0) DualMonitor, long before MonitorSet existed;
//   - testdata/dual_v1.gob — written by the DualMonitor current when
//     internal/detect was introduced (see testdata/gen_fixtures.go).
//
// Neither fixture may ever be regenerated.

// fixtureTrace duplicates the generator in testdata/gen_fixtures.go (and
// its internal/aging siblings); the copies must stay identical or the
// fixtures become unverifiable.
func fixtureTrace(seed uint64, n int) []float64 {
	x := seed
	rnd := func() float64 {
		x = x*6364136223846793005 + 1442695040888963407
		return float64(x>>11) / (1 << 53)
	}
	out := make([]float64, n)
	level := 0.0
	for i := range out {
		amp := 0.05
		if i >= n/2 {
			amp = 1.5
		}
		if (i/16)%2 == 0 {
			level += 0.01
			out[i] = level
		} else {
			out[i] = level + amp*(rnd()-0.5)
		}
	}
	return out
}

// fixtureConfig duplicates the config in testdata/gen_fixtures.go.
func fixtureConfig(kind aging.DetectorKind, historyLimit int) aging.Config {
	return aging.Config{
		MinRadius:        2,
		MaxRadius:        8,
		VolatilityWindow: 32,
		Detector:         kind,
		ShewhartK:        3,
		DetectorWarmup:   64,
		CUSUMDrift:       0.5,
		CUSUMThreshold:   20,
		PHDelta:          0.5,
		PHLambda:         50,
		EWMALambda:       0.05,
		EWMAK:            6,
		Refractory:       32,
		HistoryLimit:     historyLimit,
	}
}

const (
	fixtureLen   = 800
	fixtureSplit = 500
)

// goldenDualFixtures lists the committed DualMonitor blobs and the trace
// seeds they were generated from.
var goldenDualFixtures = []struct {
	name               string
	path               string
	freeSeed, swapSeed uint64
}{
	{"legacy_v0", filepath.Join("..", "aging", "testdata", "dual_v0.gob"), 21, 22},
	{"v1", filepath.Join("testdata", "dual_v1.gob"), 51, 52},
}

// TestGoldenDualRestoresIntoHolderSet restores each committed DualMonitor
// blob into a MonitorSet, demands a holder-only set that resumes exactly
// where the snapshot stopped, and verifies the round-trip: continuing the
// fixture trace past the split must match a fresh uninterrupted set
// event-for-event, and the continued set must re-serialize byte-identical
// to the fresh one — in the raw legacy DualMonitor format.
func TestGoldenDualRestoresIntoHolderSet(t *testing.T) {
	for _, fx := range goldenDualFixtures {
		t.Run(fx.name, func(t *testing.T) {
			blob, err := os.ReadFile(fx.path)
			if err != nil {
				t.Fatalf("read fixture: %v", err)
			}

			// The raw DualMonitor blob must route to the holder-only path.
			kinds, states, err := DecodeStates(blob)
			if err != nil {
				t.Fatalf("decode states: %v", err)
			}
			if len(kinds) != 1 || kinds[0] != KindHolder {
				t.Fatalf("decoded kinds = %v, want [%s]", kinds, KindHolder)
			}
			if !bytes.Equal(states[0], blob) {
				t.Fatal("holder state should be the legacy blob itself")
			}

			restored, err := RestoreMonitorSet(blob)
			if err != nil {
				t.Fatalf("restore into MonitorSet: %v", err)
			}
			if restored.Len() != 1 || restored.Detector(0).Kind() != KindHolder {
				t.Fatalf("restored kinds = %v, want holder only", restored.Kinds())
			}
			if restored.SamplesSeen() != fixtureSplit {
				t.Fatalf("restored SamplesSeen = %d, want %d", restored.SamplesSeen(), fixtureSplit)
			}
			// The fixtures were generated with jumps fired before the
			// split, so refractory and phase state is exercised.
			if restored.Phase() == aging.PhaseHealthy {
				t.Fatal("fixture should have jumped before the split")
			}

			fresh, err := New([]string{KindHolder}, Config{
				Monitor: fixtureConfig(aging.DetectShewhart, 0),
			})
			if err != nil {
				t.Fatal(err)
			}
			free := fixtureTrace(fx.freeSeed, fixtureLen)
			swap := fixtureTrace(fx.swapSeed, fixtureLen)
			for i := 0; i < fixtureLen; i++ {
				ff := fresh.Add(free[i], swap[i])
				if i < fixtureSplit {
					continue
				}
				fr := restored.Add(free[i], swap[i])
				if len(ff) != len(fr) {
					t.Fatalf("event divergence at pair %d: %d vs %d", i, len(ff), len(fr))
				}
				for k := range ff {
					if ff[k] != fr[k] {
						t.Fatalf("event payload divergence at pair %d: %+v vs %+v", i, ff[k], fr[k])
					}
				}
			}
			if fresh.Phase() != restored.Phase() {
				t.Fatalf("phase divergence: %v vs %v", fresh.Phase(), restored.Phase())
			}

			freshBlob, err := fresh.SaveState()
			if err != nil {
				t.Fatal(err)
			}
			restoredBlob, err := restored.SaveState()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(freshBlob, restoredBlob) {
				t.Fatal("continued golden state and uninterrupted state serialize differently")
			}
			// The holder-only set must keep emitting the raw legacy format:
			// a plain DualMonitor restore of the re-saved blob must succeed.
			if _, err := aging.RestoreDualMonitor(restoredBlob); err != nil {
				t.Fatalf("re-saved holder-only set is not a legacy DualMonitor blob: %v", err)
			}
		})
	}
}
