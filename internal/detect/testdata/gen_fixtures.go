//go:build ignore

// gen_fixtures writes the committed dual-monitor snapshot fixture used by
// the MonitorSet gob-compatibility golden tests. It was run ONCE against
// the aging.DualMonitor implementation current when internal/detect was
// introduced (the "v1" era); the committed .gob file is the contract and
// must NOT be regenerated — rerunning this program against a newer
// implementation would silently replace the blob the tests exist to
// protect. (The older pre-MonitorSet blob, internal/aging/testdata/
// dual_v0.gob, is covered by the same golden tests and is likewise
// frozen.)
//
// Usage (from the repository root, historical):
//
//	go run ./internal/detect/testdata/gen_fixtures.go
//
// The deterministic trace generator below is duplicated in
// internal/aging/testdata/gen_fixtures.go, internal/aging/golden_test.go,
// internal/ingest/golden_test.go and internal/detect/golden_test.go; the
// copies must stay identical.
package main

import (
	"fmt"
	"os"

	"agingmf/internal/aging"
)

// fixtureTrace is a tiny self-contained PRNG trace: smooth ramp blocks
// alternating with noisy blocks whose amplitude steps up at n/2, so the
// Hölder volatility jumps mid-trace.
func fixtureTrace(seed uint64, n int) []float64 {
	x := seed
	rnd := func() float64 {
		x = x*6364136223846793005 + 1442695040888963407
		return float64(x>>11) / (1 << 53)
	}
	out := make([]float64, n)
	level := 0.0
	for i := range out {
		amp := 0.05
		if i >= n/2 {
			amp = 1.5
		}
		if (i/16)%2 == 0 {
			level += 0.01
			out[i] = level
		} else {
			out[i] = level + amp*(rnd()-0.5)
		}
	}
	return out
}

// fixtureConfig mirrors the config constructors in the golden tests.
func fixtureConfig(kind aging.DetectorKind, historyLimit int) aging.Config {
	return aging.Config{
		MinRadius:        2,
		MaxRadius:        8,
		VolatilityWindow: 32,
		Detector:         kind,
		ShewhartK:        3,
		DetectorWarmup:   64,
		CUSUMDrift:       0.5,
		CUSUMThreshold:   20,
		PHDelta:          0.5,
		PHLambda:         50,
		EWMALambda:       0.05,
		EWMAK:            6,
		Refractory:       32,
		HistoryLimit:     historyLimit,
	}
}

const (
	fixtureLen   = 800
	fixtureSplit = 500
)

func main() {
	dual, err := aging.NewDualMonitor(fixtureConfig(aging.DetectShewhart, 0))
	check(err)
	free := fixtureTrace(51, fixtureLen)
	swap := fixtureTrace(52, fixtureLen)
	for i := 0; i < fixtureSplit; i++ {
		dual.Add(free[i], swap[i])
	}
	blob, err := dual.SaveState()
	check(err)
	check(os.WriteFile("internal/detect/testdata/dual_v1.gob", blob, 0o644))
	fmt.Printf("dual_v1.gob: %d samples, phase %v, %d bytes\n",
		dual.SamplesSeen(), dual.Phase(), len(blob))
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
