package detect

import (
	"fmt"
	"math"
	"math/bits"

	"agingmf/internal/aging"
	"agingmf/internal/obs"
)

// EntropyConfig parameterizes the multiscale sample-entropy detector.
// All fields are value types so configurations compare and gob-encode
// trivially.
type EntropyConfig struct {
	// Window is the sliding window of raw samples per counter over which
	// entropy is evaluated.
	Window int
	// Stride is how many raw samples elapse between entropy evaluations
	// once the window is full; it amortizes the O(Window²) SampEn cost.
	Stride int
	// MaxScale is the coarsest coarse-graining scale: the multiscale
	// entropy sums SampEn over scales 1..MaxScale (Costa et al.).
	MaxScale int
	// M is the SampEn template length.
	M int
	// RFraction sets the match tolerance r = RFraction * std(window).
	RFraction float64
	// BaselineEvals is how many entropy evaluations are frozen into the
	// healthy baseline before thresholding starts.
	BaselineEvals int
	// K is the alarm threshold in baseline standard deviations.
	K float64
	// TwoSided also alarms on entropy rising above the baseline when
	// true. The default is one-sided (collapse only): aging turns the
	// resource series deterministic — trends, saturation, periodic
	// thrashing — which drives entropy down, while the sample-entropy
	// estimator's no-match ceiling makes its upper tail heavy on healthy
	// noise.
	TwoSided bool
	// Refractory suppresses further alarms for this many entropy
	// evaluations after each alarm.
	Refractory int
}

// DefaultEntropyConfig returns the CHAOS-style defaults: SampEn(m=2,
// r=0.3σ) over a 64-sample window at scales 1..2, evaluated every 16
// samples, alarming 4 baseline sigmas below a 24-evaluation frozen
// baseline.
func DefaultEntropyConfig() EntropyConfig {
	return EntropyConfig{
		Window:        64,
		Stride:        16,
		MaxScale:      2,
		M:             2,
		RFraction:     0.3,
		BaselineEvals: 24,
		K:             4,
		Refractory:    8,
	}
}

func (c EntropyConfig) validate() error {
	switch {
	case c.Window < 8:
		return fmt.Errorf("entropy window %d: %w (need >= 8)", c.Window, ErrBadConfig)
	case c.Stride < 1:
		return fmt.Errorf("entropy stride %d: %w", c.Stride, ErrBadConfig)
	case c.MaxScale < 1:
		return fmt.Errorf("entropy max scale %d: %w", c.MaxScale, ErrBadConfig)
	case c.M < 1:
		return fmt.Errorf("entropy template length %d: %w", c.M, ErrBadConfig)
	case c.Window/c.MaxScale < c.M+2:
		return fmt.Errorf("entropy window %d too short for scale %d with m=%d: %w",
			c.Window, c.MaxScale, c.M, ErrBadConfig)
	case c.RFraction <= 0:
		return fmt.Errorf("entropy r fraction %v: %w", c.RFraction, ErrBadConfig)
	case c.BaselineEvals < 2:
		return fmt.Errorf("entropy baseline evals %d: %w (need >= 2)", c.BaselineEvals, ErrBadConfig)
	case c.K <= 0:
		return fmt.Errorf("entropy k %v: %w", c.K, ErrBadConfig)
	case c.Refractory < 0:
		return fmt.Errorf("entropy refractory %d: %w", c.Refractory, ErrBadConfig)
	}
	return nil
}

// entropyStream is the per-counter state of the entropy detector.
type entropyStream struct {
	counter aging.CounterKind

	ring  []float64 // last Window samples, ring[n % Window] overwritten
	n     int       // total samples consumed
	evals int       // total entropy evaluations produced

	// Derived cursors, maintained so the per-sample path divides nothing:
	// head is n % Window (the slot the next sample overwrites once the
	// ring is full) and sinceEval counts pushes down to the next
	// evaluation. Both are recomputed from n on restore, never serialized.
	head      int
	sinceEval int

	// Frozen healthy baseline over the first BaselineEvals evaluations.
	baseN              int
	baseSum, baseSqSum float64
	mean, std          float64
	calibrated         bool

	refractory  int // evaluations left in the current refractory period
	lastEntropy float64
	lastScore   float64
	jumps       int

	// Preallocated scratch so steady-state pushes allocate nothing.
	window []float64
	coarse []float64
	sc     sampEnScratch
}

func newEntropyStream(counter aging.CounterKind, w int) *entropyStream {
	return &entropyStream{
		counter: counter,
		ring:    make([]float64, 0, w),
		window:  make([]float64, w),
		coarse:  make([]float64, w),
		sc:      newSampEnScratch(w),
	}
}

// Entropy is a CHAOS-style aging detector: multiscale sample entropy of
// each counter's sliding window, compared against a frozen baseline of
// the stream's healthy start. Aging shows up as the window's complexity
// collapsing below the baseline — exhaustion trends, saturation floors
// and thrashing cycles are all more deterministic than healthy noise —
// so the default threshold is one-sided (TwoSided also catches upward
// excursions).
type Entropy struct {
	cfg  EntropyConfig
	free *entropyStream
	swap *entropyStream
}

// NewEntropy creates an entropy detector.
func NewEntropy(cfg EntropyConfig) (*Entropy, error) {
	if err := cfg.validate(); err != nil {
		return nil, fmt.Errorf("detect: new entropy: %w", err)
	}
	return &Entropy{
		cfg:  cfg,
		free: newEntropyStream(aging.CounterFreeMemory, cfg.Window),
		swap: newEntropyStream(aging.CounterUsedSwap, cfg.Window),
	}, nil
}

// Config returns the detector configuration.
func (e *Entropy) Config() EntropyConfig { return e.cfg }

// Kind implements Detector.
func (e *Entropy) Kind() string { return KindEntropy }

// Push implements Detector. The tm parameter is accepted for interface
// parity but unused: the entropy window has no analogue of the Hölder
// pipeline's stage decomposition, so the sampled tracer attributes the
// whole push to the detect span instead.
func (e *Entropy) Push(s Sample, _ *aging.StageNanos) Verdict {
	evFree, okFree := e.free.push(s.Free, e.cfg)
	evSwap, okSwap := e.swap.push(s.Swap, e.cfg)
	v := Verdict{Phase: e.Phase()}
	if !okFree && !okSwap {
		return v
	}
	v.Events = make([]Event, 0, 2)
	if okFree {
		v.Events = append(v.Events, evFree)
	}
	if okSwap {
		v.Events = append(v.Events, evSwap)
	}
	return v
}

// PushColumns implements ColumnPusher. Entropy evaluation is cadenced on
// the per-stream sample counter, so the kernel is inherently sequential:
// the columnar form is a faithful per-pair loop that only removes the
// per-sample Sample construction and interface dispatch of the set path.
func (e *Entropy) PushColumns(free, swap []float64) Verdict {
	var events []Event
	for i := range free {
		if ev, ok := e.free.push(free[i], e.cfg); ok {
			events = append(events, ev)
		}
		if ev, ok := e.swap.push(swap[i], e.cfg); ok {
			events = append(events, ev)
		}
	}
	return Verdict{Events: events, Phase: e.Phase()}
}

// push consumes one sample; it returns a jump event when this sample's
// entropy evaluation crosses the baseline threshold.
func (st *entropyStream) push(x float64, cfg EntropyConfig) (Event, bool) {
	if len(st.ring) < cfg.Window {
		st.ring = append(st.ring, x)
		st.n++
		if st.n < cfg.Window {
			return Event{}, false
		}
		// Ring just filled: first evaluation fires now, head stays 0.
		st.sinceEval = cfg.Stride
	} else {
		st.ring[st.head] = x
		st.n++
		st.head++
		if st.head == cfg.Window {
			st.head = 0
		}
		st.sinceEval--
		if st.sinceEval != 0 {
			return Event{}, false
		}
		st.sinceEval = cfg.Stride
	}
	e := st.evaluate(cfg)
	st.evals++
	st.lastEntropy = e
	if !st.calibrated {
		st.baseN++
		st.baseSum += e
		st.baseSqSum += e * e
		if st.baseN >= cfg.BaselineEvals {
			st.mean = st.baseSum / float64(st.baseN)
			v := st.baseSqSum/float64(st.baseN) - st.mean*st.mean
			if v < 0 {
				v = 0
			}
			st.std = math.Sqrt(v)
			st.calibrated = true
		}
		return Event{}, false
	}
	var score float64
	if st.std == 0 {
		// Degenerate constant baseline (e.g. a flat counter): any real
		// entropy deviation is a change; the tolerance absorbs float noise.
		tol := 1e-9 * math.Max(1, math.Abs(st.mean))
		switch {
		case e-st.mean < -tol:
			score = math.Inf(-1)
		case e-st.mean > tol:
			score = math.Inf(1)
		}
	} else {
		score = (e - st.mean) / st.std
	}
	st.lastScore = score
	if st.refractory > 0 {
		st.refractory--
		return Event{}, false
	}
	if score >= -cfg.K && (!cfg.TwoSided || score <= cfg.K) {
		return Event{}, false
	}
	st.refractory = cfg.Refractory
	st.jumps++
	return Event{
		Detector: KindEntropy,
		Kind:     EventJump,
		Counter:  st.counter,
		Sample:   st.n - 1,
		Value:    e,
		Score:    math.Abs(score),
	}, true
}

// evaluate computes the multiscale sample entropy of the current window:
// the sum of SampEn(M, RFraction*σ) over coarse-graining scales
// 1..MaxScale, with σ the scale-1 window standard deviation (the MSE
// convention of keeping r fixed across scales).
func (st *entropyStream) evaluate(cfg EntropyConfig) float64 {
	// Unroll the ring into chronological order: oldest..end, then the
	// wrapped prefix.
	w := cfg.Window
	head := st.head // index of the oldest sample once the ring is full
	copy(st.window, st.ring[head:w])
	copy(st.window[w-head:], st.ring[:head])
	var sum, sqSum float64
	for _, v := range st.window[:w] {
		sum += v
		sqSum += v * v
	}
	mean := sum / float64(w)
	varr := sqSum/float64(w) - mean*mean
	if varr <= 0 {
		return 0 // constant window: perfectly regular at every scale
	}
	r := cfg.RFraction * math.Sqrt(varr)
	total := sampEnPruned(st.window[:w], cfg.M, r, &st.sc)
	for scale := 2; scale <= cfg.MaxScale; scale++ {
		cn := w / scale
		if scale == 2 {
			// The default MaxScale stops here; *0.5 is exact (power of
			// two), bit-identical to the generic /scale below.
			for i := 0; i < cn; i++ {
				st.coarse[i] = (st.window[2*i] + st.window[2*i+1]) * 0.5
			}
		} else {
			for i := 0; i < cn; i++ {
				var s float64
				for j := i * scale; j < (i+1)*scale; j++ {
					s += st.window[j]
				}
				st.coarse[i] = s / float64(scale)
			}
		}
		total += sampEnPruned(st.coarse[:cn], cfg.M, r, &st.sc)
	}
	return total
}

// sampEn computes sample entropy (Richman & Moorman 2000): -ln(A/B)
// where B counts pairs of matching m-length templates and A pairs whose
// (m+1)-length extensions also match, under the Chebyshev distance with
// tolerance r. When no matches exist at either length the conventional
// ceiling ln((n-m)(n-m-1)) is returned, keeping the statistic finite and
// deterministic.
func sampEn(x []float64, m int, r float64) float64 {
	sc := newSampEnScratch(len(x))
	return sampEnPruned(x, m, r, &sc)
}

// sampEnScratch is the reusable sort workspace of sampEnPruned: template
// start indices and their first-coordinate keys, sorted together, plus
// the bucket-sort bin tables.
type sampEnScratch struct {
	key   []float64
	idx   []int32
	s1    []float64 // x[idx[p]+1] in sorted order (m=2, n>64 fast path)
	s2    []float64 // x[idx[p]+2] in sorted order (m=2, n>64 fast path)
	binOf []int32   // bin of each template start
	off   []int32   // per-bin scatter cursor (prefix sums)
	end   []int32   // per-bin end boundary

	// rows[i] bit j holds |x[i]-x[j]| <= r for the bitset counting path
	// (m=2, n <= 64): series that fit a machine word count template
	// matches with shifts and popcounts instead of data-dependent
	// branches.
	rows [64]uint64
}

func newSampEnScratch(n int) sampEnScratch {
	return sampEnScratch{
		key:   make([]float64, n),
		idx:   make([]int32, n),
		s1:    make([]float64, n),
		s2:    make([]float64, n),
		binOf: make([]int32, n),
		off:   make([]int32, 4*n+1),
		end:   make([]int32, 4*n+1),
	}
}

// sampEnPruned is sampEn with a sort-based prune: template pairs must
// match on their first coordinate, so only pairs within an r-band of the
// key-sorted order are fully compared. Counts — and therefore every
// detector verdict and snapshot byte — are identical to the quadratic
// reference (a differential test asserts this); only the constant factor
// changes: on healthy noise the band holds a small fraction of the
// (n-m)² pairs, which is what keeps the two-detector set inside the
// 2.5× budget asserted in bench-smoke.
func sampEnPruned(x []float64, m int, r float64, sc *sampEnScratch) float64 {
	n := len(x)
	if n < m+2 {
		return 0
	}
	// One pass finds the value range for the bucket sort and screens for
	// NaN/Inf: non-finite values sort and subtract differently than they
	// pairwise-compare, so corrupted windows take the reference path —
	// the prune must never change a verdict, only its cost. A NaN fails
	// both ordering tests and lands in the v != v arm; a NaN at x[0]
	// poisons lo instead and is caught by the lo != lo check below.
	lo, hi := x[0], x[0]
	for _, v := range x[1:] {
		if v < lo {
			lo = v
		} else if v > hi {
			hi = v
		} else if v != v {
			return sampEnNaive(x, m, r)
		}
	}
	if lo != lo || math.IsInf(lo, 0) || math.IsInf(hi, 0) || math.IsNaN(r) || math.IsInf(r, 0) {
		return sampEnNaive(x, m, r)
	}
	starts := n - m
	if len(sc.key) < n {
		sc.key = make([]float64, n)
		sc.idx = make([]int32, n)
		sc.s1 = make([]float64, n)
		sc.s2 = make([]float64, n)
		sc.binOf = make([]int32, n)
		sc.off = make([]int32, 4*n+1)
		sc.end = make([]int32, 4*n+1)
	}
	if m == 2 && n <= 64 {
		// Bitset counting: sort every sample (extensions need the last m
		// values too), mark each single-sample match |x[i]-x[j]| <= r as
		// a bit, then read off template matches as
		// rows[i] & rows[i+1]>>1 (and rows[i+2]>>2 for the extension) —
		// the Richman-Moorman counts with no data-dependent branches.
		key, idx := sc.key[:n], sc.idx[:n]
		sortTemplates(x, key, idx, r, lo, hi, false, sc)
		rows := &sc.rows
		for i := 0; i < n; i++ {
			rows[i] = 0
		}
		for p := 0; p < n; p++ {
			kp, ip := key[p], uint(idx[p])
			bi := uint64(1) << ip
			ri := rows[ip]
			for q := p + 1; q < n && key[q]-kp <= r; q++ {
				j := uint(idx[q])
				ri |= uint64(1) << j
				rows[j] |= bi
			}
			rows[ip] = ri
		}
		// Bits 0..n-3 are template starts; pairs need j > i.
		startsMask := (uint64(1) << uint(n-2)) - 1
		var a, b int
		for i := 0; i < n-2; i++ {
			t := rows[i] & (rows[i+1] >> 1) & startsMask & (^uint64(0) << uint(i+1))
			b += bits.OnesCount64(t)
			a += bits.OnesCount64(t & (rows[i+2] >> 2))
		}
		if a == 0 || b == 0 {
			return math.Log(float64((n - m) * (n - m - 1)))
		}
		return -math.Log(float64(a) / float64(b))
	}
	key, idx := sc.key[:starts], sc.idx[:starts]
	coords := sortTemplates(x, key, idx, r, lo, hi, m == 2, sc)
	var a, b int
	if m == 2 {
		// The detector default. Counting needs no template indices, so
		// the second and third coordinates ride along in key order and
		// the band loop runs over three parallel arrays — sequential
		// loads, no indirection, bounds checks elided. The bucket sort
		// fills them during its scatter; the heapsort fallback leaves
		// them to this gather.
		s1, s2 := sc.s1[:starts], sc.s2[:starts]
		if !coords {
			for p := 0; p < starts; p++ {
				ip := int(idx[p])
				s1[p] = x[ip+1]
				s2[p] = x[ip+2]
			}
		}
		for p := 0; p < starts; p++ {
			kp, s1p, s2p := key[p], s1[p], s2[p]
			for q := p + 1; q < starts && key[q]-kp <= r; q++ {
				if math.Abs(s1[q]-s1p) > r {
					continue
				}
				b++
				if math.Abs(s2[q]-s2p) <= r {
					a++
				}
			}
		}
	} else {
		for p := 0; p < starts; p++ {
			kp := key[p]
			for q := p + 1; q < starts && key[q]-kp <= r; q++ {
				i, j := int(idx[p]), int(idx[q])
				match := true
				for k := 1; k < m; k++ {
					if math.Abs(x[i+k]-x[j+k]) > r {
						match = false
						break
					}
				}
				if !match {
					continue
				}
				b++
				if math.Abs(x[i+m]-x[j+m]) <= r {
					a++
				}
			}
		}
	}
	if a == 0 || b == 0 {
		return math.Log(float64((n - m) * (n - m - 1)))
	}
	return -math.Log(float64(a) / float64(b))
}

// sampEnNaive is the quadratic reference implementation: every template
// pair compared coordinate by coordinate. sampEnPruned must agree with it
// on every input (differential test), and falls back to it on non-finite
// inputs.
func sampEnNaive(x []float64, m int, r float64) float64 {
	n := len(x)
	if n < m+2 {
		return 0
	}
	var a, b int
	for i := 0; i < n-m; i++ {
		for j := i + 1; j < n-m; j++ {
			match := true
			for k := 0; k < m; k++ {
				if math.Abs(x[i+k]-x[j+k]) > r {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			b++
			if math.Abs(x[i+m]-x[j+m]) <= r {
				a++
			}
		}
	}
	if a == 0 || b == 0 {
		return math.Log(float64((n - m) * (n - m - 1)))
	}
	return -math.Log(float64(a) / float64(b))
}

// sortTemplates fills key/idx with each template start's first
// coordinate and index, sorted ascending by key. On well-conditioned
// windows it bucket-sorts into bins of width r — counting sort plus tiny
// per-bin insertion sorts, O(starts + bins) instead of the heapsort's
// O(starts log starts) with its branch-hostile comparisons. IEEE
// subtraction and multiplication are monotone, so bucket order is a
// correct sort order no matter how bin-boundary values round; windows
// whose range spans more bins than the scratch holds (spiky outliers,
// tiny r) fall back to the heapsort. lo/hi bound all of x (the caller's
// range pass), which bounds the keys x[:starts]. With coords set (the
// m=2 fast path) the bucket scatter also carries x[i+1]/x[i+2] into
// sc.s1/sc.s2 in key order; the returned bool reports whether it did.
func sortTemplates(x []float64, key []float64, idx []int32, r, lo, hi float64, coords bool, sc *sampEnScratch) bool {
	starts := len(key)
	span := hi - lo
	maxBins := len(sc.end) - 1 // off needs nbins+1 slots
	// Bins of r/4, not r: with ~one element per bin the per-bin insertion
	// sorts degenerate to predictable no-ops, trading branch misses on
	// random-data compares for branch-free counting-sort bookkeeping.
	binW := 4 / r
	if r <= 0 || !(span*binW < float64(maxBins)) {
		for i := 0; i < starts; i++ {
			key[i] = x[i]
			idx[i] = int32(i)
		}
		sortByKey(key, idx)
		return false
	}
	nbins := int(span*binW) + 1
	off, end, binOf := sc.off[:nbins+1], sc.end[:nbins], sc.binOf[:starts]
	for i := range off {
		off[i] = 0
	}
	for i := 0; i < starts; i++ {
		b := int32((x[i] - lo) * binW)
		binOf[i] = b
		off[b+1]++
	}
	for b := 1; b <= nbins; b++ {
		off[b] += off[b-1]
	}
	copy(end, off[1:nbins+1])
	s1, s2 := sc.s1[:starts], sc.s2[:starts]
	if coords {
		for i := 0; i < starts; i++ {
			b := binOf[i]
			p := off[b]
			off[b] = p + 1
			key[p] = x[i]
			idx[p] = int32(i)
			s1[p] = x[i+1]
			s2[p] = x[i+2]
		}
	} else {
		for i := 0; i < starts; i++ {
			b := binOf[i]
			p := off[b]
			off[b] = p + 1
			key[p] = x[i]
			idx[p] = int32(i)
		}
	}
	var binLo int32
	for b := 0; b < nbins; b++ {
		binHi := end[b]
		if binHi-binLo > 1 {
			if coords {
				insertionSortByKeyCoords(key[binLo:binHi], idx[binLo:binHi], s1[binLo:binHi], s2[binLo:binHi])
			} else {
				insertionSortByKey(key[binLo:binHi], idx[binLo:binHi])
			}
		}
		binLo = binHi
	}
	return coords
}

// insertionSortByKeyCoords is insertionSortByKey carrying the gathered
// second and third template coordinates through the same permutation.
func insertionSortByKeyCoords(key []float64, idx []int32, s1, s2 []float64) {
	for i := 1; i < len(key); i++ {
		k, id, v1, v2 := key[i], idx[i], s1[i], s2[i]
		j := i - 1
		for j >= 0 && key[j] > k {
			key[j+1] = key[j]
			idx[j+1] = idx[j]
			s1[j+1] = s1[j]
			s2[j+1] = s2[j]
			j--
		}
		key[j+1] = k
		idx[j+1] = id
		s1[j+1] = v1
		s2[j+1] = v2
	}
}

// insertionSortByKey sorts a single bucket's key/idx pair ascending;
// buckets hold a handful of elements, where insertion sort's sequential,
// branch-predictable scan beats anything asymptotically clever.
func insertionSortByKey(key []float64, idx []int32) {
	for i := 1; i < len(key); i++ {
		k, id := key[i], idx[i]
		j := i - 1
		for j >= 0 && key[j] > k {
			key[j+1] = key[j]
			idx[j+1] = idx[j]
			j--
		}
		key[j+1] = k
		idx[j+1] = id
	}
}

// sortByKey heap-sorts idx by key (kept in step), ascending. Hand-rolled
// so the entropy hot path stays closure- and allocation-free; order among
// equal keys is irrelevant to the band enumeration.
func sortByKey(key []float64, idx []int32) {
	n := len(key)
	for root := n/2 - 1; root >= 0; root-- {
		siftDown(key, idx, root, n)
	}
	for end := n - 1; end > 0; end-- {
		key[0], key[end] = key[end], key[0]
		idx[0], idx[end] = idx[end], idx[0]
		siftDown(key, idx, 0, end)
	}
}

func siftDown(key []float64, idx []int32, root, end int) {
	for {
		child := 2*root + 1
		if child >= end {
			return
		}
		if child+1 < end && key[child+1] > key[child] {
			child++
		}
		if key[root] >= key[child] {
			return
		}
		key[root], key[child] = key[child], key[root]
		idx[root], idx[child] = idx[child], idx[root]
		root = child
	}
}

// Phase implements Detector: per-counter phases from emitted jumps, the
// more advanced of the two reported (mirroring the dual monitor).
func (e *Entropy) Phase() aging.Phase {
	return maxPhase(phaseOfJumps(e.free.jumps), phaseOfJumps(e.swap.jumps))
}

// SamplesSeen implements Detector.
func (e *Entropy) SamplesSeen() int { return e.free.n }

// Jumps implements Detector.
func (e *Entropy) Jumps() int { return e.free.jumps + e.swap.jumps }

// Recalibrations implements Detector: the entropy baseline is frozen by
// design.
func (e *Entropy) Recalibrations() int { return 0 }

// LastStats implements Detector: the latest per-counter entropy z-scores.
func (e *Entropy) LastStats() (freeStat, swapStat float64) {
	return e.free.lastScore, e.swap.lastScore
}

// Instrument implements Detector (nil-safe). The entropy detector keeps
// no dedicated metric families; set-level counters cover it.
func (e *Entropy) Instrument(reg *obs.Registry) {}

var (
	_ Detector     = (*Entropy)(nil)
	_ ColumnPusher = (*Entropy)(nil)
)
