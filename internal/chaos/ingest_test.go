package chaos

import (
	"context"
	"testing"
	"time"

	"agingmf/internal/aging"
)

// ingestTestMonitor keeps per-source monitors cheap enough for a
// many-producer campaign.
func ingestTestMonitor() aging.Config {
	cfg := aging.DefaultConfig()
	cfg.MinRadius = 2
	cfg.MaxRadius = 8
	cfg.VolatilityWindow = 8
	cfg.DetectorWarmup = 8
	cfg.Refractory = 4
	cfg.HistoryLimit = 64
	return cfg
}

// TestIngestChaosAllFaults is the fleet-serving chaos campaign: slow
// clients, mid-stream disconnects, malformed floods and a dead alert
// sink, all at once. The daemon must lose nothing, poison nothing, and
// keep every source's verdict byte-for-byte identical to a
// single-process monitor.
func TestIngestChaosAllFaults(t *testing.T) {
	rep, err := RunIngest(context.Background(), IngestConfig{
		Seed:    11,
		Sources: 12,
		Samples: 150,
		Monitor: ingestTestMonitor(),
		Faults: IngestFaults{
			MalformedRate:   0.2,
			DisconnectEvery: 40,
			SlowEvery:       4,
			SlowDelay:       100 * time.Microsecond,
			AlertSinkOutage: true,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("daemon did not degrade gracefully: %+v", rep)
	}
	if rep.Malformed == 0 {
		t.Error("campaign injected no malformed lines; MalformedRate plumbing broken")
	}
	if rep.Disconnects == 0 {
		t.Error("campaign injected no disconnects; DisconnectEvery plumbing broken")
	}
	if rep.BadLines != uint64(rep.Malformed) {
		t.Errorf("daemon counted %d bad lines, campaign injected %d", rep.BadLines, rep.Malformed)
	}
	t.Logf("ingest chaos: %d samples, %d malformed, %d disconnects, %d alerts (%d dropped by dead sink)",
		rep.SamplesSent, rep.Malformed, rep.Disconnects, rep.AlertsPublished, rep.AlertsDroppedBySink)
}

// TestIngestChaosCleanRun sanity-checks the campaign harness itself with
// no faults: a plain concurrent load must pass trivially.
func TestIngestChaosCleanRun(t *testing.T) {
	rep, err := RunIngest(context.Background(), IngestConfig{
		Seed:    5,
		Sources: 8,
		Samples: 80,
		Monitor: ingestTestMonitor(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("clean run failed: %+v", rep)
	}
	if rep.Malformed != 0 || rep.Disconnects != 0 {
		t.Errorf("clean run injected faults: %+v", rep)
	}
}

func TestIngestChaosRejectsBadConfig(t *testing.T) {
	for _, cfg := range []IngestConfig{
		{Faults: IngestFaults{MalformedRate: -0.1}},
		{Faults: IngestFaults{MalformedRate: 1.5}},
		{Faults: IngestFaults{DisconnectEvery: -1}},
		{Faults: IngestFaults{SlowEvery: -2}},
	} {
		if _, err := RunIngest(context.Background(), cfg); err == nil {
			t.Errorf("config %+v accepted", cfg.Faults)
		}
	}
}
