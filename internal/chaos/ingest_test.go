package chaos

import (
	"context"
	"testing"
	"time"

	"agingmf/internal/aging"
)

// ingestTestMonitor keeps per-source monitors cheap enough for a
// many-producer campaign.
func ingestTestMonitor() aging.Config {
	cfg := aging.DefaultConfig()
	cfg.MinRadius = 2
	cfg.MaxRadius = 8
	cfg.VolatilityWindow = 8
	cfg.DetectorWarmup = 8
	cfg.Refractory = 4
	cfg.HistoryLimit = 64
	return cfg
}

// TestIngestChaosAllFaults is the fleet-serving chaos campaign: slow
// clients, mid-stream disconnects, malformed floods and a dead alert
// sink, all at once. The daemon must lose nothing, poison nothing, and
// keep every source's verdict byte-for-byte identical to a
// single-process monitor.
func TestIngestChaosAllFaults(t *testing.T) {
	rep, err := RunIngest(context.Background(), IngestConfig{
		Seed:    11,
		Sources: 12,
		Samples: 150,
		Monitor: ingestTestMonitor(),
		Faults: IngestFaults{
			MalformedRate:   0.2,
			DisconnectEvery: 40,
			SlowEvery:       4,
			SlowDelay:       100 * time.Microsecond,
			AlertSinkOutage: true,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("daemon did not degrade gracefully: %+v", rep)
	}
	if rep.Malformed == 0 {
		t.Error("campaign injected no malformed lines; MalformedRate plumbing broken")
	}
	if rep.Disconnects == 0 {
		t.Error("campaign injected no disconnects; DisconnectEvery plumbing broken")
	}
	if rep.BadLines != uint64(rep.Malformed) {
		t.Errorf("daemon counted %d bad lines, campaign injected %d", rep.BadLines, rep.Malformed)
	}
	t.Logf("ingest chaos: %d samples, %d malformed, %d disconnects, %d alerts (%d dropped by dead sink)",
		rep.SamplesSent, rep.Malformed, rep.Disconnects, rep.AlertsPublished, rep.AlertsDroppedBySink)
}

// TestIngestChaosCleanRun sanity-checks the campaign harness itself with
// no faults: a plain concurrent load must pass trivially.
func TestIngestChaosCleanRun(t *testing.T) {
	rep, err := RunIngest(context.Background(), IngestConfig{
		Seed:    5,
		Sources: 8,
		Samples: 80,
		Monitor: ingestTestMonitor(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("clean run failed: %+v", rep)
	}
	if rep.Malformed != 0 || rep.Disconnects != 0 {
		t.Errorf("clean run injected faults: %+v", rep)
	}
}

func TestIngestChaosRejectsBadConfig(t *testing.T) {
	for _, cfg := range []IngestConfig{
		{Faults: IngestFaults{MalformedRate: -0.1}},
		{Faults: IngestFaults{MalformedRate: 1.5}},
		{Faults: IngestFaults{DisconnectEvery: -1}},
		{Faults: IngestFaults{SlowEvery: -2}},
	} {
		if _, err := RunIngest(context.Background(), cfg); err == nil {
			t.Errorf("config %+v accepted", cfg.Faults)
		}
	}
}

// TestIngestChaosFaultForensics turns the flight recorder on during a
// corrupt+stall campaign and checks the faults are visible exactly where
// an operator would look: the corrupted value in the affected source's
// ring, the producer stall as a wall-clock gap in its tail — with parity
// still byte-exact, because wild inputs are data, not errors.
func TestIngestChaosFaultForensics(t *testing.T) {
	const (
		sources = 4
		samples = 64
		depth   = 32
	)
	cfg := IngestConfig{
		Seed:                7,
		Sources:             sources,
		Samples:             samples,
		Monitor:             ingestTestMonitor(),
		TraceSampleEvery:    8,
		FlightRecorderDepth: depth,
		Faults: IngestFaults{
			CorruptEvery: 16,
			StallEvery:   2,
			StallFor:     80 * time.Millisecond,
		},
	}
	rep, err := RunIngest(context.Background(), cfg)
	if err != nil {
		t.Fatalf("RunIngest: %v", err)
	}
	if !rep.Ok() {
		t.Fatalf("campaign degraded: %+v", rep)
	}
	if want := sources * 3; rep.Corrupted != want { // k = 16, 32, 48 per trace
		t.Errorf("Corrupted = %d, want %d", rep.Corrupted, want)
	}
	if rep.Stalls != sources/2 { // producers 0 and 2
		t.Errorf("Stalls = %d, want %d", rep.Stalls, sources/2)
	}
	if len(rep.FlightRecords) != sources {
		t.Fatalf("captured %d flight rings, want %d", len(rep.FlightRecords), sources)
	}

	for i := 0; i < sources; i++ {
		id := ingestSourceID(i)
		recs := rep.FlightRecords[id]
		if len(recs) != depth {
			t.Fatalf("%s: ring holds %d records, want full depth %d", id, len(recs), depth)
		}
		// Rebuild this producer's trace the way the campaign did and check
		// the corrupted sample at k=48 (Seq 49, inside the last 32) landed
		// in the ring verbatim.
		pts := ingestTrace(cfg.Seed, i, samples)
		corruptTraces([][][2]float64{pts}, cfg.Faults.CorruptEvery)
		const k = 48
		found := false
		for _, r := range recs {
			if r.Seq == k+1 {
				found = true
				if r.Free != pts[k][0] || r.Swap != pts[k][1] {
					t.Errorf("%s: ring Seq %d = (%g,%g), want corrupted (%g,%g)",
						id, r.Seq, r.Free, r.Swap, pts[k][0], pts[k][1])
				}
			}
		}
		if !found {
			t.Errorf("%s: corrupted sample Seq %d not in ring", id, k+1)
		}
		if i%cfg.Faults.StallEvery != 0 {
			continue
		}
		// The stalled producers froze 8 samples before the end: their
		// ring tail must show the wall-clock gap.
		var maxGap time.Duration
		for j := 1; j < len(recs); j++ {
			if g := time.Duration(recs[j].Wall - recs[j-1].Wall); g > maxGap {
				maxGap = g
			}
		}
		if maxGap < cfg.Faults.StallFor/2 {
			t.Errorf("%s: largest ring gap %v, want >= %v (stall invisible)",
				id, maxGap, cfg.Faults.StallFor/2)
		}
	}
}
