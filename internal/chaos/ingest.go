package chaos

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"agingmf/internal/aging"
	"agingmf/internal/ingest"
	"agingmf/internal/obs"
	"agingmf/internal/trace"
)

// IngestFaults selects the faults an ingest campaign injects into the
// fleet daemon's wire. The zero value injects nothing (a plain load run).
type IngestFaults struct {
	// MalformedRate is the probability (0..1) that a producer interleaves
	// a garbage line before a sample — parser floods. Malformed lines
	// must be rejected and counted without costing a single good sample.
	MalformedRate float64
	// DisconnectEvery makes each producer drop its TCP connection and
	// redial every this many samples (0 disables) — mid-stream
	// disconnects. The daemon must resume the source seamlessly (the
	// source= key survives reconnects).
	DisconnectEvery int
	// SlowEvery marks every SlowEvery-th producer as a slow client that
	// sleeps SlowDelay between samples (0 disables). Slow clients must
	// not stall other producers' ingestion.
	SlowEvery int
	// SlowDelay is the slow client's per-sample delay (default 200µs).
	SlowDelay time.Duration
	// AlertSinkOutage subscribes a dead alert sink (a consumer that never
	// drains its queue). Its alerts must be dropped and counted without
	// backpressuring ingestion.
	AlertSinkOutage bool
	// CorruptEvery spikes every CorruptEvery-th sample of each trace with
	// a wild sensor value (0 disables). Corruption happens at trace
	// generation — the parity reference replays the same values — so the
	// campaign checks the pipeline carries wild inputs faithfully and the
	// flight recorder shows them, not that the detector hides them.
	CorruptEvery int
	// StallEvery freezes every StallEvery-th producer for StallFor near
	// the end of its trace (0 disables) — a wedged sensor loop. The wall
	// gap must land in that source's flight-recorder tail.
	StallEvery int
	// StallFor is the injected stall duration (default 50ms).
	StallFor time.Duration
}

// IngestConfig parameterizes one ingest chaos campaign.
type IngestConfig struct {
	// Seed drives every producer's trace and fault stream; campaigns are
	// deterministic per seed (up to network interleaving, which the
	// sharded daemon must make irrelevant — that is the point).
	Seed int64
	// Sources is the number of concurrent producers (default 16).
	Sources int
	// Samples is the per-producer trace length (default 200).
	Samples int
	// Monitor is the per-source detector configuration (zero value
	// selects aging.DefaultConfig).
	Monitor aging.Config
	// Faults selects the injected faults.
	Faults IngestFaults
	// Obs and Events receive the daemon's telemetry. Nil disables.
	Obs    *obs.Registry
	Events *obs.Events
	// TraceSampleEvery turns on the daemon's pipeline tracer for the
	// campaign (one unit in N; 0 disables).
	TraceSampleEvery int
	// FlightRecorderDepth keeps each source's last N annotated samples;
	// the report captures every ring before shutdown (0 disables).
	FlightRecorderDepth int
}

func (c IngestConfig) withDefaults() IngestConfig {
	if c.Sources <= 0 {
		c.Sources = 16
	}
	if c.Samples <= 0 {
		c.Samples = 200
	}
	if c.Monitor == (aging.Config{}) {
		c.Monitor = aging.DefaultConfig()
	}
	if c.Faults.SlowEvery > 0 && c.Faults.SlowDelay <= 0 {
		c.Faults.SlowDelay = 200 * time.Microsecond
	}
	if c.Faults.StallEvery > 0 && c.Faults.StallFor <= 0 {
		c.Faults.StallFor = 50 * time.Millisecond
	}
	return c
}

// IngestReport is the outcome of an ingest campaign: what was thrown at
// the daemon and how it degraded.
type IngestReport struct {
	Seed    int64
	Sources int
	// SamplesSent counts good samples written; Malformed counts injected
	// garbage lines; Disconnects counts mid-stream connection drops.
	SamplesSent int
	Malformed   int
	Disconnects int
	// Accepted/Dropped/BadLines are the daemon's accounting. Graceful
	// degradation means Accepted == SamplesSent, Dropped == 0 and
	// BadLines == Malformed.
	Accepted uint64
	Dropped  uint64
	BadLines uint64
	// AlertsPublished and AlertsDroppedBySink describe the alert path
	// under a sink outage: publishes keep flowing, the dead sink's queue
	// overflows are counted, ingestion never blocks.
	AlertsPublished     uint64
	AlertsDroppedBySink uint64
	// Corrupted counts injected wild sensor values; Stalls counts
	// injected producer freezes.
	Corrupted int
	Stalls    int
	// ParityMismatches lists sources whose final monitor state differs
	// from a single-process monitor fed the same trace — must be empty
	// no matter what faults ran.
	ParityMismatches []string
	// FlightRecords is each source's flight-recorder tail captured before
	// shutdown (nil unless FlightRecorderDepth > 0) — the campaign's
	// forensic record that faults land in the affected source's ring.
	FlightRecords map[string][]trace.Record
}

// Ok reports whether the daemon degraded gracefully: nothing lost,
// nothing poisoned, every source's verdict exactly what a single-process
// monitor would have said.
func (r IngestReport) Ok() bool {
	return r.Accepted == uint64(r.SamplesSent) &&
		r.Dropped == 0 &&
		r.BadLines == uint64(r.Malformed) &&
		len(r.ParityMismatches) == 0
}

// ingestTrace is producer i's deterministic counter trace.
func ingestTrace(seed int64, i, n int) [][2]float64 {
	rng := rand.New(rand.NewSource(seed + int64(i)*7919))
	tr := make([][2]float64, n)
	free, swap := 2e9+float64(i)*1e6, float64(i)
	for k := range tr {
		free -= rng.Float64() * 2e5
		swap += rng.Float64() * 1e4
		tr[k] = [2]float64{free, swap}
	}
	return tr
}

// garbageLine picks one malformed wire line — the shapes broken or
// hostile producers actually emit.
func garbageLine(rng *rand.Rand) string {
	switch rng.Intn(6) {
	case 0:
		return "garbage"
	case 1:
		return "NaN,0"
	case 2:
		return "1e309 5"
	case 3:
		return "source= 1 2"
	case 4:
		return "1 2 3 4 5"
	default:
		return "free,swap"
	}
}

// RunIngest executes one ingest chaos campaign: it boots a real
// ingest.Server on loopback, aims cfg.Sources concurrent producers at it
// with the configured faults on the wire, and verifies the daemon
// degrades instead of losing or corrupting data. Like Run, injected
// faults are never errors — RunIngest returns a non-nil error only for
// broken configuration or plumbing; every degradation verdict is in the
// report.
func RunIngest(ctx context.Context, cfg IngestConfig) (IngestReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg = cfg.withDefaults()
	f := cfg.Faults
	if f.MalformedRate < 0 || f.MalformedRate > 1 {
		return IngestReport{}, fmt.Errorf("malformed rate %v: %w", f.MalformedRate, ErrBadConfig)
	}
	if f.DisconnectEvery < 0 || f.SlowEvery < 0 || f.CorruptEvery < 0 || f.StallEvery < 0 {
		return IngestReport{}, fmt.Errorf("negative fault interval: %w", ErrBadConfig)
	}

	srv, err := ingest.NewServer(ingest.ServerConfig{
		Registry: ingest.Config{
			Monitor:             cfg.Monitor,
			Obs:                 cfg.Obs,
			Events:              cfg.Events,
			TraceSampleEvery:    cfg.TraceSampleEvery,
			FlightRecorderDepth: cfg.FlightRecorderDepth,
		},
		TCPAddr:     "127.0.0.1:0",
		MaxBadLines: -1, // the flood is the experiment; don't evict producers
	})
	if err != nil {
		return IngestReport{}, fmt.Errorf("chaos: %w", err)
	}
	if err := srv.Start(); err != nil {
		return IngestReport{}, fmt.Errorf("chaos: %w", err)
	}
	shutdown := func() {
		sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Shutdown(sctx)
	}

	var deadSink *ingest.Subscription
	if f.AlertSinkOutage {
		// A subscriber that never reads: its queue saturates immediately
		// and every further alert for it must be dropped and counted.
		deadSink = srv.Registry().Alerts().Subscribe("outage", 1)
	}

	rep := IngestReport{Seed: cfg.Seed, Sources: cfg.Sources}
	traces := make([][][2]float64, cfg.Sources)
	for i := range traces {
		traces[i] = ingestTrace(cfg.Seed, i, cfg.Samples)
		rep.SamplesSent += len(traces[i])
	}
	rep.Corrupted = corruptTraces(traces, f.CorruptEvery)

	stats := make([]producerStats, cfg.Sources)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Sources; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			stats[i] = runIngestProducer(ctx, srv, cfg, i, traces[i])
		}(i)
	}
	wg.Wait()
	for _, st := range stats {
		if st.err != nil {
			shutdown()
			return rep, st.err
		}
		rep.Malformed += st.malformed
		rep.Disconnects += st.disconnects
		rep.Stalls += st.stalls
	}

	// Drain everything queued into the monitors, then read the verdicts.
	reg := srv.Registry()
	deadline := time.Now().Add(30 * time.Second)
	for reg.Accepted() < uint64(rep.SamplesSent) && time.Now().Before(deadline) && ctx.Err() == nil {
		time.Sleep(2 * time.Millisecond)
	}
	rep.Accepted = reg.Accepted()
	rep.Dropped = reg.Dropped()
	rep.BadLines = reg.BadLines()
	rep.AlertsPublished = reg.Alerts().Total()
	if deadSink != nil {
		rep.AlertsDroppedBySink = deadSink.Dropped()
	}
	if cfg.FlightRecorderDepth > 0 {
		rep.FlightRecords = make(map[string][]trace.Record, cfg.Sources)
		for i := 0; i < cfg.Sources; i++ {
			id := ingestSourceID(i)
			if recs, err := reg.FlightRecords(id); err == nil {
				rep.FlightRecords[id] = recs
			}
		}
	}

	for i := range traces {
		id := ingestSourceID(i)
		got, err := reg.MonitorState(id)
		if err != nil {
			rep.ParityMismatches = append(rep.ParityMismatches, id)
			continue
		}
		ref, err := aging.NewDualMonitor(cfg.Monitor)
		if err != nil {
			shutdown()
			return rep, fmt.Errorf("chaos: %w", err)
		}
		for _, s := range traces[i] {
			ref.Add(s[0], s[1])
		}
		want, err := ref.SaveState()
		if err != nil {
			shutdown()
			return rep, fmt.Errorf("chaos: %w", err)
		}
		if !bytes.Equal(got, want) {
			rep.ParityMismatches = append(rep.ParityMismatches, id)
		}
	}
	shutdown()
	cfg.Events.Info("chaos_ingest_done", obs.Fields{
		"seed": cfg.Seed, "sources": rep.Sources, "sent": rep.SamplesSent,
		"accepted": rep.Accepted, "malformed": rep.Malformed,
		"disconnects": rep.Disconnects, "corrupted": rep.Corrupted,
		"stalls": rep.Stalls, "parity_mismatches": len(rep.ParityMismatches),
	})
	return rep, nil
}

// ingestSourceID names campaign producer i on the wire.
func ingestSourceID(i int) string { return fmt.Sprintf("chaos-%04d", i) }

// corruptTraces spikes every CorruptEvery-th sample of each trace (free
// memory multiplied a thousandfold — a clearly wild outlier) and returns
// how many values it touched. Both the daemon and the parity reference
// replay the corrupted traces, so verdicts still agree exactly.
func corruptTraces(traces [][][2]float64, every int) int {
	if every <= 0 {
		return 0
	}
	n := 0
	for _, tr := range traces {
		for k := every; k < len(tr); k += every {
			tr[k][0] *= 1e3
			n++
		}
	}
	return n
}

// producerStats is what one producer injected (or the plumbing error
// that stopped it).
type producerStats struct {
	malformed, disconnects, stalls int
	err                            error
}

// runIngestProducer writes one producer's trace with its faults: garbage
// lines, mid-stream disconnects (redialing and resuming), slow-client
// pacing, and near-end stalls. It returns what it injected.
func runIngestProducer(ctx context.Context, srv *ingest.Server, cfg IngestConfig, i int, pts [][2]float64) (st producerStats) {
	f := cfg.Faults
	addr := srv.TCPAddr()
	rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*104729 + 1))
	slow := f.SlowEvery > 0 && i%f.SlowEvery == 0
	// The stall lands 8 samples before the end so both sides of the wall
	// gap sit inside even a small flight-recorder tail.
	stallAt := -1
	if f.StallEvery > 0 && i%f.StallEvery == 0 {
		if stallAt = len(pts) - 8; stallAt < 1 {
			stallAt = 1
		}
	}

	var d net.Dialer
	conn, err := d.DialContext(ctx, addr.Network(), addr.String())
	if err != nil {
		st.err = fmt.Errorf("chaos: producer %d dial: %w", i, err)
		return st
	}
	defer func() { conn.Close() }()

	id := ingestSourceID(i)
	for k, s := range pts {
		if ctx.Err() != nil {
			st.err = ctx.Err()
			return st
		}
		if k == stallAt {
			// A wedged sensor loop: the producer freezes mid-stream. The
			// daemon must not care, and the wall-clock gap must be visible
			// in this source's flight recorder.
			time.Sleep(f.StallFor)
			st.stalls++
		}
		if f.DisconnectEvery > 0 && k > 0 && k%f.DisconnectEvery == 0 {
			conn.Close() // mid-stream hangup, then carry on where we stopped
			// A reconnecting producer must not let its new stream race the
			// tail of the old one through a different server goroutine —
			// the source's samples would interleave out of order. Wait for
			// the daemon to consume everything sent so far (a real producer
			// achieves the same by reconnecting strictly after its previous
			// stream is drained).
			for ctx.Err() == nil {
				if sst, ok := srv.Registry().Source(id); ok && sst.Samples >= int64(k) {
					break
				}
				time.Sleep(time.Millisecond)
			}
			if conn, err = d.DialContext(ctx, addr.Network(), addr.String()); err != nil {
				st.err = fmt.Errorf("chaos: producer %d redial: %w", i, err)
				return st
			}
			st.disconnects++
		}
		if f.MalformedRate > 0 && rng.Float64() < f.MalformedRate {
			if _, err := fmt.Fprintf(conn, "%s\n", garbageLine(rng)); err != nil {
				st.err = fmt.Errorf("chaos: producer %d write: %w", i, err)
				return st
			}
			st.malformed++
		}
		line := ingest.FormatLine(ingest.Sample{Source: id, Free: s[0], Swap: s[1]})
		if _, err := fmt.Fprintf(conn, "%s\n", line); err != nil {
			st.err = fmt.Errorf("chaos: producer %d write: %w", i, err)
			return st
		}
		if slow {
			time.Sleep(f.SlowDelay)
		}
	}
	return st
}
