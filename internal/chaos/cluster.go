package chaos

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"agingmf/internal/aging"
	"agingmf/internal/cluster"
	"agingmf/internal/ingest"
)

// ClusterFaults selects the faults a cluster campaign injects. The zero
// value runs plain routed load (still churny: the fleet fans out over
// consistent-hash routing with forwards on every line).
type ClusterFaults struct {
	// KillMidIngest crash-kills one node while producers are streaming,
	// WITHOUT the final store sync a graceful halt performs. The cluster
	// must recover — survivors adopt from the victim's last periodic
	// snapshot — but samples the victim accepted after that snapshot are
	// legitimately lost. The campaign verifies the loss is exactly the
	// post-snapshot window and nothing else: every source still ends
	// owned by exactly one node with monitor state byte-identical to an
	// oracle fed the batches that actually survived.
	KillMidIngest bool
	// Partition cuts the link between the two surviving peers for
	// PartitionFor mid-stream, then heals it. The cut is kept shorter
	// than the down-mark tolerance, so routing blocks and retries instead
	// of split-braining — zero loss, exact parity.
	Partition bool
	// PartitionFor is the cut duration (default 50ms).
	PartitionFor time.Duration
	// MigrateUnderLoad fires explicit live migrations of busy sources
	// between nodes while the final phase streams — handoffs must block,
	// release and preserve byte parity under concurrent ingest.
	MigrateUnderLoad bool
}

// ClusterConfig parameterizes one cluster chaos campaign.
type ClusterConfig struct {
	// Seed drives the deterministic traces.
	Seed int64
	// Nodes is the cluster size (default 3, minimum 3).
	Nodes int
	// Sources is the fleet size (default 48).
	Sources int
	// Samples is the per-source trace length (default 30, minimum 3).
	Samples int
	// Shards is the per-node registry shard count (default 2).
	Shards int
	// Faults selects the injected faults.
	Faults ClusterFaults
}

func (c ClusterConfig) withDefaults() ClusterConfig {
	if c.Nodes < 3 {
		c.Nodes = 3
	}
	if c.Sources <= 0 {
		c.Sources = 48
	}
	if c.Samples < 3 {
		c.Samples = 30
	}
	if c.Shards <= 0 {
		c.Shards = 2
	}
	if c.Faults.Partition && c.Faults.PartitionFor <= 0 {
		c.Faults.PartitionFor = 50 * time.Millisecond
	}
	return c
}

// ClusterReport is the outcome of a cluster campaign.
type ClusterReport struct {
	Seed    int64
	Nodes   int
	Sources int
	// LinesSent counts batch lines delivered; Retries counts producer
	// re-sends while routing was converging around faults.
	LinesSent uint64
	Retries   uint64
	// Killed names the crash-killed node ("" when the fault is off);
	// VictimSources counts sources in its registry at the kill.
	Killed        string
	VictimSources int
	// Migrations/Forwards/Adoptions aggregate the nodes' counters.
	Migrations uint64
	Forwards   uint64
	Adoptions  uint64
	// MultiOwned and Missing are ownership violations — always zero for a
	// graceful degradation.
	MultiOwned int
	Missing    int
	// SampleLoss is the total samples lost to the unsynced kill. It must
	// be zero unless KillMidIngest is set, and even then every lost
	// sample must be from a victim-held source's post-snapshot window.
	SampleLoss int64
	// ParityMismatches lists sources whose final state matches no legal
	// replay (full trace, or the kill-surviving batches) — must be empty.
	ParityMismatches []string
}

// Ok reports whether the cluster degraded gracefully: single ownership
// everywhere, state parity against the surviving batches, and loss only
// where the unsynced kill makes it unavoidable.
func (r ClusterReport) Ok() bool {
	if r.MultiOwned > 0 || r.Missing > 0 || len(r.ParityMismatches) > 0 {
		return false
	}
	return r.Killed != "" || r.SampleLoss == 0
}

// RunCluster executes one cluster chaos campaign: an in-process
// multi-node cluster under streaming load with crash-kills, partitions
// and live migrations injected. Like RunIngest, injected faults are
// never errors — a non-nil error means broken plumbing; every
// degradation verdict is in the report.
func RunCluster(ctx context.Context, cfg ClusterConfig) (ClusterReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg = cfg.withDefaults()
	rep := ClusterReport{Seed: cfg.Seed, Nodes: cfg.Nodes, Sources: cfg.Sources}

	monCfg := aging.Config{
		MinRadius: 2, MaxRadius: 8, VolatilityWindow: 8,
		Detector: aging.DetectShewhart, ShewhartK: 4,
		DetectorWarmup: 8, Refractory: 4, HistoryLimit: 32,
	}
	traces := make([][][2]float64, cfg.Sources)
	ids := make([]string, cfg.Sources)
	for i := range traces {
		traces[i] = ingestTrace(cfg.Seed, i, cfg.Samples)
		ids[i] = fmt.Sprintf("cchaos-%04d", i)
	}

	tr := cluster.NewMemTransport()
	store := cluster.NewMemStore()
	names := make([]string, cfg.Nodes)
	for i := range names {
		names[i] = fmt.Sprintf("cnode-%d", i)
	}
	newNode := func(i int) (*cluster.Node, error) {
		reg, err := ingest.NewRegistry(ingest.Config{
			Shards: cfg.Shards, QueueSize: 128, Monitor: monCfg, MaxSources: -1,
		})
		if err != nil {
			return nil, err
		}
		peers := make([]string, 0, cfg.Nodes-1)
		for _, p := range names {
			if p != names[i] {
				peers = append(peers, p)
			}
		}
		n, err := cluster.NewNode(cluster.Config{
			Self:      names[i],
			Peers:     peers,
			Transport: tr,
			Registry:  reg,
			Store:     store,
			// A generous miss budget keeps the short partition from
			// down-marking a live peer (which would split-brain the pair);
			// the kill is still detected in ~8 beats.
			HeartbeatEvery: 25 * time.Millisecond,
			HeartbeatMiss:  8,
		})
		if err != nil {
			reg.Close()
			return nil, err
		}
		tr.Register(n)
		return n, nil
	}
	nodes := make([]*cluster.Node, cfg.Nodes)
	for i := range nodes {
		n, err := newNode(i)
		if err != nil {
			return rep, fmt.Errorf("chaos: %w", err)
		}
		nodes[i] = n
	}
	for _, n := range nodes {
		n.Start()
	}
	defer func() {
		for _, n := range nodes {
			if n != nil {
				n.Stop()
				_ = n.Registry().Close()
			}
		}
	}()

	var lines, retries atomic.Uint64
	sendPhase := func(entries []*cluster.Node, from, to int) error {
		var wg sync.WaitGroup
		var firstErr atomic.Value
		for p := 0; p < 4; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				for i := p; i < cfg.Sources; i += 4 {
					line := ingest.FormatBatch(ingest.Batch{Source: ids[i], Pairs: traces[i][from:to]})
					entry := entries[i%len(entries)]
					var err error
					for attempt := 0; attempt < 400; attempt++ {
						if err = entry.IngestLine("chaos", line); err == nil {
							break
						}
						retries.Add(1)
						time.Sleep(5 * time.Millisecond)
					}
					if err != nil {
						firstErr.Store(fmt.Errorf("chaos: cluster source %s: %w", ids[i], err))
						return
					}
					lines.Add(1)
				}
			}(p)
		}
		wg.Wait()
		if err, _ := firstErr.Load().(error); err != nil {
			return err
		}
		return nil
	}

	third := cfg.Samples / 3
	cuts := [4]int{0, third, 2 * third, cfg.Samples}

	// Phase 1: full membership.
	if err := sendPhase(nodes, cuts[0], cuts[1]); err != nil {
		return rep, err
	}

	victim := nodes[1]
	survivors := []*cluster.Node{nodes[0], nodes[2]}
	victimHeld := map[string]int64{}
	if cfg.Faults.KillMidIngest {
		// The victim's last periodic snapshot lands now — everything it
		// accepts afterwards dies with it.
		if err := victim.SyncStore(); err != nil {
			return rep, fmt.Errorf("chaos: stale sync: %w", err)
		}
	}

	// Phase 2: streamed through the survivors; the kill and the partition
	// fire while these lines are in flight.
	var faultWg sync.WaitGroup
	faultWg.Add(1)
	go func() {
		defer faultWg.Done()
		time.Sleep(20 * time.Millisecond)
		if cfg.Faults.Partition {
			tr.Partition(survivors[0].Name(), survivors[1].Name())
			time.Sleep(cfg.Faults.PartitionFor)
			tr.Heal(survivors[0].Name(), survivors[1].Name())
		}
		if cfg.Faults.KillMidIngest {
			// Crash: no drain handshake with peers, no final store sync.
			victim.Stop()
			_ = victim.Registry().Close()
			tr.Unregister(victim.Name())
			for _, st := range victim.Registry().Sources() {
				victimHeld[st.ID] = st.Samples
			}
			rep.Killed = victim.Name()
			rep.VictimSources = len(victimHeld)
		}
	}()
	err := sendPhase(survivors, cuts[1], cuts[2])
	faultWg.Wait()
	if err != nil {
		return rep, err
	}

	if cfg.Faults.KillMidIngest {
		nodes[1] = nil
		restarted, err := newNode(1)
		if err != nil {
			return rep, fmt.Errorf("chaos: restart: %w", err)
		}
		nodes[1] = restarted
		restarted.Start()
	}

	// Phase 3: streamed during the rejoin rebalance, with explicit live
	// migrations layered on top when configured.
	var migWg sync.WaitGroup
	if cfg.Faults.MigrateUnderLoad {
		migWg.Add(1)
		go func() {
			defer migWg.Done()
			for round := 0; round < 3; round++ {
				for gi, n := range nodes {
					if n == nil {
						continue
					}
					target := nodes[(gi+1)%len(nodes)]
					if target == nil {
						continue
					}
					srcs := n.Registry().Sources()
					if len(srcs) > 4 {
						srcs = srcs[:4]
					}
					for _, st := range srcs {
						_ = n.Migrate(ctx, st.ID, target.Name())
					}
				}
				time.Sleep(5 * time.Millisecond)
			}
		}()
	}
	err = sendPhase(nodes, cuts[2], cuts[3])
	migWg.Wait()
	if err != nil {
		return rep, err
	}

	// Settle: flush the queues, rebalance until nothing is misplaced.
	for _, n := range nodes {
		if err := n.Registry().Drain(); err != nil {
			return rep, fmt.Errorf("chaos: drain: %w", err)
		}
	}
	if err := waitClusterSettle(nodes, 60*time.Second); err != nil {
		return rep, err
	}

	for _, n := range nodes {
		st := n.Status()
		rep.Migrations += st.Migrations
		rep.Forwards += st.Forwards
		rep.Adoptions += st.AdoptionsRestore
	}
	rep.LinesSent = lines.Load()
	rep.Retries = retries.Load()

	// Verify: exactly one owner per source, and the final state matches a
	// legal replay — the full trace, or (for a victim-held source) the
	// batches that survived the unsynced kill.
	for i, id := range ids {
		var owner *cluster.Node
		owners := 0
		for _, n := range nodes {
			if _, ok := n.Registry().Source(id); ok {
				owner = n
				owners++
			}
		}
		if owners != 1 {
			rep.MultiOwned += max(owners-1, 0)
			if owners == 0 {
				rep.Missing++
			}
			continue
		}
		got, err := owner.Registry().MonitorState(id)
		if err != nil {
			return rep, fmt.Errorf("chaos: state of %s: %w", id, err)
		}
		st, _ := owner.Registry().Source(id)

		legal := [][]int{{0, 1, 2}} // batch indices of the full replay
		if _, wasVictim := victimHeld[id]; wasVictim {
			legal = append(legal, []int{0, 2}) // middle batch died with the victim
		}
		matched := false
		for _, chunks := range legal {
			ref, err := aging.NewDualMonitor(monCfg)
			if err != nil {
				return rep, fmt.Errorf("chaos: %w", err)
			}
			n := 0
			for _, c := range chunks {
				ref.AddBatch(traces[i][cuts[c]:cuts[c+1]])
				n += cuts[c+1] - cuts[c]
			}
			want, err := ref.SaveState()
			if err != nil {
				return rep, fmt.Errorf("chaos: %w", err)
			}
			if int64(n) == st.Samples && bytes.Equal(got, want) {
				matched = true
				break
			}
		}
		if !matched {
			rep.ParityMismatches = append(rep.ParityMismatches, id)
		}
		if loss := int64(cfg.Samples) - st.Samples; loss > 0 {
			rep.SampleLoss += loss
		}
	}
	return rep, nil
}

// waitClusterSettle rebalances every node until no source is misplaced.
func waitClusterSettle(nodes []*cluster.Node, d time.Duration) error {
	deadline := time.Now().Add(d)
	for {
		misplaced := 0
		for _, n := range nodes {
			_ = n.Rebalance(context.Background())
			misplaced += n.Misplaced()
		}
		if misplaced == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("chaos: cluster did not settle: %d misplaced", misplaced)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
