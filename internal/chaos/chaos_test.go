package chaos

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"agingmf/internal/collector"
	"agingmf/internal/memsim"
	"agingmf/internal/obs"
	"agingmf/internal/workload"
)

// chaosConfig is a fast-crashing machine under a heavy leak: small RAM,
// aggressive server leak, so full run-to-crash chaos runs stay in test
// budgets.
func chaosConfig(seed int64) Config {
	mcfg := memsim.DefaultConfig()
	mcfg.RAMPages = 8192
	mcfg.SwapPages = 4096
	mcfg.LowWatermark = 256
	wcfg := workload.DefaultDriverConfig()
	wcfg.Server.LeakPagesPerTick = 6
	return Config{
		Seed:     seed,
		Machine:  mcfg,
		Workload: wcfg,
		MaxTicks: 20000,
	}
}

func TestChaosCleanRunCrashesOrganically(t *testing.T) {
	rep, err := Run(context.Background(), chaosConfig(1))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Crash == memsim.CrashNone {
		t.Errorf("heavy leak should crash the machine, got %v after %d ticks", rep.Crash, rep.Ticks)
	}
	if rep.Samples != rep.Ticks {
		t.Errorf("faultless run: samples %d != ticks %d", rep.Samples, rep.Ticks)
	}
	if rep.Dropped+rep.Corrupted+rep.Stalls+rep.PanicsRecovered != 0 {
		t.Errorf("faultless run injected faults: %+v", rep)
	}
}

func TestChaosSurvivesCorruptionAndDrops(t *testing.T) {
	cfg := chaosConfig(2)
	cfg.Faults.DropRate = 0.05
	cfg.Faults.CorruptRate = 0.05
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("pipeline aborted under sample corruption: %v", err)
	}
	if rep.Dropped == 0 || rep.Corrupted == 0 {
		t.Fatalf("faults not injected: %+v", rep)
	}
	if rep.SkippedBad == 0 {
		t.Errorf("no corrupted sample was caught by the input guard: %+v", rep)
	}
	if rep.Samples == 0 {
		t.Error("no samples survived to the detector")
	}
	if rep.Crash == memsim.CrashNone {
		t.Errorf("corruption must not mask the organic crash: %+v", rep)
	}
	if rep.FinalPhase < 1 {
		t.Errorf("detector produced no verdict: phase %v", rep.FinalPhase)
	}
}

func TestChaosLeakBurstsAccelerateCrash(t *testing.T) {
	base, err := Run(context.Background(), chaosConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	cfg := chaosConfig(3)
	cfg.Faults.LeakBurstEvery = 200
	cfg.Faults.LeakBurstPages = 256
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("pipeline aborted under leak bursts: %v", err)
	}
	if rep.LeakBursts == 0 {
		t.Fatalf("no bursts injected: %+v", rep)
	}
	if rep.Crash == memsim.CrashNone {
		t.Errorf("bursts on a leaky machine should still crash it: %+v", rep)
	}
	if rep.Ticks >= base.Ticks {
		t.Errorf("bursts did not accelerate the crash: %d ticks vs %d baseline", rep.Ticks, base.Ticks)
	}
}

func TestChaosFragmentationInjected(t *testing.T) {
	cfg := chaosConfig(4)
	cfg.Faults.FragEvery = 100
	cfg.Faults.FragPages = 64
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("pipeline aborted under fragmentation: %v", err)
	}
	if rep.FragmentedPages == 0 {
		t.Errorf("no fragmentation recorded: %+v", rep)
	}
}

func TestChaosStallTripsWatchdog(t *testing.T) {
	cfg := chaosConfig(5)
	cfg.MaxTicks = 3000
	cfg.StallTimeout = 5 * time.Millisecond
	cfg.Faults.StallEvery = 200
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("pipeline aborted on a stalled stream: %v", err)
	}
	if rep.Stalls == 0 {
		t.Fatalf("no stalls injected: %+v", rep)
	}
	if rep.WatchdogStalls != rep.Stalls {
		t.Errorf("watchdog observed %d of %d stalls", rep.WatchdogStalls, rep.Stalls)
	}
}

func TestChaosPanicRecoveredMidPipeline(t *testing.T) {
	cfg := chaosConfig(6)
	cfg.Faults.PanicAtSample = 50
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("pipeline aborted on a contained panic: %v", err)
	}
	if rep.PanicsRecovered != 1 {
		t.Fatalf("panics recovered = %d, want 1", rep.PanicsRecovered)
	}
	if rep.Samples < 100 {
		t.Errorf("run did not continue past the panic: %d samples", rep.Samples)
	}
}

func TestChaosCancellationEndsGracefully(t *testing.T) {
	cfg := chaosConfig(7)
	cfg.Faults.CancelAfterSamples = 100
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("cancellation must not be an error: %v", err)
	}
	if !rep.Cancelled {
		t.Fatalf("run not marked cancelled: %+v", rep)
	}
	// The cancellation check is amortized over 64-tick blocks.
	if rep.Samples < 100 || rep.Samples > 200 {
		t.Errorf("samples = %d, want promptly after 100", rep.Samples)
	}

	// External cancellation takes the same graceful path.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err = Run(ctx, chaosConfig(7))
	if err != nil {
		t.Fatalf("pre-cancelled run errored: %v", err)
	}
	if !rep.Cancelled || rep.Samples != 0 {
		t.Errorf("pre-cancelled run should end immediately: %+v", rep)
	}
}

func TestChaosDeterministicPerSeed(t *testing.T) {
	cfg := chaosConfig(8)
	cfg.Faults.DropRate = 0.03
	cfg.Faults.CorruptRate = 0.03
	cfg.Faults.LeakBurstEvery = 500
	a, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed, different reports:\n%+v\n%+v", a, b)
	}
}

func TestChaosRejectsBadConfig(t *testing.T) {
	for name, mutate := range map[string]func(*Config){
		"drop rate":     func(c *Config) { c.Faults.DropRate = 1.5 },
		"corrupt rate":  func(c *Config) { c.Faults.CorruptRate = -0.1 },
		"stall no dog":  func(c *Config) { c.Faults.StallEvery = 10 },
		"neg interval":  func(c *Config) { c.Faults.LeakBurstEvery = -1 },
		"neg max ticks": func(c *Config) { c.MaxTicks = -1 },
	} {
		cfg := chaosConfig(1)
		mutate(&cfg)
		if _, err := Run(context.Background(), cfg); !errors.Is(err, ErrBadConfig) {
			t.Errorf("%s: err = %v, want ErrBadConfig", name, err)
		}
	}
}

func TestChaosTelemetry(t *testing.T) {
	reg := obs.NewRegistry()
	var events strings.Builder
	cfg := chaosConfig(9)
	cfg.Obs = reg
	cfg.Events = obs.NewEvents(&events, obs.LevelDebug)
	cfg.Faults.DropRate = 0.05
	cfg.Faults.CorruptRate = 0.05
	cfg.Faults.PanicAtSample = 25
	if _, err := Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	var expo strings.Builder
	if err := reg.WriteText(&expo); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`agingmf_chaos_faults_total{kind="drop"}`,
		`agingmf_chaos_faults_total{kind="corrupt"}`,
		`agingmf_chaos_faults_total{kind="panic"}`,
		"agingmf_chaos_samples_total",
		"agingmf_resilience_panics_recovered_total 1",
	} {
		if !strings.Contains(expo.String(), want) {
			t.Errorf("exposition missing %s", want)
		}
	}
	for _, want := range []string{`"event":"chaos_fault"`, `"event":"chaos_done"`} {
		if !strings.Contains(events.String(), want) {
			t.Errorf("events missing %s", want)
		}
	}
}

func TestRunCampaignAggregatesSeeds(t *testing.T) {
	cfg := chaosConfig(0)
	cfg.MaxTicks = 4000
	cfg.Faults.DropRate = 0.02
	reports, err := RunCampaign(context.Background(), cfg, []int64{1, 2, 3})
	if err != nil {
		t.Fatalf("campaign errored: %v", err)
	}
	if len(reports) != 3 {
		t.Fatalf("reports = %d, want 3", len(reports))
	}
	for i, seed := range []int64{1, 2, 3} {
		if reports[i].Seed != seed {
			t.Errorf("report %d seed = %d, want %d", i, reports[i].Seed, seed)
		}
	}
	if _, err := RunCampaign(context.Background(), cfg, nil); !errors.Is(err, ErrBadConfig) {
		t.Errorf("empty campaign: err = %v, want ErrBadConfig", err)
	}
}

// TestChaosFleetCancelResume is the fleet-level chaos scenario from the
// issue's acceptance criteria, exercised through the public collector
// API: a campaign killed mid-flight resumes from its checkpoints and the
// merged result is byte-identical to an uninterrupted campaign.
func TestChaosFleetCancelResume(t *testing.T) {
	mcfg := memsim.DefaultConfig()
	mcfg.RAMPages = 8192
	mcfg.SwapPages = 4096
	mcfg.LowWatermark = 256
	wcfg := workload.DefaultDriverConfig()
	wcfg.Server.LeakPagesPerTick = 6
	fleet := collector.FleetConfig{
		Machine:  mcfg,
		Workload: wcfg,
		Collect:  collector.Config{TicksPerSample: 1, MaxTicks: 20000, StopOnCrash: true},
		Seeds:    []int64{11, 12, 13},
		Workers:  1,
	}

	reference, err := collector.RunFleet(context.Background(), fleet)
	if err != nil {
		t.Fatalf("reference campaign: %v", err)
	}

	// Interrupted campaign: a tight deadline kills it mid-flight.
	ckpt := t.TempDir()
	fleet.CheckpointDir = ckpt
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	partial, err := collector.RunFleet(ctx, fleet)
	cancel()
	if err == nil && len(partial) == len(fleet.Seeds) {
		t.Skip("campaign finished inside the chaos deadline; nothing to resume")
	}

	// Resume: the checkpointed seeds are skipped, the rest re-run.
	resumed, err := collector.RunFleet(context.Background(), fleet)
	if err != nil {
		t.Fatalf("resumed campaign: %v", err)
	}
	if len(resumed) != len(reference) {
		t.Fatalf("resumed %d runs, reference %d", len(resumed), len(reference))
	}
	for i := range reference {
		var want, got strings.Builder
		if err := reference[i].Trace.WriteCSV(&want); err != nil {
			t.Fatal(err)
		}
		if err := resumed[i].Trace.WriteCSV(&got); err != nil {
			t.Fatal(err)
		}
		if want.String() != got.String() {
			t.Errorf("seed %d: resumed trace differs from uninterrupted reference", reference[i].Seed)
		}
	}
}
