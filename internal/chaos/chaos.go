// Package chaos is the pipeline's fault-injection campaign runner: it
// drives a full simulate→sample→detect session while deliberately
// breaking it — corrupting and dropping samples, stalling the stream,
// bursting leaks and fragmentation into the simulated machine, panicking
// mid-pipeline, and cancelling mid-run — and verifies the pipeline
// degrades instead of aborting. The aging literature (CHAOS, the
// workload-shift studies) demands detectors that keep producing verdicts
// under degraded inputs; this package is that demand turned into a
// regression suite.
//
// A chaos run never reports injected faults as failures: dropped and
// corrupted samples are skipped and counted, stalls trip the watchdog and
// recover, machine crashes are the experiment's natural endpoint, and
// cancellation ends the run gracefully with the partial report. Run
// returns a non-nil error only for broken configuration or a defect in
// the pipeline itself — which is exactly what the chaos tests exist to
// catch.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"time"

	"agingmf/internal/aging"
	"agingmf/internal/memsim"
	"agingmf/internal/obs"
	"agingmf/internal/resilience"
	"agingmf/internal/source"
	"agingmf/internal/workload"
)

// ErrBadConfig reports invalid chaos-campaign parameters.
var ErrBadConfig = errors.New("chaos: bad configuration")

// Faults selects which faults a run injects and how often. The zero value
// injects nothing (a plain monitored run).
type Faults struct {
	// DropRate is the probability (0..1) that a sample is lost before it
	// reaches the monitor.
	DropRate float64
	// CorruptRate is the probability (0..1) that a sample is replaced by
	// garbage (NaN, infinities, sign flips) before it reaches the
	// monitor's input guard.
	CorruptRate float64
	// StallEvery injects a stream stall (no samples, no watchdog pets)
	// every this many samples; 0 disables. Each stall sleeps just past
	// the watchdog deadline so the stall is observable.
	StallEvery int
	// LeakBurstEvery injects a sudden leak of LeakBurstPages into the
	// server process every this many ticks; 0 disables.
	LeakBurstEvery int
	// LeakBurstPages is the burst size (default 64 when bursts are on).
	LeakBurstPages int
	// FragEvery injects FragPages of fragmentation every this many
	// ticks; 0 disables.
	FragEvery int
	// FragPages is the fragmentation grain (default 32 when on).
	FragPages int
	// PanicAtSample makes the monitor-feed stage panic at this 1-based
	// sample index; 0 disables. The panic must be recovered in-pipeline
	// and the run must continue.
	PanicAtSample int
	// CancelAfterSamples cancels the run's context after this many
	// accepted samples; 0 disables. The run must end gracefully with the
	// partial report.
	CancelAfterSamples int
}

// Config parameterizes one chaos run.
type Config struct {
	// Seed drives the machine, workload, and fault injection streams;
	// runs are deterministic per seed.
	Seed int64
	// Machine is the simulated hardware (zero value selects
	// memsim.DefaultConfig).
	Machine memsim.Config
	// Workload is the load configuration (zero value selects
	// workload.DefaultDriverConfig).
	Workload workload.DriverConfig
	// Monitor is the aging-detector configuration (zero value selects
	// aging.DefaultConfig).
	Monitor aging.Config
	// MaxTicks bounds the run length (default 20000).
	MaxTicks int
	// Faults selects the injected faults.
	Faults Faults
	// StallTimeout arms a watchdog on the sample stream; 0 disables.
	StallTimeout time.Duration
	// Obs receives chaos telemetry (fault counters by kind, accepted
	// samples) plus the resilience instruments. Nil disables.
	Obs *obs.Registry
	// Events receives chaos_fault / chaos_done events. Nil disables.
	Events *obs.Events
}

// Report is the outcome of a chaos run: what was injected, what the
// pipeline did about it, and where the detector ended up.
type Report struct {
	Seed int64
	// Ticks is the number of machine ticks executed.
	Ticks int
	// Samples is the number of samples accepted by the monitor.
	Samples int
	// Dropped counts samples lost before the monitor.
	Dropped int
	// Corrupted counts samples garbled in flight.
	Corrupted int
	// SkippedBad counts corrupted samples the input guard rejected —
	// every corruption must be caught here, never fed to the detector.
	SkippedBad int
	// Stalls counts injected stream stalls; WatchdogStalls counts the
	// stalls the watchdog actually observed.
	Stalls         int
	WatchdogStalls int
	// LeakBursts and FragmentedPages count the machine-level injections.
	LeakBursts      int
	FragmentedPages int
	// PanicsRecovered counts pipeline panics contained by resilience.
	PanicsRecovered int
	// Jumps is the number of volatility jumps the detector reported.
	Jumps int
	// FinalPhase is the detector's verdict at the end of the run.
	FinalPhase aging.Phase
	// Crash is how the machine ended (CrashNone if it survived).
	Crash memsim.CrashKind
	// Cancelled reports that the run ended on context cancellation.
	Cancelled bool
}

// metrics holds the chaos instruments; nil registry → no-op instruments.
type metrics struct {
	faults  *obs.CounterVec
	samples *obs.Counter
	res     resilience.Metrics
}

func newMetrics(reg *obs.Registry) metrics {
	return metrics{
		faults: reg.CounterVec("agingmf_chaos_faults_total",
			"Faults injected by the chaos runner.", "kind"),
		samples: reg.Counter("agingmf_chaos_samples_total",
			"Samples accepted by the monitor under chaos."),
		res: resilience.NewMetrics(reg),
	}
}

func (c Config) withDefaults() Config {
	if c.Machine == (memsim.Config{}) {
		c.Machine = memsim.DefaultConfig()
	}
	if c.Workload.Server == nil && c.Workload.ClientRate == 0 {
		c.Workload = workload.DefaultDriverConfig()
	}
	if c.Monitor == (aging.Config{}) {
		c.Monitor = aging.DefaultConfig()
	}
	if c.MaxTicks == 0 {
		c.MaxTicks = 20000
	}
	f := &c.Faults
	if f.LeakBurstEvery > 0 && f.LeakBurstPages == 0 {
		f.LeakBurstPages = 64
	}
	if f.FragEvery > 0 && f.FragPages == 0 {
		f.FragPages = 32
	}
	return c
}

func (c Config) validate() error {
	f := c.Faults
	switch {
	case c.MaxTicks < 1:
		return fmt.Errorf("max ticks %d: %w", c.MaxTicks, ErrBadConfig)
	case f.DropRate < 0 || f.DropRate > 1:
		return fmt.Errorf("drop rate %v: %w", f.DropRate, ErrBadConfig)
	case f.CorruptRate < 0 || f.CorruptRate > 1:
		return fmt.Errorf("corrupt rate %v: %w", f.CorruptRate, ErrBadConfig)
	case f.StallEvery < 0 || f.LeakBurstEvery < 0 || f.FragEvery < 0:
		return fmt.Errorf("negative fault interval: %w", ErrBadConfig)
	case f.StallEvery > 0 && c.StallTimeout <= 0:
		return fmt.Errorf("stall injection needs a watchdog (StallTimeout): %w", ErrBadConfig)
	}
	return nil
}

// corrupt garbles a sample the way broken producers do: non-finite
// values, negated magnitudes, or absurd scales.
func corrupt(rng *rand.Rand, v float64) float64 {
	switch rng.Intn(4) {
	case 0:
		return math.NaN()
	case 1:
		return math.Inf(1 - 2*rng.Intn(2))
	case 2:
		return -v - 1
	default:
		return v * 1e12
	}
}

// acceptable is the pipeline's input guard — the same contract
// cmd/agingmon applies to stdin samples: both counters finite, free
// memory non-negative.
func acceptable(free, swap float64) bool {
	if math.IsNaN(free) || math.IsInf(free, 0) || free < 0 {
		return false
	}
	return !math.IsNaN(swap) && !math.IsInf(swap, 0)
}

// Run executes one chaos campaign: a seeded run-to-crash simulation with
// the configured faults injected, the full detection pipeline attached,
// and the resilience layer (watchdog, panic recovery) active. See the
// package comment for what counts as an error.
func Run(ctx context.Context, cfg Config) (Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return Report{}, err
	}
	m, err := memsim.New(cfg.Machine, rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		return Report{}, fmt.Errorf("chaos: %w", err)
	}
	wcfg := cfg.Workload
	if wcfg.Server != nil {
		server := *wcfg.Server // no shared mutable state across runs
		wcfg.Server = &server
	}
	d, err := workload.NewDriver(m, wcfg, nil, rand.New(rand.NewSource(cfg.Seed+1)))
	if err != nil {
		return Report{}, fmt.Errorf("chaos: %w", err)
	}
	mon, err := aging.NewDualMonitor(cfg.Monitor)
	if err != nil {
		return Report{}, fmt.Errorf("chaos: %w", err)
	}
	met := newMetrics(cfg.Obs)
	wd := resilience.NewWatchdog(cfg.StallTimeout, met.res, func(gap time.Duration) {
		cfg.Events.Warn("chaos_stall_detected", obs.Fields{
			"seed": cfg.Seed, "gap_ms": gap.Milliseconds(),
		})
	})
	defer wd.Stop()

	// The cancellation fault cancels this derived context; an external
	// cancellation arrives through the same path.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	rep := Report{Seed: cfg.Seed}
	fault := func(kind string, fields obs.Fields) {
		met.faults.With(kind).Inc()
		fields["kind"] = kind
		fields["seed"] = cfg.Seed
		cfg.Events.Warn("chaos_fault", fields)
	}
	f := cfg.Faults
	lastStall := 0

	// The simulation source steps the machine; machine-level faults (leak
	// bursts, fragmentation) ride its per-tick hook, between the step and
	// the sample like an asynchronous hardware fault.
	src := source.NewSimFromParts(m, d, cfg.MaxTicks, 1)
	src.OnStep = func(tick int, _ memsim.Counters) {
		if f.LeakBurstEvery > 0 && tick > 0 && tick%f.LeakBurstEvery == 0 {
			if pid := d.ServerPID(); pid != 0 {
				if err := m.InjectLeakBurst(pid, f.LeakBurstPages); err == nil {
					rep.LeakBursts++
					fault("leak_burst", obs.Fields{"tick": tick, "pages": f.LeakBurstPages})
				}
				// A burst that crashes the machine is an organic ending,
				// observed via the source's crash item below.
			}
		}
		if f.FragEvery > 0 && tick > 0 && tick%f.FragEvery == 0 {
			if n, err := m.InjectFragmentation(f.FragPages); err == nil && n > 0 {
				rep.FragmentedPages += n
				fault("fragmentation", obs.Fields{"tick": tick, "pages": n})
			}
		}
	}

	// Pipeline-level faults are injected at the transport boundary: the
	// fault source draws drop before corrupt from the dedicated stream, so
	// runs stay deterministic per seed.
	faultRNG := rand.New(rand.NewSource(cfg.Seed + 2))
	pipe := source.NewFault(src, source.FaultConfig{
		RNG:         faultRNG,
		DropRate:    f.DropRate,
		CorruptRate: f.CorruptRate,
		Corrupt: func(rng *rand.Rand, p [2]float64) [2]float64 {
			p[0] = corrupt(rng, p[0])
			if rng.Intn(2) == 0 {
				p[1] = corrupt(rng, p[1])
			}
			return p
		},
		OnDrop: func() {
			rep.Dropped++
			fault("drop", obs.Fields{"tick": src.Ticks() - 1})
		},
		OnCorrupt: func() {
			rep.Corrupted++
			fault("corrupt", obs.Fields{"tick": src.Ticks() - 1})
		},
	})

	// feed pushes one accepted sample through the detector inside a panic
	// guard and pets the watchdog. A pipeline panic is recovered, counted,
	// and the run continues — chaos runs must not abort on a contained
	// defect; the sample it was processing is lost, like any bad sample.
	feed := func(free, swap float64) {
		err := met.res.Recover(func() error {
			if f.PanicAtSample > 0 && rep.Samples+1 == f.PanicAtSample {
				f.PanicAtSample = 0 // fire once
				panic(fmt.Sprintf("chaos: injected pipeline panic at sample %d", rep.Samples+1))
			}
			mon.Add(free, swap)
			return nil
		})
		var pe *resilience.PanicError
		if errors.As(err, &pe) {
			rep.PanicsRecovered++
			fault("panic", obs.Fields{"panic": fmt.Sprint(pe.Value)})
			return
		}
		rep.Samples++
		met.samples.Inc()
		wd.Pet()
	}

	for {
		it, err := pipe.Next(ctx)
		if err == io.EOF {
			break
		}
		if err != nil {
			// Cancellation surfaces through the source (its check is
			// amortized over 64-tick blocks, keeping the loop hot-path
			// cheap); anything else ends the run with the partial report.
			if ctx.Err() != nil {
				rep.Cancelled = true
			}
			break
		}
		tick := src.Ticks() - 1
		for _, p := range it.Pairs {
			if acceptable(p[0], p[1]) {
				// Sign flips on a zero counter can survive the guard;
				// what matters is the detector never sees non-finite
				// input, so feed it like any in-range sample.
				feed(p[0], p[1])
			} else {
				rep.SkippedBad++
			}
		}

		if f.CancelAfterSamples > 0 && rep.Samples >= f.CancelAfterSamples {
			fault("cancel", obs.Fields{"tick": tick, "samples": rep.Samples})
			cancel()
			f.CancelAfterSamples = 0 // fire once
		}

		// Stream stalls: go quiet past the watchdog deadline, once per
		// StallEvery accepted samples.
		if f.StallEvery > 0 && rep.Samples >= lastStall+f.StallEvery {
			lastStall = rep.Samples
			rep.Stalls++
			fault("stall", obs.Fields{"tick": tick})
			time.Sleep(cfg.StallTimeout + cfg.StallTimeout/2)
			if wd.Stalled() {
				rep.WatchdogStalls++
			}
			wd.Pet()
		}

		if it.Crash != memsim.CrashNone {
			rep.Crash = it.Crash
			break
		}
	}
	rep.Ticks = src.Ticks()
	if ctx.Err() != nil && !rep.Cancelled {
		rep.Cancelled = true
	}
	rep.Jumps = len(mon.Jumps())
	rep.FinalPhase = mon.Phase()
	cfg.Events.Info("chaos_done", obs.Fields{
		"seed": cfg.Seed, "ticks": rep.Ticks, "samples": rep.Samples,
		"dropped": rep.Dropped, "corrupted": rep.Corrupted,
		"stalls": rep.Stalls, "leak_bursts": rep.LeakBursts,
		"panics": rep.PanicsRecovered, "cancelled": rep.Cancelled,
		"phase": rep.FinalPhase.String(), "crash": rep.Crash.String(),
	})
	return rep, nil
}

// RunCampaign executes one chaos run per seed sequentially (chaos runs
// stall and sleep on purpose; parallelism would let episodes mask each
// other). Cancellation stops the campaign between runs; completed reports
// are always returned. The error joins per-seed pipeline errors — an
// all-green campaign returns nil.
func RunCampaign(ctx context.Context, cfg Config, seeds []int64) ([]Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("chaos: no seeds: %w", ErrBadConfig)
	}
	var (
		reports []Report
		errs    []error
	)
	for _, seed := range seeds {
		if ctx.Err() != nil {
			break
		}
		run := cfg
		run.Seed = seed
		rep, err := Run(ctx, run)
		if err != nil {
			errs = append(errs, fmt.Errorf("chaos seed %d: %w", seed, err))
			continue
		}
		reports = append(reports, rep)
	}
	return reports, errors.Join(errs...)
}
