package chaos

import (
	"context"
	"testing"
)

// TestClusterChaosPlainLoad: routed load with no faults — zero loss and
// exact parity are unconditional.
func TestClusterChaosPlainLoad(t *testing.T) {
	rep, err := RunCluster(context.Background(), ClusterConfig{Seed: 11})
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	if !rep.Ok() {
		t.Fatalf("plain load degraded: %+v", rep)
	}
	if rep.SampleLoss != 0 || len(rep.ParityMismatches) != 0 {
		t.Fatalf("plain load lost data: %+v", rep)
	}
	if rep.Forwards == 0 {
		t.Fatalf("routing never forwarded — the cluster was not exercised: %+v", rep)
	}
}

// TestClusterChaosMigrateUnderLoadAndPartition: live migrations and a
// short partition while streaming — still zero loss, still exact parity
// (the cut is shorter than the down-mark tolerance, so routing blocks
// and retries instead of split-braining).
func TestClusterChaosMigrateUnderLoadAndPartition(t *testing.T) {
	rep, err := RunCluster(context.Background(), ClusterConfig{
		Seed: 12,
		Faults: ClusterFaults{
			Partition:        true,
			MigrateUnderLoad: true,
		},
	})
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	if !rep.Ok() {
		t.Fatalf("migrate+partition degraded: %+v", rep)
	}
	if rep.SampleLoss != 0 || len(rep.ParityMismatches) != 0 {
		t.Fatalf("zero-loss invariant broken: %+v", rep)
	}
	if rep.Migrations == 0 {
		t.Fatalf("no migration completed under load: %+v", rep)
	}
}

// TestClusterChaosKillMidIngest: a crash-kill without the final store
// sync. Loss is allowed — but only the victim's post-snapshot window:
// every source must end singly owned with state matching a legal replay
// of the batches that survived.
func TestClusterChaosKillMidIngest(t *testing.T) {
	rep, err := RunCluster(context.Background(), ClusterConfig{
		Seed: 13,
		Faults: ClusterFaults{
			KillMidIngest:    true,
			MigrateUnderLoad: true,
		},
	})
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	if !rep.Ok() {
		t.Fatalf("kill recovery degraded: %+v", rep)
	}
	if rep.Killed == "" || rep.VictimSources == 0 {
		t.Fatalf("the kill fault did not fire: %+v", rep)
	}
	if rep.Adoptions == 0 {
		t.Fatalf("no stale-snapshot adoption happened: %+v", rep)
	}
	if len(rep.ParityMismatches) != 0 {
		t.Fatalf("recovered states match no legal replay: %v", rep.ParityMismatches)
	}
}
