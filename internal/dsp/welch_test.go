package dsp

import (
	"math"
	"math/rand"
	"testing"
)

func TestWelchPSDSinusoidPeak(t *testing.T) {
	const n, segLen = 4096, 256
	// Frequency 16/256 cycles/sample -> bin 16 of the segment spectrum.
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * 16 * float64(i) / segLen)
	}
	psd, err := WelchPSD(x, segLen)
	if err != nil {
		t.Fatalf("WelchPSD: %v", err)
	}
	if len(psd) != segLen/2+1 {
		t.Fatalf("bins = %d, want %d", len(psd), segLen/2+1)
	}
	peak := 0
	for k, p := range psd {
		if p > psd[peak] {
			peak = k
		}
	}
	if peak != 16 {
		t.Errorf("peak at bin %d, want 16", peak)
	}
}

func TestWelchPSDVarianceReduction(t *testing.T) {
	// On white noise, the Welch estimate fluctuates much less across bins
	// than the raw periodogram.
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, 1<<14)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	welch, err := WelchPSD(x, 256)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := PowerSpectrum(x)
	if err != nil {
		t.Fatal(err)
	}
	cv := func(ps []float64) float64 {
		// Skip DC and Nyquist.
		vals := ps[1 : len(ps)-1]
		mean, sq := 0.0, 0.0
		for _, v := range vals {
			mean += v
		}
		mean /= float64(len(vals))
		for _, v := range vals {
			sq += (v - mean) * (v - mean)
		}
		return math.Sqrt(sq/float64(len(vals))) / mean
	}
	if cv(welch) >= cv(raw)/2 {
		t.Errorf("welch cv %v not clearly below periodogram cv %v", cv(welch), cv(raw))
	}
}

func TestWelchPSDErrors(t *testing.T) {
	if _, err := WelchPSD(make([]float64, 100), 7); err == nil {
		t.Error("non power-of-two segment should fail")
	}
	if _, err := WelchPSD(make([]float64, 100), 4); err == nil {
		t.Error("tiny segment should fail")
	}
	if _, err := WelchPSD(make([]float64, 100), 256); err == nil {
		t.Error("signal shorter than segment should fail")
	}
}
