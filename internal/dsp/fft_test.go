package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func complexAlmostEqual(a, b complex128, tol float64) bool {
	return cmplx.Abs(a-b) <= tol
}

func TestFFTKnownValues(t *testing.T) {
	// DFT of [1,0,0,0] is all ones.
	x := []complex128{1, 0, 0, 0}
	got, err := FFT(x)
	if err != nil {
		t.Fatalf("FFT: %v", err)
	}
	for i, v := range got {
		if !complexAlmostEqual(v, 1, 1e-12) {
			t.Errorf("FFT(delta)[%d] = %v, want 1", i, v)
		}
	}
	// DFT of constant signal concentrates at bin 0.
	c := []complex128{2, 2, 2, 2}
	got, err = FFT(c)
	if err != nil {
		t.Fatalf("FFT: %v", err)
	}
	if !complexAlmostEqual(got[0], 8, 1e-12) {
		t.Errorf("FFT(const)[0] = %v, want 8", got[0])
	}
	for i := 1; i < 4; i++ {
		if !complexAlmostEqual(got[i], 0, 1e-12) {
			t.Errorf("FFT(const)[%d] = %v, want 0", i, got[i])
		}
	}
}

func TestFFTSinusoidPeaksAtFrequency(t *testing.T) {
	const n, freq = 256, 7
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * freq * float64(i) / n)
	}
	spec, err := PowerSpectrum(x)
	if err != nil {
		t.Fatalf("PowerSpectrum: %v", err)
	}
	peak := 0
	for i, p := range spec {
		if p > spec[peak] {
			peak = i
		}
	}
	if peak != freq {
		t.Errorf("power spectrum peak at %d, want %d", peak, freq)
	}
}

func TestFFTInverseRoundTripPow2(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 8, 64, 1024} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		spec, err := FFT(x)
		if err != nil {
			t.Fatalf("FFT(n=%d): %v", n, err)
		}
		back, err := IFFT(spec)
		if err != nil {
			t.Fatalf("IFFT(n=%d): %v", n, err)
		}
		for i := range x {
			if !complexAlmostEqual(back[i], x[i], 1e-9) {
				t.Fatalf("n=%d round trip[%d] = %v, want %v", n, i, back[i], x[i])
			}
		}
	}
}

func TestFFTInverseRoundTripArbitraryLength(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{3, 5, 12, 100, 257, 1000} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		spec, err := FFT(x)
		if err != nil {
			t.Fatalf("FFT(n=%d): %v", n, err)
		}
		back, err := IFFT(spec)
		if err != nil {
			t.Fatalf("IFFT(n=%d): %v", n, err)
		}
		for i := range x {
			if !complexAlmostEqual(back[i], x[i], 1e-8) {
				t.Fatalf("n=%d round trip[%d] = %v, want %v", n, i, back[i], x[i])
			}
		}
	}
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{4, 7, 16, 30} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), 0)
		}
		fast, err := FFT(x)
		if err != nil {
			t.Fatalf("FFT: %v", err)
		}
		for k := 0; k < n; k++ {
			var want complex128
			for j := 0; j < n; j++ {
				ang := -2 * math.Pi * float64(k) * float64(j) / float64(n)
				want += x[j] * cmplx.Rect(1, ang)
			}
			if !complexAlmostEqual(fast[k], want, 1e-8) {
				t.Fatalf("n=%d FFT[%d] = %v, naive = %v", n, k, fast[k], want)
			}
		}
	}
}

func TestParsevalQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(seedDelta uint8) bool {
		n := 8 + int(seedDelta)%120
		x := make([]complex128, n)
		timeEnergy := 0.0
		for i := range x {
			x[i] = complex(rng.NormFloat64(), 0)
			timeEnergy += real(x[i]) * real(x[i])
		}
		spec, err := FFT(x)
		if err != nil {
			return false
		}
		freqEnergy := 0.0
		for _, v := range spec {
			m := cmplx.Abs(v)
			freqEnergy += m * m
		}
		freqEnergy /= float64(n)
		return math.Abs(timeEnergy-freqEnergy) < 1e-6*(1+timeEnergy)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestFFTErrors(t *testing.T) {
	if _, err := FFT(nil); err == nil {
		t.Error("FFT(nil) should fail")
	}
	if _, err := IFFT(nil); err == nil {
		t.Error("IFFT(nil) should fail")
	}
	if _, err := Convolve(nil, []float64{1}); err == nil {
		t.Error("Convolve with empty input should fail")
	}
}

func TestConvolveKnown(t *testing.T) {
	got, err := Convolve([]float64{1, 2, 3}, []float64{0, 1, 0.5})
	if err != nil {
		t.Fatalf("Convolve: %v", err)
	}
	want := []float64{0, 1, 2.5, 4, 1.5}
	if len(got) != len(want) {
		t.Fatalf("Convolve length = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Errorf("Convolve[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestConvolveMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := make([]float64, 37)
	b := make([]float64, 13)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	fast, err := Convolve(a, b)
	if err != nil {
		t.Fatalf("Convolve: %v", err)
	}
	for k := 0; k < len(a)+len(b)-1; k++ {
		want := 0.0
		for i := 0; i < len(a); i++ {
			if j := k - i; j >= 0 && j < len(b) {
				want += a[i] * b[j]
			}
		}
		if math.Abs(fast[k]-want) > 1e-8 {
			t.Fatalf("Convolve[%d] = %v, naive = %v", k, fast[k], want)
		}
	}
}

func TestFFTLinearityQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := func(alpha float64) bool {
		if math.IsNaN(alpha) || math.IsInf(alpha, 0) || math.Abs(alpha) > 1e6 {
			return true
		}
		n := 32
		x := make([]complex128, n)
		y := make([]complex128, n)
		sum := make([]complex128, n)
		ca := complex(alpha, 0)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), 0)
			y[i] = complex(rng.NormFloat64(), 0)
			sum[i] = x[i] + ca*y[i]
		}
		fx, err1 := FFT(x)
		fy, err2 := FFT(y)
		fsum, err3 := FFT(sum)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		for i := range fsum {
			if !complexAlmostEqual(fsum[i], fx[i]+ca*fy[i], 1e-6*(1+math.Abs(alpha))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
