package dsp

import (
	"fmt"
	"math"
)

// WelchPSD estimates the one-sided power spectral density of x by Welch's
// method: the signal is split into 50%-overlapping Hann-windowed segments
// of length segLen (a power of two), and the per-segment periodograms are
// averaged. Averaging trades frequency resolution for a large variance
// reduction relative to the raw periodogram, which matters for the
// low-frequency slope fits behind spectral Hurst estimation.
//
// The output has segLen/2+1 bins; bin k corresponds to frequency
// k/segLen cycles per sample.
func WelchPSD(x []float64, segLen int) ([]float64, error) {
	n := len(x)
	if segLen < 8 || !isPow2(segLen) {
		return nil, fmt.Errorf("welch psd: segment length %d: need a power of two >= 8", segLen)
	}
	if n < segLen {
		return nil, fmt.Errorf("welch psd: %d samples with segment %d: %w", n, segLen, ErrEmpty)
	}
	// Hann window and its power normalization.
	window := make([]float64, segLen)
	windowPower := 0.0
	for i := range window {
		window[i] = 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(segLen-1)))
		windowPower += window[i] * window[i]
	}
	hop := segLen / 2
	half := segLen/2 + 1
	psd := make([]float64, half)
	segments := 0
	buf := make([]complex128, segLen)
	for start := 0; start+segLen <= n; start += hop {
		// Demean the segment to suppress DC leakage.
		mean := 0.0
		for i := 0; i < segLen; i++ {
			mean += x[start+i]
		}
		mean /= float64(segLen)
		for i := 0; i < segLen; i++ {
			buf[i] = complex((x[start+i]-mean)*window[i], 0)
		}
		fftPow2(buf, false)
		for k := 0; k < half; k++ {
			re, im := real(buf[k]), imag(buf[k])
			psd[k] += (re*re + im*im) / windowPower
		}
		segments++
	}
	if segments == 0 {
		return nil, fmt.Errorf("welch psd: no full segments")
	}
	for k := range psd {
		psd[k] /= float64(segments)
	}
	return psd, nil
}
