package dsp

import (
	"math"
	"math/rand"
	"testing"
)

func TestWaveletString(t *testing.T) {
	if Haar.String() != "haar" || Daubechies4.String() != "db4" {
		t.Errorf("String() = %q, %q", Haar.String(), Daubechies4.String())
	}
	if Wavelet(99).String() == "" {
		t.Error("unknown wavelet String() empty")
	}
}

func TestFiltersOrthonormality(t *testing.T) {
	for _, w := range []Wavelet{Haar, Daubechies4} {
		t.Run(w.String(), func(t *testing.T) {
			lo, hi, err := w.filters()
			if err != nil {
				t.Fatalf("filters: %v", err)
			}
			sumSqLo, sumSqHi, dot, sumLo, sumHi := 0.0, 0.0, 0.0, 0.0, 0.0
			for i := range lo {
				sumSqLo += lo[i] * lo[i]
				sumSqHi += hi[i] * hi[i]
				dot += lo[i] * hi[i]
				sumLo += lo[i]
				sumHi += hi[i]
			}
			if math.Abs(sumSqLo-1) > 1e-12 || math.Abs(sumSqHi-1) > 1e-12 {
				t.Errorf("filter norms = %v, %v; want 1", sumSqLo, sumSqHi)
			}
			if math.Abs(dot) > 1e-12 {
				t.Errorf("lo·hi = %v, want 0", dot)
			}
			if math.Abs(sumLo-math.Sqrt2) > 1e-12 {
				t.Errorf("sum(lo) = %v, want sqrt(2)", sumLo)
			}
			if math.Abs(sumHi) > 1e-12 {
				t.Errorf("sum(hi) = %v, want 0 (vanishing moment)", sumHi)
			}
		})
	}
	if _, _, err := Wavelet(99).filters(); err == nil {
		t.Error("unknown wavelet should fail")
	}
}

func TestDb4KillsLinearSignals(t *testing.T) {
	// Daubechies-4 has two vanishing moments: detail coefficients of a
	// linear ramp vanish away from the periodic wrap-around.
	n := 128
	x := make([]float64, n)
	for i := range x {
		x[i] = 3 + 0.5*float64(i)
	}
	d, err := Decompose(x, Daubechies4, 1)
	if err != nil {
		t.Fatalf("Decompose: %v", err)
	}
	detail := d.Levels[0].Detail
	// Skip the last two coefficients affected by periodic boundary.
	for k := 0; k < len(detail)-2; k++ {
		if math.Abs(detail[k]) > 1e-9 {
			t.Fatalf("db4 detail[%d] = %v on linear ramp, want ~0", k, detail[k])
		}
	}
}

func TestHaarKnownDecomposition(t *testing.T) {
	x := []float64{4, 2, 5, 5}
	d, err := Decompose(x, Haar, 1)
	if err != nil {
		t.Fatalf("Decompose: %v", err)
	}
	s := math.Sqrt2 / 2
	wantApprox := []float64{s * 6, s * 10}
	wantDetail := []float64{s * 2, 0}
	for i := range wantApprox {
		if math.Abs(d.Approx[i]-wantApprox[i]) > 1e-12 {
			t.Errorf("approx[%d] = %v, want %v", i, d.Approx[i], wantApprox[i])
		}
		if math.Abs(d.Levels[0].Detail[i]-wantDetail[i]) > 1e-12 {
			t.Errorf("detail[%d] = %v, want %v", i, d.Levels[0].Detail[i], wantDetail[i])
		}
	}
}

func TestDecomposeReconstructRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, w := range []Wavelet{Haar, Daubechies4} {
		for _, n := range []int{8, 64, 256} {
			x := make([]float64, n)
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			d, err := Decompose(x, w, 0)
			if err != nil {
				t.Fatalf("%s n=%d Decompose: %v", w, n, err)
			}
			back, err := d.Reconstruct()
			if err != nil {
				t.Fatalf("%s n=%d Reconstruct: %v", w, n, err)
			}
			if len(back) != n {
				t.Fatalf("%s n=%d reconstruct length = %d", w, n, len(back))
			}
			for i := range x {
				if math.Abs(back[i]-x[i]) > 1e-9 {
					t.Fatalf("%s n=%d reconstruct[%d] = %v, want %v", w, n, i, back[i], x[i])
				}
			}
		}
	}
}

func TestDecomposeEnergyConservation(t *testing.T) {
	// Orthonormal transform preserves total energy.
	rng := rand.New(rand.NewSource(8))
	x := make([]float64, 512)
	inEnergy := 0.0
	for i := range x {
		x[i] = rng.NormFloat64()
		inEnergy += x[i] * x[i]
	}
	d, err := Decompose(x, Daubechies4, 0)
	if err != nil {
		t.Fatalf("Decompose: %v", err)
	}
	outEnergy := 0.0
	for _, e := range d.Energy() {
		outEnergy += e
	}
	for _, a := range d.Approx {
		outEnergy += a * a
	}
	if math.Abs(inEnergy-outEnergy) > 1e-8*inEnergy {
		t.Errorf("energy in=%v out=%v", inEnergy, outEnergy)
	}
}

func TestDecomposeLevelsAndErrors(t *testing.T) {
	x := make([]float64, 64)
	d, err := Decompose(x, Haar, 3)
	if err != nil {
		t.Fatalf("Decompose: %v", err)
	}
	if len(d.Levels) != 3 {
		t.Errorf("levels = %d, want 3", len(d.Levels))
	}
	wantLens := []int{32, 16, 8}
	for i, lv := range d.Levels {
		if len(lv.Detail) != wantLens[i] {
			t.Errorf("level %d detail length = %d, want %d", i+1, len(lv.Detail), wantLens[i])
		}
		if lv.Scale != i+1 {
			t.Errorf("level %d scale = %d", i, lv.Scale)
		}
	}
	if _, err := Decompose([]float64{1}, Daubechies4, 1); err == nil {
		t.Error("signal shorter than filter should fail")
	}
	if _, err := Decompose(x, Wavelet(42), 1); err == nil {
		t.Error("unknown wavelet should fail")
	}
}

func TestLeadersDominateCoefficients(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := make([]float64, 256)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	d, err := Decompose(x, Daubechies4, 4)
	if err != nil {
		t.Fatalf("Decompose: %v", err)
	}
	leaders := d.Leaders()
	if len(leaders) != len(d.Levels) {
		t.Fatalf("leaders levels = %d, want %d", len(leaders), len(d.Levels))
	}
	for j, lv := range d.Levels {
		for k, c := range lv.Detail {
			if leaders[j].Detail[k] < math.Abs(c)-1e-15 {
				t.Fatalf("leader[%d][%d] = %v < |coef| %v", j, k, leaders[j].Detail[k], math.Abs(c))
			}
			if leaders[j].Detail[k] < 0 {
				t.Fatalf("negative leader at [%d][%d]", j, k)
			}
		}
	}
	// A leader at scale 2 position k must dominate children 2k, 2k+1 at scale 1.
	for k, l := range leaders[1].Detail {
		for _, child := range []int{2 * k, 2*k + 1} {
			if child < len(d.Levels[0].Detail) {
				if l < math.Abs(d.Levels[0].Detail[child])-1e-15 {
					t.Fatalf("leader scale2[%d]=%v < child coef %v", k, l, d.Levels[0].Detail[child])
				}
			}
		}
	}
}

func TestLeadersIsolatedSpikePropagates(t *testing.T) {
	x := make([]float64, 128)
	x[64] = 100
	d, err := Decompose(x, Haar, 4)
	if err != nil {
		t.Fatalf("Decompose: %v", err)
	}
	leaders := d.Leaders()
	// The spike energy must be visible in the leaders at every scale.
	for j := range leaders {
		max := 0.0
		for _, l := range leaders[j].Detail {
			if l > max {
				max = l
			}
		}
		if max < 1 {
			t.Errorf("scale %d leader max = %v, spike lost", j+1, max)
		}
	}
}

func TestReconstructMismatchedLevels(t *testing.T) {
	d := DWT{
		Wavelet: Haar,
		Levels:  []DWTLevel{{Scale: 1, Detail: []float64{1, 2, 3}}},
		Approx:  []float64{1, 2},
	}
	if _, err := d.Reconstruct(); err == nil {
		t.Error("mismatched level lengths should fail")
	}
}
