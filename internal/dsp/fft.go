// Package dsp provides the signal-processing kernels used by the fractal
// and multifractal estimators: a fast Fourier transform for arbitrary
// lengths (radix-2 with a Bluestein fallback), FFT-based convolution, and
// discrete wavelet transforms (Haar and Daubechies-4) used for
// wavelet-leader Hölder estimation.
package dsp

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
)

// ErrEmpty is returned when a transform is applied to an empty signal.
var ErrEmpty = errors.New("dsp: empty input")

// FFT returns the discrete Fourier transform of x. The input is not
// modified. Any length is accepted: powers of two use the in-place
// radix-2 algorithm, other lengths use Bluestein's chirp-z trick.
func FFT(x []complex128) ([]complex128, error) {
	if len(x) == 0 {
		return nil, fmt.Errorf("fft: %w", ErrEmpty)
	}
	out := append([]complex128(nil), x...)
	if isPow2(len(out)) {
		fftPow2(out, false)
		return out, nil
	}
	return bluestein(out, false)
}

// IFFT returns the inverse discrete Fourier transform of x, normalized by
// 1/N so that IFFT(FFT(x)) == x.
func IFFT(x []complex128) ([]complex128, error) {
	if len(x) == 0 {
		return nil, fmt.Errorf("ifft: %w", ErrEmpty)
	}
	out := append([]complex128(nil), x...)
	if isPow2(len(out)) {
		fftPow2(out, true)
	} else {
		var err error
		out, err = bluestein(out, true)
		if err != nil {
			return nil, err
		}
	}
	n := complex(float64(len(out)), 0)
	for i := range out {
		out[i] /= n
	}
	return out, nil
}

// FFTReal transforms a real signal, returning the full complex spectrum.
func FFTReal(x []float64) ([]complex128, error) {
	cx := make([]complex128, len(x))
	for i, v := range x {
		cx[i] = complex(v, 0)
	}
	return FFT(cx)
}

// PowerSpectrum returns |X_k|^2 for the first N/2+1 frequencies of a real
// signal, the one-sided periodogram.
func PowerSpectrum(x []float64) ([]float64, error) {
	spec, err := FFTReal(x)
	if err != nil {
		return nil, err
	}
	half := len(spec)/2 + 1
	out := make([]float64, half)
	for i := 0; i < half; i++ {
		m := cmplx.Abs(spec[i])
		out[i] = m * m
	}
	return out, nil
}

// Convolve returns the linear convolution of a and b (length
// len(a)+len(b)-1) computed via FFT.
func Convolve(a, b []float64) ([]float64, error) {
	if len(a) == 0 || len(b) == 0 {
		return nil, fmt.Errorf("convolve: %w", ErrEmpty)
	}
	n := len(a) + len(b) - 1
	size := nextPow2(n)
	fa := make([]complex128, size)
	fb := make([]complex128, size)
	for i, v := range a {
		fa[i] = complex(v, 0)
	}
	for i, v := range b {
		fb[i] = complex(v, 0)
	}
	fftPow2(fa, false)
	fftPow2(fb, false)
	for i := range fa {
		fa[i] *= fb[i]
	}
	fftPow2(fa, true)
	out := make([]float64, n)
	scale := 1 / float64(size)
	for i := range out {
		out[i] = real(fa[i]) * scale
	}
	return out, nil
}

// fftPow2 computes an in-place radix-2 Cooley-Tukey FFT. inverse selects
// the conjugate transform (no normalization applied).
func fftPow2(x []complex128, inverse bool) {
	n := len(x)
	if n <= 1 {
		return
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for length := 2; length <= n; length <<= 1 {
		ang := sign * 2 * math.Pi / float64(length)
		wl := cmplx.Rect(1, ang)
		for start := 0; start < n; start += length {
			w := complex(1, 0)
			half := length / 2
			for k := 0; k < half; k++ {
				u := x[start+k]
				v := x[start+k+half] * w
				x[start+k] = u + v
				x[start+k+half] = u - v
				w *= wl
			}
		}
	}
}

// bluestein computes the DFT of arbitrary length via the chirp-z transform
// expressed as a convolution of power-of-two length.
func bluestein(x []complex128, inverse bool) ([]complex128, error) {
	n := len(x)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// Chirp factors w_k = exp(sign*i*pi*k^2/n).
	chirp := make([]complex128, n)
	for k := 0; k < n; k++ {
		// k*k may overflow for astronomically long inputs; mod 2n keeps
		// the phase exact because exp is 2*pi periodic.
		kk := (int64(k) * int64(k)) % int64(2*n)
		chirp[k] = cmplx.Rect(1, sign*math.Pi*float64(kk)/float64(n))
	}
	size := nextPow2(2*n - 1)
	a := make([]complex128, size)
	b := make([]complex128, size)
	for k := 0; k < n; k++ {
		a[k] = x[k] * chirp[k]
		b[k] = cmplx.Conj(chirp[k])
	}
	for k := 1; k < n; k++ {
		b[size-k] = cmplx.Conj(chirp[k])
	}
	fftPow2(a, false)
	fftPow2(b, false)
	for i := range a {
		a[i] *= b[i]
	}
	fftPow2(a, true)
	out := make([]complex128, n)
	scale := complex(1/float64(size), 0)
	for k := 0; k < n; k++ {
		out[k] = a[k] * scale * chirp[k]
	}
	return out, nil
}

func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
