package dsp

import (
	"fmt"
	"math"
)

// Wavelet identifies a discrete wavelet family supported by this package.
type Wavelet int

// Supported wavelet families.
const (
	// Haar is the 2-tap Haar wavelet.
	Haar Wavelet = iota + 1
	// Daubechies4 is the 4-tap Daubechies wavelet (two vanishing moments),
	// the standard choice for Hölder-regularity estimation of signals with
	// linear trends.
	Daubechies4
)

// String implements fmt.Stringer.
func (w Wavelet) String() string {
	switch w {
	case Haar:
		return "haar"
	case Daubechies4:
		return "db4"
	default:
		return fmt.Sprintf("wavelet(%d)", int(w))
	}
}

// filters returns the scaling (low-pass) and wavelet (high-pass)
// decomposition filters.
func (w Wavelet) filters() (lo, hi []float64, err error) {
	switch w {
	case Haar:
		s := math.Sqrt2 / 2
		lo = []float64{s, s}
	case Daubechies4:
		r3 := math.Sqrt(3)
		d := 4 * math.Sqrt2
		lo = []float64{(1 + r3) / d, (3 + r3) / d, (3 - r3) / d, (1 - r3) / d}
	default:
		return nil, nil, fmt.Errorf("wavelet %d: unsupported family", int(w))
	}
	hi = make([]float64, len(lo))
	for i := range lo {
		// Quadrature mirror: g[k] = (-1)^k h[L-1-k].
		hi[i] = lo[len(lo)-1-i]
		if i%2 == 1 {
			hi[i] = -hi[i]
		}
	}
	return lo, hi, nil
}

// DWTLevel holds the detail coefficients of one dyadic scale.
type DWTLevel struct {
	// Scale is the dyadic level (1 is the finest).
	Scale int
	// Detail holds the wavelet (high-pass) coefficients at this scale.
	Detail []float64
}

// DWT is a multi-level discrete wavelet decomposition.
type DWT struct {
	// Wavelet is the family used for the decomposition.
	Wavelet Wavelet
	// Levels holds detail coefficients, finest scale first.
	Levels []DWTLevel
	// Approx holds the remaining approximation (low-pass) coefficients.
	Approx []float64
}

// Decompose performs a maxLevels-deep discrete wavelet transform with
// periodic boundary handling. maxLevels <= 0 selects the deepest
// decomposition the signal length allows. The signal length must be at
// least the filter length.
func Decompose(x []float64, w Wavelet, maxLevels int) (DWT, error) {
	lo, hi, err := w.filters()
	if err != nil {
		return DWT{}, err
	}
	if len(x) < len(lo) {
		return DWT{}, fmt.Errorf("dwt %s: signal length %d shorter than filter %d", w, len(x), len(lo))
	}
	limit := 0
	for n := len(x); n >= len(lo) && n >= 2; n /= 2 {
		limit++
	}
	if maxLevels <= 0 || maxLevels > limit {
		maxLevels = limit
	}
	out := DWT{Wavelet: w}
	approx := append([]float64(nil), x...)
	for level := 1; level <= maxLevels; level++ {
		n := len(approx)
		half := n / 2
		nextApprox := make([]float64, half)
		detail := make([]float64, half)
		for k := 0; k < half; k++ {
			var a, d float64
			for j := 0; j < len(lo); j++ {
				idx := (2*k + j) % n
				a += lo[j] * approx[idx]
				d += hi[j] * approx[idx]
			}
			nextApprox[k] = a
			detail[k] = d
		}
		out.Levels = append(out.Levels, DWTLevel{Scale: level, Detail: detail})
		approx = nextApprox
		if len(approx) < len(lo) || len(approx) < 2 {
			break
		}
	}
	out.Approx = approx
	return out, nil
}

// Energy returns the sum of squared detail coefficients per level, finest
// scale first. For stationary self-similar signals the log2 of the energy
// grows linearly in the scale with slope related to the Hurst exponent.
func (d DWT) Energy() []float64 {
	out := make([]float64, len(d.Levels))
	for i, lv := range d.Levels {
		sum := 0.0
		for _, c := range lv.Detail {
			sum += c * c
		}
		out[i] = sum
	}
	return out
}

// Leaders computes the wavelet leaders at each scale: for position k at
// scale j, the leader is the maximum absolute detail coefficient over the
// dyadic neighbourhood {k-1, k, k+1} at scale j and all finer scales whose
// support intersects it. Leaders are the standard robust statistic for
// pointwise Hölder estimation.
func (d DWT) Leaders() []DWTLevel {
	out := make([]DWTLevel, len(d.Levels))
	// cumMax[j][k] is the max |coefficient| over the dyadic subtree rooted
	// at position k of scale j (all finer scales underneath).
	cumMax := make([][]float64, len(d.Levels))
	for j, lv := range d.Levels {
		cm := make([]float64, len(lv.Detail))
		for k, c := range lv.Detail {
			m := math.Abs(c)
			if j > 0 {
				prev := cumMax[j-1]
				for _, child := range []int{2 * k, 2*k + 1} {
					if child < len(prev) && prev[child] > m {
						m = prev[child]
					}
				}
			}
			cm[k] = m
		}
		cumMax[j] = cm
		leaders := make([]float64, len(lv.Detail))
		for k := range leaders {
			m := cm[k]
			if k > 0 && cm[k-1] > m {
				m = cm[k-1]
			}
			if k+1 < len(cm) && cm[k+1] > m {
				m = cm[k+1]
			}
			leaders[k] = m
		}
		out[j] = DWTLevel{Scale: lv.Scale, Detail: leaders}
	}
	return out
}

// Reconstruct inverts a decomposition produced by Decompose, returning the
// original signal (up to floating-point error). Only exact dyadic
// decompositions (every level halving evenly) reconstruct perfectly; this
// holds for power-of-two input lengths.
func (d DWT) Reconstruct() ([]float64, error) {
	lo, hi, err := d.Wavelet.filters()
	if err != nil {
		return nil, err
	}
	approx := append([]float64(nil), d.Approx...)
	for level := len(d.Levels) - 1; level >= 0; level-- {
		detail := d.Levels[level].Detail
		if len(detail) != len(approx) {
			return nil, fmt.Errorf("reconstruct %s level %d: approx %d and detail %d mismatch",
				d.Wavelet, level+1, len(approx), len(detail))
		}
		n := 2 * len(approx)
		next := make([]float64, n)
		for k := 0; k < len(approx); k++ {
			for j := 0; j < len(lo); j++ {
				idx := (2*k + j) % n
				next[idx] += lo[j]*approx[k] + hi[j]*detail[k]
			}
		}
		approx = next
	}
	return approx, nil
}
