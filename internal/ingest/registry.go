// Package ingest is the fleet serving layer: a concurrent ingestion
// registry that routes memory-counter samples from many machines into
// per-source online aging monitors, plus the TCP/HTTP transports, the
// alert fan-out bus and the snapshot persistence that make it a daemon
// (cmd/agingd).
//
// The hot path is hash-sharded: a source id is FNV-hashed onto one of N
// shards, each owned by a single goroutine fed by a bounded channel.
// Because every sample of a source is handled by the same goroutine, the
// per-source detector set (a detect.MonitorSet — the Hölder pipeline by
// default, optionally entropy and workload-adaptive detectors beside it)
// needs no locks and its verdicts are byte-for-byte identical to a
// single-process run over the same samples — the property the agingd
// self-test asserts. Producers experience
// explicit backpressure (the default: a full shard queue blocks the
// producing connection, and only it) or explicit drops
// (Config.DropWhenFull), never silent loss; every drop is counted by
// reason.
//
// Telemetry (internal/obs) and fault-tolerance (internal/resilience) are
// wired through the same nil-safe hooks as the rest of the repository:
// per-shard queue-depth gauges and sample counters, drop/alert/bad-line
// counters, a handle-latency histogram, per-source stall watchdogs, and
// webhook retries.
package ingest

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"agingmf/internal/aging"
	"agingmf/internal/control"
	"agingmf/internal/detect"
	"agingmf/internal/obs"
	"agingmf/internal/resilience"
	transport "agingmf/internal/source"
	"agingmf/internal/trace"
)

// Ingest errors. ErrQueueFull is only returned in DropWhenFull mode; in
// the default backpressure mode a full queue blocks the caller instead.
var (
	ErrClosed        = errors.New("ingest: registry closed")
	ErrNoSource      = errors.New("ingest: sample without source id")
	ErrBadSample     = errors.New("ingest: non-finite sample")
	ErrQueueFull     = errors.New("ingest: shard queue full")
	ErrUnknownSource = errors.New("ingest: unknown source")
)

// Config parameterizes a Registry. The zero value is usable: 8 shards,
// 1024-sample queues, backpressure on full queues, the experiment-standard
// monitor configuration, and a 65536-source cap.
type Config struct {
	// Shards is the number of single-goroutine monitor shards (0 selects 8).
	Shards int
	// QueueSize is the per-shard sample queue bound (0 selects 1024).
	QueueSize int
	// DropWhenFull selects drop-and-count over backpressure when a shard
	// queue is full. The default (false) blocks the producer, which on the
	// TCP transport turns into flow control on exactly the offending
	// connection.
	DropWhenFull bool
	// Monitor configures the Hölder pipeline of every per-source holder
	// (and, by default, adaptive) detector (zero value selects
	// aging.DefaultConfig). Bound the history (HistoryLimit) in production:
	// the registry holds one detector set per source.
	Monitor aging.Config
	// Detectors selects each source's detector suite by kind ("holder",
	// "entropy", "adaptive"; see internal/detect). Empty selects holder
	// only — the original single-pipeline daemon.
	Detectors []string
	// Detect tunes the non-holder detectors (zero sub-configurations
	// select detect defaults). Detect.Monitor is overridden by Monitor
	// above so there is exactly one pipeline configuration.
	Detect detect.Config
	// MaxSources caps the registry's source population so a malformed or
	// hostile flood cannot allocate monitors without bound (0 selects
	// 65536; negative means unlimited). Samples for new sources beyond the
	// cap are dropped and counted (reason "max_sources").
	MaxSources int
	// StallTimeout arms a per-source watchdog: a source silent for this
	// long raises a "stall" alert (and "resume" when it returns). 0
	// disables.
	StallTimeout time.Duration
	// AlertRing is the size of the recent-alert ring served by /api/alerts
	// (0 selects 256).
	AlertRing int
	// Restore pre-populates sources from SaveState blobs (source id →
	// detect.MonitorSet.SaveState; legacy aging.DualMonitor blobs resume
	// as holder-only sets), as read by ReadSnapshot. A restarted daemon
	// resumes every source exactly where its detectors stopped.
	Restore map[string][]byte
	// Obs receives the ingest metric families. Nil disables (hot paths
	// then pay only nil checks).
	Obs *obs.Registry
	// Events receives structured lifecycle events (source_created,
	// snapshot_saved, ...). Nil disables.
	Events *obs.Events
	// TraceSampleEvery enables sampled pipeline tracing: one in every N
	// ingested units (line, sample or batch) is timed through parse,
	// queue wait, detection and alert fan-out, feeding the
	// agingmf_pipeline_stage_seconds histograms and the span ring served
	// by /api/trace/export. 0 disables — the hot path then pays one nil
	// check and nothing else.
	TraceSampleEvery int
	// TraceSpanCapacity bounds the retained span ring (0 selects 4096).
	TraceSpanCapacity int
	// FlightRecorderDepth retains the last N annotated samples per source
	// (value, score, phase, verdict, stage timings) for post-hoc
	// inspection via /api/trace/{source}. 0 disables.
	FlightRecorderDepth int
}

// withDefaults resolves the zero-value conveniences.
func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 1024
	}
	if c.Monitor == (aging.Config{}) {
		c.Monitor = aging.DefaultConfig()
	}
	if len(c.Detectors) == 0 {
		c.Detectors = []string{detect.KindHolder}
	}
	if c.MaxSources == 0 {
		c.MaxSources = 65536
	}
	if c.AlertRing <= 0 {
		c.AlertRing = 256
	}
	return c
}

// DetectorConfig resolves the detect.Config every per-source detector
// set is built from: Detect with Monitor as the single pipeline
// configuration. The self-test oracles rebuild reference sets from it.
func (c Config) DetectorConfig() detect.Config {
	dc := c.Detect
	dc.Monitor = c.Monitor
	return dc
}

// shardMsg is one unit of shard work: a sample, a batch of samples for
// one source, a columnar batch from the binary wire, or a control
// closure to run on the shard goroutine (state snapshots use this to
// serialize with the sample stream instead of locking the monitors).
type shardMsg struct {
	s     Sample
	batch *Batch
	cols  *transport.ColumnarBatch
	ctl   *ctlMsg

	// seq is the tracer sequence of a sampled unit (0 = untraced) and
	// enq its enqueue time (UnixNano), so the shard can measure the
	// queue wait explicitly. 16 bytes per message, set only when traced.
	seq uint64
	enq int64
}

// ctlMsg runs fn on the owning shard goroutine and closes done after.
type ctlMsg struct {
	fn   func(*shard)
	done chan struct{}
}

// shard owns a partition of the source population. Only its goroutine
// touches sources' monitors; accepted/depth are read by observers.
type shard struct {
	id  int
	reg *Registry
	ch  chan shardMsg

	sources map[string]*source // owned by the shard goroutine

	accepted atomic.Uint64
	depth    atomic.Int64

	samplesCtr *obs.Counter
	depthGauge *obs.Gauge

	// Scratch reused by the annotated (traced / flight-recorded) path;
	// owned by the shard goroutine. pairs bridges columnar batches onto
	// the row-oriented observe path.
	pair1 [1][2]float64
	pairs [][2]float64
	recs  []trace.Record
	tm    aging.StageNanos
}

// source is one monitored machine. The detector set and lastPhase are
// owned by the shard goroutine; the atomic mirror fields are the read
// side of the status API.
type source struct {
	id        string
	shardID   int
	mon       *detect.MonitorSet
	wd        *resilience.Watchdog
	fr        *trace.FlightRecorder // nil unless FlightRecorderDepth > 0
	lastPhase aging.Phase

	samples  atomic.Int64
	jumps    atomic.Int64
	phase    atomic.Int32
	lastFree atomic.Uint64 // Float64bits
	lastSwap atomic.Uint64 // Float64bits
	lastSeen atomic.Int64  // UnixNano; 0 = restored, not yet seen live
	stalled  atomic.Bool

	// dets mirrors each detector's verdict counters for the status API.
	// The slice is fixed at attach; its entries are atomics.
	dets []*detectorMirror
}

// detectorMirror is the lock-free read side of one detector's state.
type detectorMirror struct {
	kind   string
	jumps  atomic.Int64
	recals atomic.Int64
	phase  atomic.Int32
}

// det finds the mirror for a detector kind (the sets are tiny; a linear
// scan beats any map on this path).
func (src *source) det(kind string) *detectorMirror {
	for _, m := range src.dets {
		if m.kind == kind {
			return m
		}
	}
	return nil
}

// DetectorStatus is one detector's section of a source's status: its
// verdict counters and phase, labeled by detector kind.
type DetectorStatus struct {
	Kind           string `json:"kind"`
	Phase          string `json:"phase"`
	Jumps          int64  `json:"jumps"`
	Recalibrations int64  `json:"recalibrations,omitempty"`
}

// SourceStatus is the externally visible state of one source. Jumps and
// Phase aggregate across the source's detectors; Detectors carries the
// per-detector breakdown.
type SourceStatus struct {
	ID        string           `json:"id"`
	Shard     int              `json:"shard"`
	Samples   int64            `json:"samples"`
	Jumps     int64            `json:"jumps"`
	Phase     string           `json:"phase"`
	LastFree  float64          `json:"last_free"`
	LastSwap  float64          `json:"last_swap"`
	Stalled   bool             `json:"stalled"`
	LastSeen  time.Time        `json:"last_seen"`
	Detectors []DetectorStatus `json:"detectors,omitempty"`
}

// status assembles the atomic mirror into a SourceStatus.
func (src *source) status() SourceStatus {
	st := SourceStatus{
		ID:       src.id,
		Shard:    src.shardID,
		Samples:  src.samples.Load(),
		Jumps:    src.jumps.Load(),
		Phase:    aging.Phase(src.phase.Load()).String(),
		LastFree: math.Float64frombits(src.lastFree.Load()),
		LastSwap: math.Float64frombits(src.lastSwap.Load()),
		Stalled:  src.stalled.Load(),
	}
	if ns := src.lastSeen.Load(); ns != 0 {
		st.LastSeen = time.Unix(0, ns)
	}
	st.Detectors = make([]DetectorStatus, len(src.dets))
	for i, m := range src.dets {
		st.Detectors[i] = DetectorStatus{
			Kind:           m.kind,
			Phase:          aging.Phase(m.phase.Load()).String(),
			Jumps:          m.jumps.Load(),
			Recalibrations: m.recals.Load(),
		}
	}
	return st
}

// ShardStat is one shard's accounting snapshot.
type ShardStat struct {
	ID       int    `json:"id"`
	Sources  int    `json:"sources"`
	Accepted uint64 `json:"accepted"`
	Depth    int64  `json:"depth"`
}

// Registry is the sharded source registry. All exported methods are safe
// for concurrent use.
type Registry struct {
	cfg    Config
	shards []*shard
	met    metrics
	bus    *AlertBus
	tr     *trace.Tracer // nil unless TraceSampleEvery > 0

	byID      sync.Map // source id → *source (read side of the status API)
	nsources  atomic.Int64
	accepted  atomic.Uint64
	dropped   atomic.Uint64
	badLines  atomic.Uint64
	badFrames atomic.Uint64

	stopc    chan struct{}
	senders  atomic.Int64 // in-flight Ingest/withShard channel users
	wg       sync.WaitGroup
	closing  atomic.Bool
	drained  atomic.Bool
	closeMu  sync.Mutex
	directMu sync.Mutex // serializes post-drain direct shard access

	maxSourcesWarned atomic.Bool
}

// NewRegistry builds and starts a registry: shard goroutines are running
// and sources from cfg.Restore are resumed when it returns.
func NewRegistry(cfg Config) (*Registry, error) {
	cfg = cfg.withDefaults()
	// Validate the detector suite once, up front — per-source construction
	// must not be the first place a bad config or kind list surfaces.
	if _, err := detect.New(cfg.Detectors, cfg.DetectorConfig()); err != nil {
		return nil, fmt.Errorf("ingest: %w", err)
	}
	r := &Registry{
		cfg:   cfg,
		met:   newMetrics(cfg.Obs),
		stopc: make(chan struct{}),
		tr: trace.New(trace.Config{
			SampleEvery:  cfg.TraceSampleEvery,
			SpanCapacity: cfg.TraceSpanCapacity,
			Obs:          cfg.Obs,
		}),
	}
	r.bus = newAlertBus(cfg.AlertRing, r.met)
	r.shards = make([]*shard, cfg.Shards)
	for i := range r.shards {
		r.shards[i] = &shard{
			id:         i,
			reg:        r,
			ch:         make(chan shardMsg, cfg.QueueSize),
			sources:    make(map[string]*source),
			samplesCtr: r.met.samples.With(fmt.Sprint(i)),
			depthGauge: r.met.queueDepth.With(fmt.Sprint(i)),
		}
	}
	for id, blob := range cfg.Restore {
		if err := validSource(id); err != nil {
			return nil, fmt.Errorf("ingest: restore %q: %w", id, err)
		}
		// A snapshot's detector suite travels with the blob: legacy
		// DualMonitor blobs resume as holder-only sets, set envelopes
		// resume whatever suite wrote them, regardless of cfg.Detectors
		// (which governs sources created after the restore).
		set, err := detect.RestoreMonitorSet(blob)
		if err != nil {
			return nil, fmt.Errorf("ingest: restore %q: %w", id, err)
		}
		sh := r.shards[r.shardIndex(id)]
		src := r.attachSource(sh, id, set)
		src.samples.Store(int64(set.SamplesSeen()))
		src.jumps.Store(int64(set.Jumps()))
	}
	for _, sh := range r.shards {
		r.wg.Add(1)
		go sh.run()
	}
	return r, nil
}

// Config returns the resolved configuration.
func (r *Registry) Config() Config { return r.cfg }

// Alerts returns the registry's alert bus.
func (r *Registry) Alerts() *AlertBus { return r.bus }

// shardIndex hashes a source id onto a shard (FNV-1a).
func (r *Registry) shardIndex(id string) int {
	h := fnv.New64a()
	_, _ = h.Write([]byte(id))
	return int(h.Sum64() % uint64(len(r.shards)))
}

// Ingest routes one sample to its source's shard. In the default mode a
// full shard queue blocks (backpressure); with DropWhenFull it returns
// ErrQueueFull and counts the drop. After Close it returns ErrClosed.
func (r *Registry) Ingest(s Sample) error {
	return r.ingest(s, r.tr.Sample())
}

// ingest is Ingest with the unit's tracer sequence already drawn (0 =
// untraced) — IngestLine draws it earlier so the parse stage is covered by
// the same sampled unit.
func (r *Registry) ingest(s Sample, seq uint64) error {
	if s.Source == "" {
		return ErrNoSource
	}
	if math.IsNaN(s.Free) || math.IsInf(s.Free, 0) || math.IsNaN(s.Swap) || math.IsInf(s.Swap, 0) {
		return ErrBadSample
	}
	// Sender registration is an atomic counter, not a WaitGroup: a
	// WaitGroup Add racing a parked Wait is a documented misuse panic,
	// and Ingest legitimately races Close. The order — increment, then
	// check the closing flag — pairs with Close's order — set the flag,
	// then poll the counter — so either this sender sees the flag and
	// backs out, or Close sees the sender and waits for it.
	r.senders.Add(1)
	defer r.senders.Add(-1)
	if r.closing.Load() {
		r.drop("shutdown")
		return ErrClosed
	}
	sh := r.shards[r.shardIndex(s.Source)]
	msg := shardMsg{s: s}
	if seq != 0 {
		msg.seq, msg.enq = seq, time.Now().UnixNano()
	}
	if r.cfg.DropWhenFull {
		select {
		case sh.ch <- msg:
		default:
			r.drop("queue_full")
			return ErrQueueFull
		}
	} else {
		select {
		case sh.ch <- msg:
		case <-r.stopc:
			r.drop("shutdown")
			return ErrClosed
		}
	}
	sh.depthGauge.Set(float64(sh.depth.Add(1)))
	return nil
}

// IngestBatch routes a run of samples for one source to its shard as a
// single unit: one queue slot and one channel send for the whole batch,
// which is where the >= 2x samples/sec of batched ingestion comes from
// (see BenchmarkIngestBatch). The monitor consumes the pairs in order,
// so verdicts are byte-for-byte identical to per-sample Ingest calls.
// Queueing semantics match Ingest; an empty batch is a no-op.
func (r *Registry) IngestBatch(b Batch) error {
	return r.ingestBatch(b, r.tr.Sample())
}

// ingestBatch is IngestBatch with the batch's tracer sequence already
// drawn (a batch is one traced unit, however many pairs it carries).
func (r *Registry) ingestBatch(b Batch, seq uint64) error {
	if b.Source == "" {
		return ErrNoSource
	}
	if len(b.Pairs) == 0 {
		return nil
	}
	for _, p := range b.Pairs {
		if math.IsNaN(p[0]) || math.IsInf(p[0], 0) || math.IsNaN(p[1]) || math.IsInf(p[1], 0) {
			return ErrBadSample
		}
	}
	// Same sender/closing protocol as Ingest; see the comment there.
	r.senders.Add(1)
	defer r.senders.Add(-1)
	if r.closing.Load() {
		r.dropN("shutdown", len(b.Pairs))
		return ErrClosed
	}
	sh := r.shards[r.shardIndex(b.Source)]
	msg := shardMsg{batch: &b}
	if seq != 0 {
		msg.seq, msg.enq = seq, time.Now().UnixNano()
	}
	if r.cfg.DropWhenFull {
		select {
		case sh.ch <- msg:
		default:
			r.dropN("queue_full", len(b.Pairs))
			return ErrQueueFull
		}
	} else {
		select {
		case sh.ch <- msg:
		case <-r.stopc:
			r.dropN("shutdown", len(b.Pairs))
			return ErrClosed
		}
	}
	sh.depthGauge.Set(float64(sh.depth.Add(1)))
	return nil
}

// IngestLine parses one wire line — single-sample or batch;-framed — and
// routes it. Lines without a source= field are attributed to
// defaultSource. Blank lines and '#' comments are accepted and ignored
// (keep-alives).
func (r *Registry) IngestLine(defaultSource, line string) error {
	trimmed := trimLine(line)
	if trimmed == "" {
		return nil
	}
	// One tracer draw covers the whole unit — parse, queue wait and the
	// shard-side stages all share this sequence number.
	seq := r.tr.Sample()
	var parseStart time.Time
	if seq != 0 {
		parseStart = time.Now()
	}
	if strings.HasPrefix(trimmed, BatchPrefix) {
		b, err := ParseBatch(trimmed)
		if err != nil {
			r.badLines.Add(1)
			r.met.badLines.Inc()
			return err
		}
		if b.Source == "" {
			b.Source = defaultSource
		}
		if seq != 0 {
			r.tr.Record(trace.StageParse, b.Source, r.shardIndex(b.Source), seq, parseStart, time.Since(parseStart))
		}
		return r.ingestBatch(b, seq)
	}
	s, err := ParseLine(trimmed)
	if err != nil {
		r.badLines.Add(1)
		r.met.badLines.Inc()
		return err
	}
	if s.Source == "" {
		s.Source = defaultSource
	}
	if seq != 0 {
		r.tr.Record(trace.StageParse, s.Source, r.shardIndex(s.Source), seq, parseStart, time.Since(parseStart))
	}
	return r.ingest(s, seq)
}

// trimLine strips whitespace and filters comment/blank lines.
func trimLine(line string) string {
	t := strings.TrimSpace(line)
	if t == "" || t[0] == '#' {
		return ""
	}
	return t
}

// drop counts one dropped sample by reason.
func (r *Registry) drop(reason string) {
	r.dropped.Add(1)
	r.met.dropped.With(reason).Inc()
}

// dropN counts n dropped samples by reason (a rejected batch drops every
// sample it carried).
func (r *Registry) dropN(reason string, n int) {
	r.dropped.Add(uint64(n))
	r.met.dropped.With(reason).Add(uint64(n))
}

// Accepted returns the number of samples consumed by monitors.
func (r *Registry) Accepted() uint64 { return r.accepted.Load() }

// Dropped returns the number of samples dropped before any monitor.
func (r *Registry) Dropped() uint64 { return r.dropped.Load() }

// BadLines returns the number of malformed wire lines rejected.
func (r *Registry) BadLines() uint64 { return r.badLines.Load() }

// BadFrames returns the number of binary wire frames rejected whole
// (CRC mismatch, malformed payload, over-long, desync).
func (r *Registry) BadFrames() uint64 { return r.badFrames.Load() }

// rejectFrame counts one rejected binary frame by reason.
func (r *Registry) rejectFrame(reason string) {
	r.badFrames.Add(1)
	r.met.badFrames.With(reason).Inc()
}

// NumSources returns the current source population.
func (r *Registry) NumSources() int { return int(r.nsources.Load()) }

// Source returns the status of one source.
func (r *Registry) Source(id string) (SourceStatus, bool) {
	v, ok := r.byID.Load(id)
	if !ok {
		return SourceStatus{}, false
	}
	return v.(*source).status(), true
}

// Sources returns every source's status, sorted by id.
func (r *Registry) Sources() []SourceStatus {
	var out []SourceStatus
	r.byID.Range(func(_, v any) bool {
		out = append(out, v.(*source).status())
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ShardStats returns per-shard accounting: population, accepted samples,
// current queue depth.
func (r *Registry) ShardStats() []ShardStat {
	out := make([]ShardStat, len(r.shards))
	for i, sh := range r.shards {
		out[i] = ShardStat{
			ID:       sh.id,
			Sources:  sh.sourceCount(),
			Accepted: sh.accepted.Load(),
			Depth:    sh.depth.Load(),
		}
	}
	return out
}

// sourceCount counts this shard's sources via the registry's read-side
// map, so observers never touch the goroutine-owned map.
func (sh *shard) sourceCount() int {
	n := 0
	sh.reg.byID.Range(func(_, v any) bool {
		if v.(*source).shardID == sh.id {
			n++
		}
		return true
	})
	return n
}

// Tracer returns the registry's pipeline tracer (nil when tracing is
// disabled); callers use it for span export and overhead accounting.
func (r *Registry) Tracer() *trace.Tracer { return r.tr }

// FlightRecords returns one source's flight-recorder tail, oldest first.
// It is nil (not an error) when the recorder is disabled. The recorder has
// its own lock, so the snapshot never waits on the shard goroutine.
func (r *Registry) FlightRecords(id string) ([]trace.Record, error) {
	v, ok := r.byID.Load(id)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownSource, id)
	}
	return v.(*source).fr.Snapshot(), nil
}

// MonitorState returns the SaveState blob of one source's monitor,
// serialized against that source's sample stream (the blob reflects a
// sample boundary, never a torn state).
func (r *Registry) MonitorState(id string) ([]byte, error) {
	if _, ok := r.byID.Load(id); !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownSource, id)
	}
	var (
		blob []byte
		err  error
	)
	werr := r.withShard(r.shards[r.shardIndex(id)], func(sh *shard) {
		src, ok := sh.sources[id]
		if !ok {
			err = fmt.Errorf("%w: %q", ErrUnknownSource, id)
			return
		}
		blob, err = src.mon.SaveState()
	})
	if werr != nil {
		return nil, werr
	}
	return blob, err
}

// SnapshotStates collects every source's SaveState blob, shard by shard,
// each shard serialized against its own sample stream. It works both on a
// live registry and after Close (the monitors are then quiescent).
func (r *Registry) SnapshotStates() (map[string][]byte, error) {
	out := make(map[string][]byte, r.NumSources())
	var errs []error
	for _, sh := range r.shards {
		werr := r.withShard(sh, func(sh *shard) {
			for id, src := range sh.sources {
				blob, err := src.mon.SaveState()
				if err != nil {
					errs = append(errs, fmt.Errorf("ingest: snapshot %q: %w", id, err))
					continue
				}
				out[id] = blob
			}
		})
		if werr != nil {
			return nil, werr
		}
	}
	r.met.snapshots.Inc()
	return out, errors.Join(errs...)
}

// Drain blocks until every sample already queued at the shards has been
// folded into its monitor — a read barrier for callers (tests, the
// cluster settle loop) that need SnapshotStates/Source to reflect all
// prior Ingest calls. It does not stop new ingestion.
func (r *Registry) Drain() error {
	for _, sh := range r.shards {
		if err := r.withShard(sh, func(*shard) {}); err != nil {
			return err
		}
	}
	return nil
}

// withShard runs fn in the shard's goroutine context: via a control
// message on a live registry, directly (under a mutex) once drained.
func (r *Registry) withShard(sh *shard, fn func(*shard)) error {
	if r.drained.Load() {
		r.directMu.Lock()
		defer r.directMu.Unlock()
		fn(sh)
		return nil
	}
	ctl := &ctlMsg{fn: fn, done: make(chan struct{})}
	r.senders.Add(1)
	if r.closing.Load() {
		r.senders.Add(-1)
		// Close is in progress: wait for the drain, then go direct.
		return r.withShardAfterDrain(sh, fn)
	}
	select {
	case sh.ch <- shardMsg{ctl: ctl}:
		r.senders.Add(-1)
	case <-r.stopc:
		r.senders.Add(-1)
		return r.withShardAfterDrain(sh, fn)
	}
	<-ctl.done
	return nil
}

// withShardAfterDrain waits out an in-progress Close, then runs fn
// directly on the quiescent shard.
func (r *Registry) withShardAfterDrain(sh *shard, fn func(*shard)) error {
	r.wg.Wait() // shard goroutines exit once Close drains the queues
	r.directMu.Lock()
	defer r.directMu.Unlock()
	fn(sh)
	return nil
}

// Close stops intake, drains every queued sample into its monitor, stops
// the shard goroutines and watchdogs, and closes the alert bus. It is
// idempotent. After Close the registry is still readable (statuses,
// SnapshotStates) — only ingestion is gone.
func (r *Registry) Close() error {
	r.closeMu.Lock()
	defer r.closeMu.Unlock()
	if r.drained.Load() {
		return nil
	}
	r.closing.Store(true)
	close(r.stopc)
	// Wait out in-flight senders: anyone who registered before seeing the
	// closing flag either completes a send or escapes via stopc; new
	// senders back out immediately. Once the counter reaches zero no
	// goroutine is or will be touching the shard channels.
	for r.senders.Load() != 0 {
		time.Sleep(50 * time.Microsecond)
	}
	for _, sh := range r.shards {
		close(sh.ch)
	}
	r.wg.Wait() // shards drain their queues, then exit
	r.drained.Store(true)
	r.bus.Close()
	return nil
}

// attachSource registers a new source object on both the shard-owned map
// side (caller's duty) and the read-side index. The detector set must be
// fresh or restored; phase and per-detector mirrors are initialized from
// it.
func (r *Registry) attachSource(sh *shard, id string, set *detect.MonitorSet) *source {
	src := &source{
		id:        id,
		shardID:   sh.id,
		mon:       set,
		fr:        trace.NewFlightRecorder(r.cfg.FlightRecorderDepth),
		lastPhase: set.Phase(),
	}
	src.phase.Store(int32(set.Phase()))
	src.dets = make([]*detectorMirror, len(set.Kinds()))
	for i, ds := range set.Status() {
		m := &detectorMirror{kind: ds.Kind}
		m.jumps.Store(int64(ds.Jumps))
		m.recals.Store(int64(ds.Recalibrations))
		m.phase.Store(int32(set.Detector(i).Phase()))
		src.dets[i] = m
	}
	if r.cfg.StallTimeout > 0 {
		src.wd = resilience.NewWatchdog(r.cfg.StallTimeout, r.met.res, func(gap time.Duration) {
			src.stalled.Store(true)
			r.publishAlert(control.Stall(id, gap.Milliseconds()))
		})
	}
	sh.sources[id] = src
	r.byID.Store(id, src)
	r.met.sources.Set(float64(r.nsources.Add(1)))
	return src
}

// publishAlert counts and fans out one alert.
func (r *Registry) publishAlert(a Alert) {
	r.met.alerts.With(a.Kind).Inc()
	r.bus.Publish(a)
}

// run is the shard goroutine: it consumes samples and control messages
// until the channel closes (Close drains what is queued first), then
// stops this shard's watchdogs.
func (sh *shard) run() {
	defer sh.reg.wg.Done()
	for msg := range sh.ch {
		if msg.ctl != nil {
			// Control messages are not counted on enqueue, so they must
			// not be counted here either — decrementing would drive the
			// depth negative and make an idle shard look permanently
			// backlogged to the stall checker.
			msg.ctl.fn(sh)
			close(msg.ctl.done)
			continue
		}
		sh.depthGauge.Set(float64(sh.depth.Add(-1)))
		if msg.seq != 0 {
			// The queue-wait span: enqueue time travels in the message so
			// the wait is measured explicitly, not inferred from depth.
			id := msg.s.Source
			switch {
			case msg.batch != nil:
				id = msg.batch.Source
			case msg.cols != nil:
				id = msg.cols.Source
			}
			enq := time.Unix(0, msg.enq)
			sh.reg.tr.Record(trace.StageQueue, id, sh.id, msg.seq, enq, time.Since(enq))
			sh.reg.tr.QueueDepth(sh.id, sh.depth.Load())
		}
		if msg.batch != nil {
			sh.handleBatch(msg.batch, msg.seq)
			continue
		}
		if msg.cols != nil {
			sh.handleColumns(msg.cols, msg.seq)
			continue
		}
		sh.handle(msg.s, msg.seq)
	}
	for _, src := range sh.sources {
		src.wd.Stop()
	}
}

// resolve looks up (or lazily creates) the source object for id. Returns
// nil when the sample(s) must be dropped, with n samples counted against
// the drop reason.
func (sh *shard) resolve(id string, n int) *source {
	r := sh.reg
	if src, ok := sh.sources[id]; ok {
		return src
	}
	if r.cfg.MaxSources > 0 && r.nsources.Load() >= int64(r.cfg.MaxSources) {
		r.dropN("max_sources", n)
		if r.maxSourcesWarned.CompareAndSwap(false, true) {
			r.cfg.Events.Warn("ingest_max_sources", obs.Fields{
				"limit": r.cfg.MaxSources, "source": id,
			})
		}
		return nil
	}
	set, err := detect.New(r.cfg.Detectors, r.cfg.DetectorConfig())
	if err != nil {
		// The config was validated at construction; this cannot
		// happen short of a defect. Count, don't crash the shard.
		r.dropN("monitor_error", n)
		return nil
	}
	src := r.attachSource(sh, id, set)
	r.cfg.Events.Info("ingest_source_created", obs.Fields{
		"source": id, "shard": sh.id,
	})
	return src
}

// handle feeds one sample into its source's detector set — the
// single-writer hot path. No locks are taken: the set is goroutine-owned
// and the status mirror is atomics. The untraced, unrecorded path is the
// original direct Add; everything else goes through observe.
func (sh *shard) handle(s Sample, seq uint64) {
	r := sh.reg
	src := sh.resolve(s.Source, 1)
	if src == nil {
		return
	}
	var start time.Time
	if r.cfg.Obs != nil || seq != 0 {
		start = time.Now()
	}
	var events []detect.Event
	if seq == 0 && src.fr == nil {
		events = src.mon.Add(s.Free, s.Swap)
	} else {
		sh.pair1[0] = [2]float64{s.Free, s.Swap}
		events = sh.observe(src, sh.pair1[:], seq)
	}
	sh.commit(src, events, s.Free, s.Swap, 1, start, seq)
}

// handleBatch feeds a whole batch into its source's detector set with one
// map lookup and one bookkeeping pass; verdicts are identical to feeding
// the pairs through handle one at a time.
func (sh *shard) handleBatch(b *Batch, seq uint64) {
	r := sh.reg
	if len(b.Pairs) == 0 {
		return
	}
	src := sh.resolve(b.Source, len(b.Pairs))
	if src == nil {
		return
	}
	var start time.Time
	if r.cfg.Obs != nil || seq != 0 {
		start = time.Now()
	}
	var events []detect.Event
	if seq == 0 && src.fr == nil {
		events = src.mon.AddBatch(b.Pairs)
	} else {
		events = sh.observe(src, b.Pairs, seq)
	}
	last := b.Pairs[len(b.Pairs)-1]
	sh.commit(src, events, last[0], last[1], len(b.Pairs), start, seq)
}

// observe is the annotated detection path, taken when the unit is traced
// or the source has a flight recorder. It feeds the pairs one at a time —
// verdict-identical to AddBatch — so each sample's value, score, phase and
// jump verdict can be captured, accumulates per-stage stream timings for
// traced units, and appends the annotated tail to the flight recorder in
// one lock. Scratch lives on the shard, so the steady state allocates only
// when a jump actually fires.
func (sh *shard) observe(src *source, pairs [][2]float64, seq uint64) []detect.Event {
	r := sh.reg
	var tm *aging.StageNanos
	if seq != 0 {
		sh.tm = aging.StageNanos{}
		tm = &sh.tm
	}
	var detectStart time.Time
	if seq != 0 {
		detectStart = time.Now()
	}
	recs := sh.recs[:0]
	var all []detect.Event
	wall := time.Now().UnixNano()
	for _, p := range pairs {
		js := src.mon.AddTraced(p[0], p[1], tm)
		all = append(all, js...)
		if src.fr != nil {
			scoreFree, scoreSwap := src.mon.LastStats()
			njumps := 0
			for _, ev := range js {
				if ev.Kind == detect.EventJump {
					njumps++
				}
			}
			recs = append(recs, trace.Record{
				Seq:       uint64(src.mon.SamplesSeen()),
				Wall:      wall,
				Free:      p[0],
				Swap:      p[1],
				ScoreFree: scoreFree,
				ScoreSwap: scoreSwap,
				Phase:     src.mon.Phase().String(),
				Jumps:     njumps,
			})
		}
	}
	if seq != 0 {
		end := time.Now()
		r.tr.Record(trace.StageDetect, src.id, sh.id, seq, detectStart, end.Sub(detectStart))
		// The stream stages ran interleaved inside detect; export each
		// accumulated total as one span ending at the detect boundary.
		stages := [...]int64{tm.Est, tm.Vol, tm.Std, tm.Gate}
		for i, ns := range stages {
			d := time.Duration(ns)
			r.tr.Record(trace.StageEst+trace.Stage(i), src.id, sh.id, seq, end.Add(-d), d)
		}
		if n := len(recs); n > 0 {
			recs[n-1].TraceSeq = seq
			recs[n-1].StageNs[trace.StageEst] = tm.Est
			recs[n-1].StageNs[trace.StageVol] = tm.Vol
			recs[n-1].StageNs[trace.StageStd] = tm.Std
			recs[n-1].StageNs[trace.StageGate] = tm.Gate
			recs[n-1].StageNs[trace.StageDetect] = end.Sub(detectStart).Nanoseconds()
		}
	}
	if len(recs) > 0 {
		src.fr.Append(recs)
	}
	sh.recs = recs[:0] // keep grown capacity for the next batch
	return all
}

// commit publishes the post-Add bookkeeping shared by the single-sample
// and batch paths: status mirrors, counters, watchdog, and alerts for n
// newly ingested samples whose most recent pair is (free, swap). Every
// event carries its emitting detector's label into the alert stream, so
// two detectors firing on one tick yield two distinguishable alerts.
func (sh *shard) commit(src *source, events []detect.Event, free, swap float64, n int, start time.Time, seq uint64) {
	r := sh.reg
	src.samples.Add(int64(n))
	src.lastFree.Store(math.Float64bits(free))
	src.lastSwap.Store(math.Float64bits(swap))
	src.lastSeen.Store(time.Now().UnixNano())
	sh.accepted.Add(uint64(n))
	sh.samplesCtr.Add(uint64(n))
	r.accepted.Add(uint64(n))
	var alertStart time.Time
	if seq != 0 {
		alertStart = time.Now()
	}
	if src.wd.Pet() {
		src.stalled.Store(false)
		r.publishAlert(control.Resume(src.id))
	}

	// The verdict boundary: each detect event crosses into the control
	// plane exactly once, via the canonical translation.
	for _, ev := range events {
		m := src.det(ev.Detector)
		if ev.Kind == detect.EventRecalibrate {
			if m != nil {
				m.recals.Add(1)
			}
		} else { // detect.EventJump
			src.jumps.Add(1)
			if m != nil {
				m.jumps.Add(1)
			}
		}
		r.publishAlert(control.FromDetectEvent(src.id, ev))
	}
	if len(events) > 0 {
		// Detector phases only move when events fire; refresh the
		// per-detector mirrors off the hot steady-state path.
		for i, m := range src.dets {
			m.phase.Store(int32(src.mon.Detector(i).Phase()))
		}
	}
	if phase := src.mon.Phase(); phase != src.lastPhase {
		r.publishAlert(control.PhaseChange(src.id, src.mon.SamplesSeen(), src.lastPhase, phase))
		src.lastPhase = phase
		src.phase.Store(int32(phase))
	}
	if seq != 0 {
		r.tr.Record(trace.StageAlerts, src.id, sh.id, seq, alertStart, time.Since(alertStart))
	}
	if r.cfg.Obs != nil {
		r.met.handleSec.Observe(time.Since(start).Seconds())
	}
}
