package ingest

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"agingmf/internal/obs"
	"agingmf/internal/runtime"
	transport "agingmf/internal/source"
)

// ServerConfig parameterizes a Server.
type ServerConfig struct {
	// Registry configures the sharded monitor registry the server feeds.
	Registry Config
	// TCPAddr is the line-protocol listener address (e.g. ":9178";
	// empty disables the TCP transport).
	TCPAddr string
	// HTTPAddr is the API listener address, serving POST /ingest, the
	// /api endpoints, /metrics and /healthz (empty disables).
	HTTPAddr string
	// MaxLineBytes bounds one wire line (0 selects 64 KiB). Longer lines
	// poison the connection (counted, then closed).
	MaxLineBytes int
	// MaxBadLines is the per-connection malformed-line budget; past it
	// the connection is closed (0 selects 100, negative means unlimited).
	MaxBadLines int
	// IdleTimeout closes a TCP connection that sends nothing for this
	// long (0 disables). Slow clients beyond it are evicted, not served.
	IdleTimeout time.Duration
	// SnapshotPath enables state persistence: the registry's monitor
	// states are saved there every SnapshotEvery and on Shutdown, and
	// loaded from there (when the file exists) by NewServer.
	SnapshotPath string
	// SnapshotEvery is the periodic snapshot cadence (0 selects 1m;
	// meaningless without SnapshotPath).
	SnapshotEvery time.Duration
	// EnablePprof additionally serves net/http/pprof on the API listener.
	EnablePprof bool
}

// withDefaults resolves the zero-value conveniences.
func (c ServerConfig) withDefaults() ServerConfig {
	if c.MaxLineBytes <= 0 {
		c.MaxLineBytes = 64 << 10
	}
	if c.MaxBadLines == 0 {
		c.MaxBadLines = 100
	}
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = time.Minute
	}
	return c
}

// Server is the ingestion daemon: the sharded registry plus its TCP and
// HTTP transports, periodic snapshots and graceful shutdown.
type Server struct {
	cfg ServerConfig
	reg *Registry
	ev  *obs.Events

	tcpLn   net.Listener
	httpLn  net.Listener
	httpSrv *http.Server

	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	router LineRouter // nil: lines go straight to the registry
	mounts []mount    // extra HTTP handlers (the cluster endpoints)

	snap        *runtime.SnapshotManager
	snapSources atomic.Int64
	wg          sync.WaitGroup
	started     atomic.Bool
	stopping    atomic.Bool
	stopOnce    sync.Once

	stallc        chan struct{} // closed by Shutdown; stops watchShards
	stalledShards atomic.Int32  // shards holding queued work without progress
}

// LineRouter interposes on every transport wire line; the cluster node
// implements it to route lines to their owning peer instead of the
// local registry.
type LineRouter interface {
	IngestLine(defaultSource, line string) error
}

// ColumnRouter is the columnar extension of LineRouter: a router that
// also implements it receives binary-wire batches in decoded form (and
// takes ownership of them — route, forward or Release). Routers
// without it get each frame re-rendered as a text batch line.
type ColumnRouter interface {
	IngestColumns(cb *transport.ColumnarBatch) error
}

// mount is one extra HTTP route registered via Mount.
type mount struct {
	pattern string
	handler http.Handler
}

// NewServer builds a server. When cfg.SnapshotPath names an existing
// snapshot, every source in it is restored before the first sample
// arrives; a snapshot that fails to decode or restore is quarantined to
// <path>.corrupt (event "ingest_snapshot_corrupt", counter
// agingmf_snapshot_corrupt_total) and the server starts fresh — corrupt
// state must never brick a restart. Call Start to bind the listeners.
func NewServer(cfg ServerConfig) (*Server, error) {
	cfg = cfg.withDefaults()
	fromSnapshot := false
	if cfg.SnapshotPath != "" && cfg.Registry.Restore == nil {
		restore, err := ReadSnapshot(cfg.SnapshotPath)
		if err != nil {
			quarantineSnapshot(cfg, err)
		} else {
			cfg.Registry.Restore = restore
			fromSnapshot = restore != nil
		}
	}
	reg, err := NewRegistry(cfg.Registry)
	if err != nil && fromSnapshot {
		// The file decoded but a monitor blob inside it would not restore
		// (a bit flip keeps the gob frame parseable surprisingly often).
		quarantineSnapshot(cfg, err)
		cfg.Registry.Restore = nil
		reg, err = NewRegistry(cfg.Registry)
	}
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:   cfg,
		reg:   reg,
		ev:    cfg.Registry.Events,
		conns: make(map[net.Conn]struct{}),
	}
	s.snap = &runtime.SnapshotManager{
		Path:  cfg.SnapshotPath,
		Every: cfg.SnapshotEvery,
		State: func() ([]byte, error) {
			states, err := s.reg.SnapshotStates()
			if err != nil {
				return nil, err
			}
			s.snapSources.Store(int64(len(states)))
			return EncodeSnapshot(states)
		},
		OnSave: func() {
			s.ev.Info("ingest_snapshot_saved", obs.Fields{
				"path": cfg.SnapshotPath, "sources": int(s.snapSources.Load()),
			})
		},
		OnError: func(err error) {
			s.ev.Error("ingest_snapshot_failed", obs.Fields{"error": err.Error()})
		},
	}
	return s, nil
}

// quarantineSnapshot moves a corrupt snapshot aside and reports it.
func quarantineSnapshot(cfg ServerConfig, cause error) {
	dst, qerr := runtime.Quarantine(cfg.SnapshotPath)
	fields := obs.Fields{"path": cfg.SnapshotPath, "error": cause.Error()}
	if qerr != nil {
		fields["quarantine_error"] = qerr.Error()
	} else {
		fields["quarantined_to"] = dst
	}
	cfg.Registry.Events.Error("ingest_snapshot_corrupt", fields)
	cfg.Registry.Obs.Counter(metricSnapshotCorrupt,
		"Snapshots quarantined as undecodable or unrestorable at startup.").Inc()
}

// Registry exposes the underlying registry (statuses, alerts, states).
func (s *Server) Registry() *Registry { return s.reg }

// SetLineRouter interposes r on every transport wire line (TCP and POST
// /ingest) — the cluster routing hook. Call before Start; nil restores
// direct registry ingestion.
func (s *Server) SetLineRouter(r LineRouter) { s.router = r }

// Mount registers an extra HTTP handler on the API mux (the cluster
// endpoints ride the same listener). Call before Start or Handler.
func (s *Server) Mount(pattern string, handler http.Handler) {
	s.mounts = append(s.mounts, mount{pattern: pattern, handler: handler})
}

// ingestLine feeds one wire line through the router when one is set,
// straight to the registry otherwise.
func (s *Server) ingestLine(defaultSource, line string) error {
	if s.router != nil {
		return s.router.IngestLine(defaultSource, line)
	}
	return s.reg.IngestLine(defaultSource, line)
}

// Start binds the configured listeners and begins serving. It returns
// once the listeners are bound (serving continues on background
// goroutines until Shutdown).
func (s *Server) Start() error {
	if !s.started.CompareAndSwap(false, true) {
		return errors.New("ingest: server already started")
	}
	if s.cfg.TCPAddr != "" {
		ln, err := net.Listen("tcp", s.cfg.TCPAddr)
		if err != nil {
			return fmt.Errorf("ingest: tcp listener: %w", err)
		}
		s.tcpLn = ln
		s.wg.Add(1)
		go s.acceptLoop(ln)
	}
	if s.cfg.HTTPAddr != "" {
		ln, err := net.Listen("tcp", s.cfg.HTTPAddr)
		if err != nil {
			if s.tcpLn != nil {
				s.tcpLn.Close()
			}
			return fmt.Errorf("ingest: http listener: %w", err)
		}
		s.httpLn = ln
		s.httpSrv = &http.Server{Handler: s.Handler()}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			_ = s.httpSrv.Serve(ln)
		}()
	}
	s.snap.Start()
	if s.cfg.Registry.StallTimeout > 0 {
		s.stallc = make(chan struct{})
		s.wg.Add(1)
		go s.watchShards(s.cfg.Registry.StallTimeout)
	}
	return nil
}

// watchShards polls per-shard progress and flips /healthz to 503 when any
// shard holds queued work without accepting a sample for at least timeout.
// Progress is inferred from the accepted counter, not from watchdog pets:
// an idle shard (empty queue, nothing to do) is healthy, only a shard that
// has work and is not draining it is stalled — the failure mode where a
// wedged monitor or a stuck control closure silently freezes one
// partition of the fleet while the others keep serving.
func (s *Server) watchShards(timeout time.Duration) {
	defer s.wg.Done()
	tick := timeout / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	type progress struct {
		accepted uint64
		since    time.Time
	}
	last := make([]progress, len(s.reg.shards))
	now := time.Now()
	for i, sh := range s.reg.shards {
		last[i] = progress{accepted: sh.accepted.Load(), since: now}
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-s.stallc:
			return
		case <-t.C:
		}
		now = time.Now()
		stalled := int32(0)
		for i, sh := range s.reg.shards {
			acc := sh.accepted.Load()
			if acc != last[i].accepted || sh.depth.Load() == 0 {
				last[i] = progress{accepted: acc, since: now}
				continue
			}
			if now.Sub(last[i].since) >= timeout {
				stalled++
			}
		}
		if prev := s.stalledShards.Swap(stalled); prev == 0 && stalled > 0 {
			s.ev.Warn("ingest_shard_stalled", obs.Fields{"shards": int(stalled)})
		}
	}
}

// TCPAddr returns the bound TCP listener address (nil when disabled).
func (s *Server) TCPAddr() net.Addr {
	if s.tcpLn == nil {
		return nil
	}
	return s.tcpLn.Addr()
}

// HTTPAddr returns the bound API listener address (nil when disabled).
func (s *Server) HTTPAddr() net.Addr {
	if s.httpLn == nil {
		return nil
	}
	return s.httpLn.Addr()
}

// acceptLoop accepts line-protocol connections until the listener closes.
func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed by Shutdown
		}
		s.reg.met.conns.With("tcp").Inc()
		s.reg.met.connsOpen.Add(1)
		s.connMu.Lock()
		s.conns[conn] = struct{}{}
		s.connMu.Unlock()
		s.wg.Add(1)
		go s.handleConn(conn)
	}
}

// dropConn unregisters and closes one connection.
func (s *Server) dropConn(conn net.Conn) {
	s.connMu.Lock()
	_, live := s.conns[conn]
	delete(s.conns, conn)
	s.connMu.Unlock()
	if live {
		s.reg.met.connsOpen.Add(-1)
		conn.Close()
	}
}

// handleConn consumes one ingest connection. The first byte negotiates
// the protocol: a columnar frame's magic (0xA9, never the first byte of
// a text line) selects the binary frame loop, anything else the text
// line loop — producers pick a wire by just writing it, no handshake.
func (s *Server) handleConn(conn net.Conn) {
	defer s.wg.Done()
	defer s.dropConn(conn)

	defaultSource := hostOf(conn.RemoteAddr())
	if s.cfg.IdleTimeout > 0 {
		_ = conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
	}
	br := bufio.NewReaderSize(conn, 4096)
	first, err := br.Peek(1)
	if err != nil {
		return // closed before the first byte: nothing to serve
	}
	if first[0] == transport.FrameMagic0 {
		s.serveFrames(conn, br, defaultSource)
		return
	}
	s.serveLines(conn, br, defaultSource)
}

// serveLines consumes one text line-protocol connection. Lines without
// a source= field are attributed to the peer's host. Malformed lines
// are counted against the connection's budget; exceeding it (or the
// line length bound, or the idle timeout) closes the connection. A
// closed or mid-stream-reset connection is normal fleet behaviour, not
// an error.
func (s *Server) serveLines(conn net.Conn, br *bufio.Reader, defaultSource string) {
	sc := bufio.NewScanner(br)
	sc.Buffer(make([]byte, 0, 4096), s.cfg.MaxLineBytes)
	bad := 0
	for {
		if s.cfg.IdleTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		}
		if !sc.Scan() {
			// EOF, reset, eviction by deadline, or an over-long line —
			// all are expected producer behaviour; the scanner error is
			// surfaced as an event below for the curious.
			if err := sc.Err(); err != nil && !s.stopping.Load() {
				s.ev.Info("ingest_conn_error", obs.Fields{
					"peer": conn.RemoteAddr().String(), "error": err.Error(),
				})
			}
			return
		}
		err := s.ingestLine(defaultSource, sc.Text())
		switch {
		case err == nil:
		case errors.Is(err, ErrClosed):
			return
		case errors.Is(err, ErrQueueFull):
			// Drop already counted; in drop mode the producer is not
			// throttled, so keep reading.
		default:
			bad++
			s.ev.Warn("ingest_bad_line", obs.Fields{
				"peer":  conn.RemoteAddr().String(),
				"line":  truncate(sc.Text(), 64),
				"error": err.Error(),
			})
			if s.cfg.MaxBadLines >= 0 && bad > s.cfg.MaxBadLines {
				fmt.Fprintf(conn, "ERR too many malformed lines (%d)\n", bad)
				return
			}
		}
	}
}

// serveFrames consumes one binary frame-protocol connection. Each frame
// is read whole (bounded by MaxLineBytes, like a text line), decoded
// zero-copy into a pooled ColumnarBatch and handed to the registry as
// one unit. A frame that fails its CRC or its syntax is rejected whole
// and counted by reason against the malformed budget — the length
// framing already consumed it, so the stream continues at the next
// frame boundary. Losing the magic (desync) or an over-long frame
// poisons the connection: with length-prefixed framing there is nothing
// to resync on.
func (s *Server) serveFrames(conn net.Conn, br *bufio.Reader, defaultSource string) {
	var buf []byte
	bad := 0
	// Per-connection source-id intern: producers repeat one id frame
	// after frame; re-use the last string instead of re-allocating it.
	var lastSrc string
	intern := func(raw []byte) string {
		if string(raw) != lastSrc { // alloc-free comparison
			lastSrc = string(raw)
		}
		return lastSrc
	}
	for {
		if s.cfg.IdleTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		}
		frame, err := transport.ReadFrame(br, buf, s.cfg.MaxLineBytes)
		if err != nil {
			switch {
			case errors.Is(err, io.EOF):
			case errors.Is(err, transport.ErrFrameTooLarge):
				s.reg.rejectFrame("too_large")
				s.connEvent(conn, err)
			case errors.Is(err, transport.ErrNotFrame), errors.Is(err, transport.ErrBadFrame):
				s.reg.rejectFrame("desync")
				s.connEvent(conn, err)
			default:
				// Read error, reset, eviction by deadline — expected
				// producer behaviour, surfaced for the curious.
				s.connEvent(conn, err)
			}
			return
		}
		buf = frame
		cb := transport.AcquireColumnarBatch()
		if derr := transport.DecodeFrame(frame, cb, intern); derr != nil {
			cb.Release()
			reason := "malformed"
			if errors.Is(derr, transport.ErrFrameCRC) {
				reason = "crc"
			}
			s.reg.rejectFrame(reason)
			bad++
			s.ev.Warn("ingest_bad_frame", obs.Fields{
				"peer": conn.RemoteAddr().String(), "reason": reason, "error": derr.Error(),
			})
			if s.cfg.MaxBadLines >= 0 && bad > s.cfg.MaxBadLines {
				return
			}
			continue
		}
		switch err := s.ingestFrame(defaultSource, cb); {
		case err == nil:
		case errors.Is(err, ErrClosed):
			return
		case errors.Is(err, ErrQueueFull):
			// Drop already counted; in drop mode the producer is not
			// throttled, so keep reading.
		default:
			// Bad source id or non-finite sample smuggled through a
			// float64 column: the frame was well-formed on the wire but
			// unacceptable as data.
			s.reg.rejectFrame("bad_sample")
			bad++
			s.ev.Warn("ingest_bad_frame", obs.Fields{
				"peer": conn.RemoteAddr().String(), "reason": "bad_sample", "error": err.Error(),
			})
			if s.cfg.MaxBadLines >= 0 && bad > s.cfg.MaxBadLines {
				return
			}
		}
	}
}

// connEvent reports one connection-terminating condition (unless the
// server is draining, when closed connections are the plan).
func (s *Server) connEvent(conn net.Conn, err error) {
	if s.stopping.Load() {
		return
	}
	s.ev.Info("ingest_conn_error", obs.Fields{
		"peer": conn.RemoteAddr().String(), "error": err.Error(),
	})
}

// ingestFrame feeds one decoded columnar batch through the column-aware
// router when one is set, straight to the registry otherwise. A router
// that only understands lines (LineRouter without ColumnRouter) gets
// the batch re-rendered as a canonical text batch line — lossless, the
// float64 round-trip the text wire guarantees. Ownership of cb passes
// here: every path releases or forwards it.
func (s *Server) ingestFrame(defaultSource string, cb *transport.ColumnarBatch) error {
	if cb.Source == "" {
		cb.Source = defaultSource
	}
	if s.router != nil {
		if cr, ok := s.router.(ColumnRouter); ok {
			return cr.IngestColumns(cb)
		}
		line := FormatBatch(Batch{Source: cb.Source, Pairs: cb.AppendPairs(nil)})
		cb.Release()
		return s.router.IngestLine(defaultSource, line)
	}
	return s.reg.IngestColumns(cb)
}

// hostOf extracts the host part of a peer address — the stable identity
// across reconnects (ports churn).
func hostOf(addr net.Addr) string {
	if addr == nil {
		return "unknown"
	}
	host, _, err := net.SplitHostPort(addr.String())
	if err != nil || host == "" {
		return addr.String()
	}
	return host
}

// truncate bounds wire-controlled content before it lands in an event.
func truncate(s string, max int) string {
	if len(s) > max {
		return s[:max] + "..."
	}
	return s
}

// Handler returns the HTTP API:
//
//	POST /ingest[?source=ID]        wire lines in the request body
//	GET  /api/sources               every source's status
//	GET  /api/sources/{id}/status   one source's status
//	GET  /api/alerts[?n=N]          most recent alerts, oldest first
//	GET  /api/shards                per-shard accounting
//	GET  /api/trace/export          sampled spans, Chrome/Perfetto JSON
//	GET  /api/trace/{source}        one source's flight-recorder tail
//	GET  /metrics, /healthz         telemetry (plus /debug/pprof opt-in)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ingest", s.handleIngest)
	mux.HandleFunc("GET /api/sources", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]any{"sources": s.reg.Sources()})
	})
	mux.HandleFunc("GET /api/sources/{id}/status", func(w http.ResponseWriter, r *http.Request) {
		st, ok := s.reg.Source(r.PathValue("id"))
		if !ok {
			http.Error(w, "unknown source", http.StatusNotFound)
			return
		}
		writeJSON(w, st)
	})
	mux.HandleFunc("GET /api/alerts", func(w http.ResponseWriter, r *http.Request) {
		n := 0
		if q := r.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v < 0 {
				http.Error(w, "bad n", http.StatusBadRequest)
				return
			}
			n = v
		}
		writeJSON(w, map[string]any{
			"total":  s.reg.Alerts().Total(),
			"alerts": s.reg.Alerts().Recent(n),
		})
	})
	mux.HandleFunc("GET /api/shards", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]any{"shards": s.reg.ShardStats()})
	})
	// The literal route wins over the {source} wildcard, so a source
	// cannot shadow the export endpoint (ids can't contain '/').
	mux.HandleFunc("GET /api/trace/export", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = s.reg.Tracer().WriteChromeTrace(w)
	})
	mux.HandleFunc("GET /api/trace/{source}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("source")
		recs, err := s.reg.FlightRecords(id)
		if err != nil {
			http.Error(w, "unknown source", http.StatusNotFound)
			return
		}
		writeJSON(w, map[string]any{
			"source":  id,
			"depth":   len(recs),
			"records": recs,
		})
	})
	for _, m := range s.mounts {
		mux.Handle(m.pattern, m.handler)
	}
	obsH := obs.NewHandler(s.cfg.Registry.Obs, obs.HandlerConfig{
		EnablePprof: s.cfg.EnablePprof,
		Health:      s.health,
	})
	mux.Handle("/metrics", obsH)
	mux.Handle("/healthz", obsH)
	if s.cfg.EnablePprof {
		mux.Handle("/debug/pprof/", obsH)
	}
	return mux
}

// health feeds /healthz: draining and stalled shards are the unhealthy
// states.
func (s *Server) health() error {
	if s.stopping.Load() {
		return errors.New("draining")
	}
	if n := s.stalledShards.Load(); n > 0 {
		return fmt.Errorf("stalled: %d shard(s) not draining", n)
	}
	return nil
}

// handleIngest consumes wire lines from a POST body. The default source
// for source-less lines is ?source=, else the peer host.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	s.reg.met.conns.With("http").Inc()
	defaultSource := r.URL.Query().Get("source")
	if defaultSource == "" {
		defaultSource = hostOf(addrOf(r))
	} else if err := validSource(defaultSource); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 0, 4096), s.cfg.MaxLineBytes)
	accepted, rejected := 0, 0
	for sc.Scan() {
		if trimLine(sc.Text()) == "" {
			continue
		}
		switch err := s.ingestLine(defaultSource, sc.Text()); {
		case err == nil:
			accepted++
		case errors.Is(err, ErrClosed):
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		default:
			rejected++
		}
	}
	if err := sc.Err(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	status := http.StatusOK
	if accepted == 0 && rejected > 0 {
		status = http.StatusBadRequest
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]int{
		"accepted": accepted, "rejected": rejected,
	})
}

// addrOf recovers the peer address of an HTTP request.
func addrOf(r *http.Request) net.Addr {
	if r.RemoteAddr == "" {
		return nil
	}
	return strAddr(r.RemoteAddr)
}

// strAddr adapts a pre-formatted address string to net.Addr.
type strAddr string

func (a strAddr) Network() string { return "tcp" }
func (a strAddr) String() string  { return string(a) }

// writeJSON writes one JSON response.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// SaveSnapshot persists every source's monitor state to
// cfg.SnapshotPath (periodic saves run through the same manager).
func (s *Server) SaveSnapshot() error {
	return s.snap.Flush()
}

// Shutdown drains gracefully: stop accepting, close the transports,
// drain every queued sample into its monitor, write the final snapshot,
// and stop the API server. Safe to call once; ctx bounds the HTTP
// server's drain.
func (s *Server) Shutdown(ctx context.Context) error {
	var err error
	s.stopOnce.Do(func() {
		s.stopping.Store(true)
		if s.stallc != nil {
			close(s.stallc)
		}
		if s.tcpLn != nil {
			s.tcpLn.Close()
		}
		// Producers are one-way writers: a graceful drain cannot wait for
		// them to hang up, so close their connections. Whatever their
		// kernels had buffered is lost — the snapshot records a sample
		// boundary, which is all restart-resume needs.
		s.connMu.Lock()
		conns := make([]net.Conn, 0, len(s.conns))
		for c := range s.conns {
			conns = append(conns, c)
		}
		s.connMu.Unlock()
		for _, c := range conns {
			s.dropConn(c)
		}
		var errs []error
		if cerr := s.reg.Close(); cerr != nil {
			errs = append(errs, cerr)
		}
		// Stop the periodic loop and capture the post-drain state in one
		// step — Stop alone would discard everything consumed since the
		// last periodic save.
		if serr := s.snap.StopAndFlush(); serr != nil {
			errs = append(errs, serr)
		}
		if s.httpSrv != nil {
			if herr := s.httpSrv.Shutdown(ctx); herr != nil {
				errs = append(errs, herr)
			}
		}
		s.wg.Wait()
		err = errors.Join(errs...)
	})
	return err
}
