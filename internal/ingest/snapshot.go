package ingest

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
)

// snapshotVersion guards the on-disk format.
const snapshotVersion = 1

// snapshotFile is the gob envelope of one registry snapshot: each
// source's aging.DualMonitor.SaveState blob, keyed by source id.
type snapshotFile struct {
	Version int
	States  map[string][]byte
}

// WriteSnapshot atomically persists the given source states to path
// (tmp + rename, so a crash mid-write never corrupts the previous
// snapshot).
func WriteSnapshot(path string, states map[string][]byte) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snapshotFile{
		Version: snapshotVersion,
		States:  states,
	}); err != nil {
		return fmt.Errorf("ingest: encode snapshot: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("ingest: write snapshot: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		return fmt.Errorf("ingest: write snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("ingest: write snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("ingest: write snapshot: %w", err)
	}
	return nil
}

// ReadSnapshot loads a snapshot written by WriteSnapshot. The returned
// map plugs straight into Config.Restore. A missing file is not an
// error — it returns (nil, nil), the natural cold-start case.
func ReadSnapshot(path string) (map[string][]byte, error) {
	blob, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("ingest: read snapshot: %w", err)
	}
	var sf snapshotFile
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&sf); err != nil {
		return nil, fmt.Errorf("ingest: decode snapshot %s: %w", path, err)
	}
	if sf.Version != snapshotVersion {
		return nil, fmt.Errorf("ingest: snapshot %s: unsupported version %d", path, sf.Version)
	}
	return sf.States, nil
}
