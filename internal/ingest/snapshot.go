package ingest

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"

	"agingmf/internal/runtime"
)

// snapshotVersion guards the on-disk format. Version 1 carried
// aging.DualMonitor blobs; version 2 carries detect.MonitorSet blobs
// (whose holder-only form is the v1 blob, so both versions decode with
// the same restore path and v1 files keep working).
const (
	snapshotVersion       = 2
	snapshotVersionLegacy = 1
)

// snapshotFile is the gob envelope of one registry snapshot: each
// source's detector-set SaveState blob, keyed by source id.
type snapshotFile struct {
	Version int
	States  map[string][]byte
}

// EncodeSnapshot serializes source states into the versioned snapshot
// envelope — the runtime.SnapshotManager state function of the daemon.
func EncodeSnapshot(states map[string][]byte) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snapshotFile{
		Version: snapshotVersion,
		States:  states,
	}); err != nil {
		return nil, fmt.Errorf("ingest: encode snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeSnapshot parses a snapshot envelope back into source states.
func DecodeSnapshot(blob []byte) (map[string][]byte, error) {
	var sf snapshotFile
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&sf); err != nil {
		return nil, fmt.Errorf("ingest: decode snapshot: %w", err)
	}
	if sf.Version != snapshotVersion && sf.Version != snapshotVersionLegacy {
		return nil, fmt.Errorf("ingest: snapshot: unsupported version %d", sf.Version)
	}
	return sf.States, nil
}

// WriteSnapshot atomically persists the given source states to path
// (tmp + rename, so a crash mid-write never corrupts the previous
// snapshot).
func WriteSnapshot(path string, states map[string][]byte) error {
	blob, err := EncodeSnapshot(states)
	if err != nil {
		return err
	}
	if err := runtime.WriteFileAtomic(path, blob, 0o600); err != nil {
		return fmt.Errorf("ingest: write snapshot: %w", err)
	}
	return nil
}

// ReadSnapshot loads a snapshot written by WriteSnapshot. The returned
// map plugs straight into Config.Restore. A missing file is not an
// error — it returns (nil, nil), the natural cold-start case.
func ReadSnapshot(path string) (map[string][]byte, error) {
	blob, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("ingest: read snapshot: %w", err)
	}
	states, err := DecodeSnapshot(blob)
	if err != nil {
		return nil, fmt.Errorf("ingest: snapshot %s: %w", path, err)
	}
	return states, nil
}
