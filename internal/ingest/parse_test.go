package ingest

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestParseLineFormats(t *testing.T) {
	cases := []struct {
		name string
		line string
		want Sample
	}{
		{"comma", "1000000,2048", Sample{Free: 1e6, Swap: 2048}},
		{"comma spaced", " 3.5e9 , 0 ", Sample{Free: 3.5e9, Swap: 0}},
		{"whitespace", "1e6 2048", Sample{Free: 1e6, Swap: 2048}},
		{"tabs", "1e6\t2048", Sample{Free: 1e6, Swap: 2048}},
		{"timestamp", "17.5 1e6 2048", Sample{Timestamp: 17.5, HasTimestamp: true, Free: 1e6, Swap: 2048}},
		{"source comma", "source=web-01 1000000,2048", Sample{Source: "web-01", Free: 1e6, Swap: 2048}},
		{"source whitespace", "source=web-01 1e6 2048", Sample{Source: "web-01", Free: 1e6, Swap: 2048}},
		{"source timestamp", "source=db/2 17.5 1e6 2048", Sample{Source: "db/2", Timestamp: 17.5, HasTimestamp: true, Free: 1e6, Swap: 2048}},
		{"negative", "-1,-2", Sample{Free: -1, Swap: -2}},
		{"padded", "  1 2  ", Sample{Free: 1, Swap: 2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := ParseLine(tc.line)
			if err != nil {
				t.Fatalf("ParseLine(%q): %v", tc.line, err)
			}
			if got != tc.want {
				t.Errorf("ParseLine(%q) = %+v, want %+v", tc.line, got, tc.want)
			}
		})
	}
}

func TestParseLineRejects(t *testing.T) {
	lines := []string{
		"",
		"   ",
		"free,swap",
		"1,2,3",
		"1",
		"1 2 3 4",
		"NaN,0",
		"0,+Inf",
		"-Inf 0",
		"1e309,0",
		"NaN 1 2",
		"source=web-01",
		"source=web-01 ",
		"source= 1 2",
		"source=a,b 1 2",
		"source=a b", // source consumes "a", leaving one field
		"source=" + strings.Repeat("x", MaxSourceLen+1) + " 1 2",
		"source=ctl\x01chr 1 2",
		"1\x00,2",
	}
	for _, line := range lines {
		if s, err := ParseLine(line); err == nil {
			t.Errorf("ParseLine(%q) accepted: %+v", line, s)
		} else if !errors.Is(err, ErrBadLine) {
			t.Errorf("ParseLine(%q) error %v is not ErrBadLine", line, err)
		}
	}
}

func TestParseLineSourceLimits(t *testing.T) {
	longest := strings.Repeat("x", MaxSourceLen)
	s, err := ParseLine("source=" + longest + " 1 2")
	if err != nil {
		t.Fatalf("max-length source rejected: %v", err)
	}
	if s.Source != longest {
		t.Errorf("source = %q", s.Source)
	}
}

func TestFormatLineRoundTrip(t *testing.T) {
	samples := []Sample{
		{Free: 1e6, Swap: 2048},
		{Source: "web-01", Free: 3.5e9, Swap: 0},
		{Source: "db/2", Timestamp: 17.25, HasTimestamp: true, Free: 1e6, Swap: 2048},
		{Free: -1.5, Swap: math.MaxFloat64},
		{Source: "x", Timestamp: 0, HasTimestamp: true, Free: 0, Swap: 0},
	}
	for _, want := range samples {
		got, err := ParseLine(FormatLine(want))
		if err != nil {
			t.Fatalf("round trip of %+v: %v", want, err)
		}
		if got != want {
			t.Errorf("round trip of %+v: got %+v (line %q)", want, got, FormatLine(want))
		}
	}
}

// FuzzParseLine hammers the wire parser with hostile lines: it must
// never panic, never accept non-finite counters, and its canonical
// re-rendering must round-trip losslessly.
func FuzzParseLine(f *testing.F) {
	for _, seed := range []string{
		"1000000,2048",
		"source=web-01 17.5 1e6 2048",
		"source=a,b 1 2",
		"NaN 0",
		"1e309,0",
		strings.Repeat("9", 400) + " " + strings.Repeat("9", 400),
		"source=\x7f 1 2",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, line string) {
		s, err := ParseLine(line)
		if err != nil {
			if !errors.Is(err, ErrBadLine) {
				t.Fatalf("ParseLine(%q) error %v is not ErrBadLine", line, err)
			}
			return
		}
		for name, v := range map[string]float64{"free": s.Free, "swap": s.Swap, "ts": s.Timestamp} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("ParseLine(%q) accepted non-finite %s %v", line, name, v)
			}
		}
		rt, err := ParseLine(FormatLine(s))
		if err != nil {
			t.Fatalf("FormatLine(%+v) does not re-parse: %v", s, err)
		}
		if rt != s {
			t.Fatalf("round trip of %q: got %+v, want %+v", line, rt, s)
		}
	})
}
