package ingest

import (
	"bytes"
	"errors"
	"testing"

	"agingmf/internal/trace"
)

func TestPeekSource(t *testing.T) {
	cases := []struct {
		name, line, want string
	}{
		{"blank", "   ", ""},
		{"comment", "# keep-alive", ""},
		{"plain pair", "1e9 2e8", "dflt"},
		{"csv pair", "1e9,2e8", "dflt"},
		{"tagged", "source=web-01 1e9 2e8", "web-01"},
		{"tagged tab", "source=web-01\t1e9 2e8", "web-01"},
		{"tagged invalid id", "source=a,b 1e9 2e8", "dflt"},
		{"batch tagged", "batch;source=db/2;1 2;3 4", "db/2"},
		{"batch untagged", "batch;1 2;3 4", "dflt"},
		{"batch bad id", "batch;source=has space;1 2", "dflt"},
		{"leading space tagged", "  source=s1 1 2", "s1"},
	}
	for _, c := range cases {
		if got := PeekSource("dflt", c.line); got != c.want {
			t.Errorf("%s: PeekSource(%q) = %q, want %q", c.name, c.line, got, c.want)
		}
	}
	// PeekSource must agree with the real parser on where a sample lands:
	// the id it predicts is the registry the line's samples are counted
	// under.
	r, err := NewRegistry(Config{Shards: 2, QueueSize: 16, Monitor: testMonitorConfig()})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for _, line := range []string{"source=peeked 1e9 2e8", "batch;source=peeked;1e9 2e8;2e9 1e8"} {
		want := PeekSource("dflt", line)
		if err := r.IngestLine("dflt", line); err != nil {
			t.Fatalf("ingest %q: %v", line, err)
		}
		if err := r.Drain(); err != nil {
			t.Fatal(err)
		}
		if _, ok := r.Source(want); !ok {
			t.Errorf("line %q: parser did not land samples under peeked id %q", line, want)
		}
	}
}

func TestDetachAttachRoundTrip(t *testing.T) {
	r, err := NewRegistry(Config{Shards: 2, QueueSize: 16, Monitor: testMonitorConfig()})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i := 0; i < 9; i++ {
		if err := r.Ingest(Sample{Source: "mig-1", Free: 1e9 + float64(i)*1e6, Swap: 2e8}); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Drain(); err != nil {
		t.Fatal(err)
	}
	before, err := r.MonitorState("mig-1")
	if err != nil {
		t.Fatal(err)
	}

	blob, recs, err := r.DetachSource("mig-1")
	if err != nil {
		t.Fatalf("detach: %v", err)
	}
	if !bytes.Equal(blob, before) {
		t.Fatal("detached state differs from the live monitor state")
	}
	if _, ok := r.Source("mig-1"); ok {
		t.Fatal("detached source still registered")
	}
	if _, _, err := r.DetachSource("mig-1"); !errors.Is(err, ErrUnknownSource) {
		t.Fatalf("double detach: %v, want ErrUnknownSource", err)
	}

	// Re-attach (the migration target side, or a rollback): the monitor
	// resumes exactly where the blob stopped.
	if err := r.AttachSource("mig-1", blob, recs); err != nil {
		t.Fatalf("attach: %v", err)
	}
	st, ok := r.Source("mig-1")
	if !ok || st.Samples != 9 {
		t.Fatalf("attached source: ok=%v samples=%d, want 9", ok, st.Samples)
	}
	after, err := r.MonitorState("mig-1")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, before) {
		t.Fatal("attach did not restore the monitor byte-for-byte")
	}
	if err := r.AttachSource("mig-1", blob, nil); !errors.Is(err, ErrSourceExists) {
		t.Fatalf("duplicate attach: %v, want ErrSourceExists", err)
	}
}

func TestAttachSourceValidation(t *testing.T) {
	r, err := NewRegistry(Config{Shards: 1, QueueSize: 16, FlightRecorderDepth: 8, Monitor: testMonitorConfig()})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.AttachSource("bad id", nil, nil); err == nil {
		t.Fatal("invalid source id accepted")
	}
	if err := r.AttachSource("fresh", nil, nil); err != nil {
		t.Fatalf("fresh attach: %v", err)
	}
	if st, ok := r.Source("fresh"); !ok || st.Samples != 0 {
		t.Fatalf("fresh attach: ok=%v samples=%d, want 0", ok, st.Samples)
	}
	if err := r.AttachSource("hosed", []byte("not a state blob"), nil); err == nil {
		t.Fatal("unrestorable state blob accepted")
	}
	// Attach seeds the flight recorder with the records that travelled in
	// the envelope.
	recs := []trace.Record{{Seq: 1, Free: 1e9, Phase: "baseline"}}
	if err := r.AttachSource("with-tail", nil, recs); err != nil {
		t.Fatal(err)
	}
	if got, err := r.FlightRecords("with-tail"); err != nil || len(got) != 1 || got[0].Seq != 1 {
		t.Fatalf("flight recorder not seeded: %+v (%v)", got, err)
	}
}

func TestAttachSourceRespectsCap(t *testing.T) {
	r, err := NewRegistry(Config{Shards: 1, QueueSize: 16, MaxSources: 1, Monitor: testMonitorConfig()})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.AttachSource("one", nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := r.AttachSource("two", nil, nil); err == nil {
		t.Fatal("attach beyond MaxSources accepted")
	}
}
