package ingest

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"agingmf/internal/obs"
	"agingmf/internal/resilience"
)

func testAlert(i int) Alert {
	return Alert{Source: fmt.Sprintf("s-%d", i), Kind: AlertJump, Sample: i}
}

func TestAlertBusRing(t *testing.T) {
	b := newAlertBus(4, metrics{})
	defer b.Close()
	if got := b.Recent(0); len(got) != 0 {
		t.Errorf("empty bus Recent = %v", got)
	}
	for i := 0; i < 6; i++ {
		b.Publish(testAlert(i))
	}
	if b.Total() != 6 {
		t.Errorf("total = %d", b.Total())
	}
	got := b.Recent(0)
	if len(got) != 4 {
		t.Fatalf("ring retained %d alerts, want 4", len(got))
	}
	for i, a := range got { // oldest first: 2,3,4,5
		if a.Sample != i+2 {
			t.Errorf("recent[%d].Sample = %d, want %d", i, a.Sample, i+2)
		}
	}
	if got := b.Recent(2); len(got) != 2 || got[0].Sample != 4 || got[1].Sample != 5 {
		t.Errorf("Recent(2) = %v", got)
	}
}

func TestAlertBusFanoutAndDrops(t *testing.T) {
	b := newAlertBus(8, metrics{})
	fast := b.Subscribe("fast", 8)
	slow := b.Subscribe("slow", 1) // 1-slot queue, never drained: drops
	for i := 0; i < 5; i++ {
		b.Publish(testAlert(i))
	}
	for i := 0; i < 5; i++ {
		select {
		case a := <-fast.C():
			if a.Sample != i {
				t.Errorf("fast got %d, want %d", a.Sample, i)
			}
		case <-time.After(time.Second):
			t.Fatal("fast subscriber starved")
		}
	}
	if slow.Dropped() != 4 {
		t.Errorf("slow dropped = %d, want 4", slow.Dropped())
	}
	// Cancel is idempotent and closes the channel.
	fast.Cancel()
	fast.Cancel()
	if _, ok := <-fast.C(); ok {
		t.Error("cancelled subscription channel still open")
	}
	b.Close()
	b.Close() // idempotent
	if a, ok := <-slow.C(); !ok || a.Sample != 0 {
		t.Errorf("slow subscriber's buffered alert = %+v, ok=%v", a, ok)
	}
	if _, ok := <-slow.C(); ok {
		t.Error("bus close left subscriber channel open")
	}
	b.Publish(testAlert(9)) // post-close publish is a silent no-op
	if sub := b.Subscribe("late", 1); sub.C() == nil {
		t.Error("post-close Subscribe returned nil channel")
	} else if _, ok := <-sub.C(); ok {
		t.Error("post-close subscription not closed")
	}
}

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	ev := obs.NewEvents(syncWriter{&mu, &buf}, obs.LevelInfo)
	b := newAlertBus(4, metrics{})
	sub := b.Subscribe("jsonl", 4)
	done := make(chan struct{})
	go func() {
		defer close(done)
		JSONLSink(sub, ev)
	}()
	b.Publish(Alert{Source: "web-01", Kind: AlertPhaseChange, From: "healthy", To: "aging-onset"})
	b.Publish(Alert{Source: "web-01", Kind: AlertJump, Detector: "entropy", Counter: "free-memory", Sample: 97})
	b.Close()
	<-done

	mu.Lock()
	out := buf.String()
	mu.Unlock()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("sink wrote %d lines, want 2:\n%s", len(lines), out)
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("sink output %q is not JSONL: %v", lines[0], err)
	}
	if rec["event"] != "alert" || rec["source"] != "web-01" || rec["alert"] != AlertPhaseChange {
		t.Errorf("sink record = %v", rec)
	}
	if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil {
		t.Fatalf("sink output %q is not JSONL: %v", lines[1], err)
	}
	if rec["alert"] != AlertJump || rec["detector"] != "entropy" {
		t.Errorf("jump record missing detector label: %v", rec)
	}
}

// syncWriter serializes writes between the sink goroutine and the test.
type syncWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (s syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

func TestWebhookSinkRetriesTransient(t *testing.T) {
	var calls atomic.Int32
	var got atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			http.Error(w, "boom", http.StatusInternalServerError) // transient
			return
		}
		var a Alert
		if err := json.NewDecoder(r.Body).Decode(&a); err != nil {
			t.Errorf("webhook body: %v", err)
		}
		got.Store(a)
	}))
	defer ts.Close()

	b := newAlertBus(4, metrics{})
	sub := b.Subscribe("webhook", 4)
	done := make(chan struct{})
	go func() {
		defer close(done)
		WebhookSink(context.Background(), sub, WebhookConfig{
			URL:   ts.URL,
			Retry: resilience.RetryConfig{MaxAttempts: 3, BaseDelay: time.Millisecond},
		}, nil)
	}()
	want := Alert{Source: "db-7", Kind: AlertJump, Detector: "holder", Counter: "free-memory", Sample: 41}
	b.Publish(want)
	b.Close()
	<-done

	if n := calls.Load(); n != 2 {
		t.Errorf("webhook called %d times, want 2 (5xx then success)", n)
	}
	if a, _ := got.Load().(Alert); a != want {
		t.Errorf("webhook received %+v, want %+v", a, want)
	}
}

func TestWebhookSinkPermanentFailureIsNotRetried(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "no", http.StatusBadRequest)
	}))
	defer ts.Close()

	var buf bytes.Buffer
	var mu sync.Mutex
	ev := obs.NewEvents(syncWriter{&mu, &buf}, obs.LevelInfo)
	b := newAlertBus(4, metrics{})
	sub := b.Subscribe("webhook", 4)
	done := make(chan struct{})
	go func() {
		defer close(done)
		WebhookSink(context.Background(), sub, WebhookConfig{
			URL:   ts.URL,
			Retry: resilience.RetryConfig{MaxAttempts: 5, BaseDelay: time.Millisecond},
		}, ev)
	}()
	b.Publish(testAlert(1))
	b.Close()
	<-done

	if n := calls.Load(); n != 1 {
		t.Errorf("webhook called %d times for a 400, want 1", n)
	}
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !strings.Contains(out, "alert_webhook_failed") {
		t.Errorf("delivery failure not evented: %q", out)
	}
}

func TestWebhookSinkTimeoutBoundsAttempt(t *testing.T) {
	// A black-holed endpoint: accepts the connection, never responds.
	block := make(chan struct{})
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		<-block
	}))
	defer func() { close(block); ts.Close() }()

	var buf bytes.Buffer
	var mu sync.Mutex
	ev := obs.NewEvents(syncWriter{&mu, &buf}, obs.LevelInfo)
	b := newAlertBus(4, metrics{})
	sub := b.Subscribe("webhook", 4)
	done := make(chan struct{})
	start := time.Now()
	go func() {
		defer close(done)
		WebhookSink(context.Background(), sub, WebhookConfig{
			URL:     ts.URL,
			Timeout: 25 * time.Millisecond,
			Retry:   resilience.RetryConfig{MaxAttempts: 2, BaseDelay: time.Millisecond},
		}, ev)
	}()
	b.Publish(testAlert(7))
	b.Close()

	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("webhook sink wedged on a never-responding endpoint")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("delivery took %v; the per-attempt timeout did not bound it", elapsed)
	}
	if n := calls.Load(); n != 2 {
		t.Errorf("webhook attempted %d times, want 2 (timeout is per attempt)", n)
	}
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !strings.Contains(out, "alert_webhook_failed") {
		t.Errorf("timed-out delivery not evented: %q", out)
	}
}
