package ingest

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"testing"
	"time"

	transport "agingmf/internal/source"
)

// BenchmarkShardRouter measures the registry hot path end-to-end:
// validate, hash-route, enqueue, and the shard goroutine's monitor add —
// across a population of sources with parallel producers.
func BenchmarkShardRouter(b *testing.B) {
	for _, sources := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("sources=%d", sources), func(b *testing.B) {
			r, err := NewRegistry(Config{Monitor: testMonitorConfig()})
			if err != nil {
				b.Fatal(err)
			}
			defer r.Close()
			ids := make([]string, sources)
			for i := range ids {
				ids[i] = fmt.Sprintf("bench-%04d", i)
			}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					s := Sample{Source: ids[i%sources], Free: 1e9 - float64(i), Swap: float64(i)}
					if err := r.Ingest(s); err != nil {
						b.Fatal(err)
					}
					i++
				}
			})
			b.StopTimer()
			if err := r.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkIngestLine measures the full wire path: parse + route.
func BenchmarkIngestLine(b *testing.B) {
	for name, line := range map[string]string{
		"comma":     "1000000,2048",
		"fields":    "1e9 2048",
		"source":    "source=web-0042 1e9 2048",
		"timestamp": "source=web-0042 17.5 1e9 2048",
	} {
		b.Run(name, func(b *testing.B) {
			r, err := NewRegistry(Config{Monitor: testMonitorConfig()})
			if err != nil {
				b.Fatal(err)
			}
			defer r.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := r.IngestLine("peer", line); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIngestBatch measures the batched hot path at several batch
// sizes, normalized to ns/sample so it reads against BenchmarkShardRouter
// and BenchmarkIngestLine (size=1 is the degenerate batch). The paper's
// fleet scenario ships one batch per scrape interval per machine.
func BenchmarkIngestBatch(b *testing.B) {
	for _, size := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			r, err := NewRegistry(Config{Monitor: testMonitorConfig()})
			if err != nil {
				b.Fatal(err)
			}
			defer r.Close()
			pairs := make([][2]float64, size)
			for i := range pairs {
				pairs[i] = [2]float64{1e9 - float64(i), float64(i)}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := r.IngestBatch(Batch{Source: "bench-0000", Pairs: pairs}); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*size), "ns/sample")
			if err := r.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkIngestBatchLine measures the batched wire path: one parse +
// one route for a whole scrape interval.
func BenchmarkIngestBatchLine(b *testing.B) {
	for _, size := range []int{16, 256} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			r, err := NewRegistry(Config{Monitor: testMonitorConfig()})
			if err != nil {
				b.Fatal(err)
			}
			defer r.Close()
			pairs := make([][2]float64, size)
			for i := range pairs {
				pairs[i] = [2]float64{1e9 - float64(i), float64(i)}
			}
			line := FormatBatch(Batch{Source: "bench-0000", Pairs: pairs})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := r.IngestLine("peer", line); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*size), "ns/sample")
			if err := r.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkSourceLines measures the transport stage the streaming
// commands run on: LineSource (scanner goroutine + channel hand-off)
// plus the wire-protocol ParseItem, per line.
func BenchmarkSourceLines(b *testing.B) {
	for name, line := range map[string]string{
		"fields": "1e9 2048",
		"source": "source=web-0042 1e9 2048",
	} {
		b.Run(name, func(b *testing.B) {
			var buf bytes.Buffer
			for i := 0; i < 4096; i++ {
				buf.WriteString(line)
				buf.WriteByte('\n')
			}
			blob := buf.Bytes()
			ctx := context.Background()
			src := NewLineSource(bytes.NewReader(blob))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, err := src.Next(ctx)
				if err == io.EOF {
					src.Close()
					src = NewLineSource(bytes.NewReader(blob))
				} else if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			src.Close()
		})
	}
}

// BenchmarkParseLine isolates the parser from the routing.
func BenchmarkParseLine(b *testing.B) {
	const line = "source=web-0042 17.5 1e9 2048"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseLine(line); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIngestBinary measures the binary columnar hot path,
// normalized to ns/sample so it reads directly against
// BenchmarkIngestBatch (the text batch path over the same values): frame
// decode into a pooled ColumnarBatch, validate, route, and the shard
// goroutine's batch-kernel fold.
func BenchmarkIngestBinary(b *testing.B) {
	for _, size := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			r, err := NewRegistry(Config{Monitor: testMonitorConfig()})
			if err != nil {
				b.Fatal(err)
			}
			defer r.Close()
			cb := transport.AcquireColumnarBatch()
			cb.Source = "bench-0000"
			for i := 0; i < size; i++ {
				cb.Free = append(cb.Free, 1e9-float64(i))
				cb.Swap = append(cb.Swap, float64(i))
			}
			frame, err := transport.AppendFrame(nil, cb)
			cb.Release()
			if err != nil {
				b.Fatal(err)
			}
			intern := func(raw []byte) string { return "bench-0000" }
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dec := transport.AcquireColumnarBatch()
				if err := transport.DecodeFrame(frame, dec, intern); err != nil {
					b.Fatal(err)
				}
				if err := r.IngestColumns(dec); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*size), "ns/sample")
			if err := r.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// TestBinaryOverTextBudget enforces the binary wire path's performance
// contract in CI: decoding and folding columnar frames must stay at
// least 4x faster per sample than parsing and routing the equivalent
// batched text lines. Both arms run the full wire path (decode/parse →
// route → shard kernel, registry closed inside the timed window so the
// drain is accounted). Timing assertions are noisy under parallel test
// load, so the check runs in isolation via `make bench-smoke`
// (AGINGMF_BINARY_BUDGET=1).
func TestBinaryOverTextBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("timing assertion is meaningless under the race detector")
	}
	if testing.Short() {
		t.Skip("timing assertion skipped in -short mode")
	}
	if os.Getenv("AGINGMF_BINARY_BUDGET") == "" {
		t.Skip("timing assertion runs in isolation via `make bench-smoke` (AGINGMF_BINARY_BUDGET=1)")
	}
	const (
		iters = 2000
		size  = 256
	)
	pairs := make([][2]float64, size)
	for i := range pairs {
		pairs[i] = [2]float64{1e9 - float64(i), float64(i)}
	}
	newReg := func() *Registry {
		r, err := NewRegistry(Config{Monitor: testMonitorConfig()})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	line := FormatBatch(Batch{Source: "bench-0000", Pairs: pairs})
	textRun := func() time.Duration {
		r := newReg()
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := r.IngestLine("peer", line); err != nil {
				t.Fatal(err)
			}
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	cb := transport.AcquireColumnarBatch()
	cb.Source = "bench-0000"
	for _, p := range pairs {
		cb.Free = append(cb.Free, p[0])
		cb.Swap = append(cb.Swap, p[1])
	}
	frame, err := transport.AppendFrame(nil, cb)
	cb.Release()
	if err != nil {
		t.Fatal(err)
	}
	intern := func(raw []byte) string { return "bench-0000" }
	binaryRun := func() time.Duration {
		r := newReg()
		start := time.Now()
		for i := 0; i < iters; i++ {
			dec := transport.AcquireColumnarBatch()
			if err := transport.DecodeFrame(frame, dec, intern); err != nil {
				t.Fatal(err)
			}
			if err := r.IngestColumns(dec); err != nil {
				t.Fatal(err)
			}
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	// Interleave five rounds and keep the fastest of each arm — the
	// minimum is the least-noisy estimator on a shared machine; the first
	// round doubles as a warmup for code paths and pools.
	text, binary := time.Duration(1<<62), time.Duration(1<<62)
	for round := 0; round < 5; round++ {
		if d := textRun(); d < text {
			text = d
		}
		if d := binaryRun(); d < binary {
			binary = d
		}
	}
	speedup := float64(text) / float64(binary)
	perSample := float64(binary.Nanoseconds()) / float64(iters*size)
	t.Logf("text: %v for %d samples; binary: %v (%.1f ns/sample); speedup %.2fx",
		text, iters*size, binary, perSample, speedup)
	if speedup < 4 {
		t.Fatalf("binary frames are only %.2fx faster than text batch lines (text %v, binary %v); budget is 4x",
			speedup, text, binary)
	}
}
