package ingest

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"testing"
)

// BenchmarkShardRouter measures the registry hot path end-to-end:
// validate, hash-route, enqueue, and the shard goroutine's monitor add —
// across a population of sources with parallel producers.
func BenchmarkShardRouter(b *testing.B) {
	for _, sources := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("sources=%d", sources), func(b *testing.B) {
			r, err := NewRegistry(Config{Monitor: testMonitorConfig()})
			if err != nil {
				b.Fatal(err)
			}
			defer r.Close()
			ids := make([]string, sources)
			for i := range ids {
				ids[i] = fmt.Sprintf("bench-%04d", i)
			}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					s := Sample{Source: ids[i%sources], Free: 1e9 - float64(i), Swap: float64(i)}
					if err := r.Ingest(s); err != nil {
						b.Fatal(err)
					}
					i++
				}
			})
			b.StopTimer()
			if err := r.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkIngestLine measures the full wire path: parse + route.
func BenchmarkIngestLine(b *testing.B) {
	for name, line := range map[string]string{
		"comma":     "1000000,2048",
		"fields":    "1e9 2048",
		"source":    "source=web-0042 1e9 2048",
		"timestamp": "source=web-0042 17.5 1e9 2048",
	} {
		b.Run(name, func(b *testing.B) {
			r, err := NewRegistry(Config{Monitor: testMonitorConfig()})
			if err != nil {
				b.Fatal(err)
			}
			defer r.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := r.IngestLine("peer", line); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIngestBatch measures the batched hot path at several batch
// sizes, normalized to ns/sample so it reads against BenchmarkShardRouter
// and BenchmarkIngestLine (size=1 is the degenerate batch). The paper's
// fleet scenario ships one batch per scrape interval per machine.
func BenchmarkIngestBatch(b *testing.B) {
	for _, size := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			r, err := NewRegistry(Config{Monitor: testMonitorConfig()})
			if err != nil {
				b.Fatal(err)
			}
			defer r.Close()
			pairs := make([][2]float64, size)
			for i := range pairs {
				pairs[i] = [2]float64{1e9 - float64(i), float64(i)}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := r.IngestBatch(Batch{Source: "bench-0000", Pairs: pairs}); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*size), "ns/sample")
			if err := r.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkIngestBatchLine measures the batched wire path: one parse +
// one route for a whole scrape interval.
func BenchmarkIngestBatchLine(b *testing.B) {
	for _, size := range []int{16, 256} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			r, err := NewRegistry(Config{Monitor: testMonitorConfig()})
			if err != nil {
				b.Fatal(err)
			}
			defer r.Close()
			pairs := make([][2]float64, size)
			for i := range pairs {
				pairs[i] = [2]float64{1e9 - float64(i), float64(i)}
			}
			line := FormatBatch(Batch{Source: "bench-0000", Pairs: pairs})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := r.IngestLine("peer", line); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*size), "ns/sample")
			if err := r.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkSourceLines measures the transport stage the streaming
// commands run on: LineSource (scanner goroutine + channel hand-off)
// plus the wire-protocol ParseItem, per line.
func BenchmarkSourceLines(b *testing.B) {
	for name, line := range map[string]string{
		"fields": "1e9 2048",
		"source": "source=web-0042 1e9 2048",
	} {
		b.Run(name, func(b *testing.B) {
			var buf bytes.Buffer
			for i := 0; i < 4096; i++ {
				buf.WriteString(line)
				buf.WriteByte('\n')
			}
			blob := buf.Bytes()
			ctx := context.Background()
			src := NewLineSource(bytes.NewReader(blob))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, err := src.Next(ctx)
				if err == io.EOF {
					src.Close()
					src = NewLineSource(bytes.NewReader(blob))
				} else if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			src.Close()
		})
	}
}

// BenchmarkParseLine isolates the parser from the routing.
func BenchmarkParseLine(b *testing.B) {
	const line = "source=web-0042 17.5 1e9 2048"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseLine(line); err != nil {
			b.Fatal(err)
		}
	}
}
