package ingest

import (
	"context"

	"agingmf/internal/control"
	"agingmf/internal/obs"
)

// The alert plumbing moved to internal/control — the canonical Alert,
// the subscription Bus and the delivery sinks are control-plane types
// now shared by the detect verdict boundary, the cluster membership
// layer and the Rejuvenator. This file keeps the ingest names alive as
// aliases so every existing producer, consumer and test compiles
// unchanged, and pins the wire contract (JSON payload bytes, JSONL
// field set) through the control golden tests.

// Alert kinds published on the bus (canonical names in control).
const (
	// AlertJump is a detection alarm on one counter (a Hölder-volatility
	// jump, an entropy collapse, ... — the Detector field says which).
	AlertJump = control.KindJump
	// AlertRecalibrate records a detector re-anchoring its baseline after
	// a confirmed workload shift (adaptive detector); informational.
	AlertRecalibrate = control.KindRecalibrate
	// AlertPhaseChange is an aging-phase transition.
	AlertPhaseChange = control.KindPhaseChange
	// AlertStall means a source went silent past the stall timeout.
	AlertStall = control.KindStall
	// AlertResume means a stalled source produced a sample again.
	AlertResume = control.KindResume
)

// Alert is one fleet event; see control.Alert.
type Alert = control.Alert

// Subscription is one consumer's bounded alert queue; see
// control.Subscription.
type Subscription = control.Subscription

// AlertBus fans alerts out to subscribers; see control.Bus.
type AlertBus = control.Bus

// WebhookConfig parameterizes WebhookSink; see control.WebhookConfig.
type WebhookConfig = control.WebhookConfig

// newAlertBus builds the registry's bus with the given ring capacity.
// Slow-subscriber drops are counted on both the control-plane family
// (agingmf_alert_drops_total{sink}) and the legacy ingest-scoped name,
// so existing dashboards keep working while new ones use the canonical
// metric.
func newAlertBus(ringSize int, met metrics) *AlertBus {
	return control.NewBus(ringSize, met.alertDropsFleet, met.alertDrops)
}

// JSONLSink drains sub into ev as "alert" events until the subscription
// closes; see control.JSONLSink. Run it on its own goroutine:
//
//	go ingest.JSONLSink(bus.Subscribe("jsonl", 256), events)
func JSONLSink(sub *Subscription, ev *obs.Events) { control.JSONLSink(sub, ev) }

// WebhookSink drains sub, POSTing each alert to cfg.URL with bounded
// retries; see control.WebhookSink.
func WebhookSink(ctx context.Context, sub *Subscription, cfg WebhookConfig, ev *obs.Events) {
	control.WebhookSink(ctx, sub, cfg, ev)
}
