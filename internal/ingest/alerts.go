package ingest

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"agingmf/internal/obs"
	"agingmf/internal/resilience"
)

// Alert kinds published on the bus.
const (
	// AlertJump is a detection alarm on one counter (a Hölder-volatility
	// jump, an entropy collapse, ... — the Detector field says which).
	AlertJump = "jump"
	// AlertRecalibrate records a detector re-anchoring its baseline after
	// a confirmed workload shift (adaptive detector); informational.
	AlertRecalibrate = "recalibrate"
	// AlertPhaseChange is an aging-phase transition.
	AlertPhaseChange = "phase_change"
	// AlertStall means a source went silent past the stall timeout.
	AlertStall = "stall"
	// AlertResume means a stalled source produced a sample again.
	AlertResume = "resume"
)

// Alert is one fleet event. It carries no wall-clock timestamp of its
// own — alerts derive deterministically from the sample stream, which is
// what makes the daemon's verdicts comparable byte-for-byte with a
// single-process run; sinks that need a timestamp add their own (the
// JSONL sink's event envelope has one).
type Alert struct {
	// Source is the machine the alert concerns.
	Source string `json:"source"`
	// Kind is one of the Alert* constants.
	Kind string `json:"kind"`
	// Detector labels jump/recalibrate alerts with the emitting detector
	// ("holder", "entropy", "adaptive"); empty for source-level alerts
	// (stall, resume, phase_change).
	Detector string `json:"detector,omitempty"`
	// Counter attributes jump alerts to free-memory or used-swap.
	Counter string `json:"counter,omitempty"`
	// Sample is the per-source sample index the alert fired at.
	Sample int `json:"sample,omitempty"`
	// Volatility and Score describe a jump alarm.
	Volatility float64 `json:"volatility,omitempty"`
	Score      float64 `json:"score,omitempty"`
	// From and To describe a phase change.
	From string `json:"from,omitempty"`
	To   string `json:"to,omitempty"`
	// GapMillis is the observed silence of a stall alert.
	GapMillis int64 `json:"gap_ms,omitempty"`
}

// Subscription is one consumer's bounded alert queue. Alerts are
// delivered on C until Cancel (or the bus closing) closes it. A consumer
// that falls behind loses alerts — counted by Dropped and the
// agingmf_ingest_alert_drops_total{sink} metric — rather than ever
// backpressuring the ingest hot path.
type Subscription struct {
	name    string
	ch      chan Alert
	bus     *AlertBus
	dropped atomic.Uint64
	drops   *obs.Counter
	once    sync.Once
}

// C returns the delivery channel.
func (s *Subscription) C() <-chan Alert { return s.ch }

// Name returns the sink name given at Subscribe.
func (s *Subscription) Name() string { return s.name }

// Dropped returns how many alerts this subscriber lost to a full queue.
func (s *Subscription) Dropped() uint64 { return s.dropped.Load() }

// Cancel unsubscribes and closes the delivery channel. Idempotent; safe
// to race the bus closing.
func (s *Subscription) Cancel() {
	s.bus.unsubscribe(s)
}

// AlertBus fans alerts out to subscribers and keeps a bounded ring of the
// most recent alerts for the HTTP API. Publishing never blocks.
type AlertBus struct {
	met *metrics

	mu     sync.Mutex
	subs   map[*Subscription]struct{}
	ring   []Alert
	next   int
	filled bool
	total  uint64
	closed bool
}

// newAlertBus builds a bus with the given ring capacity.
func newAlertBus(ringSize int, met metrics) *AlertBus {
	return &AlertBus{
		met:  &met,
		subs: make(map[*Subscription]struct{}),
		ring: make([]Alert, ringSize),
	}
}

// Subscribe registers a consumer with a queue of buf alerts (minimum 1).
// The name labels this sink's drop metric.
func (b *AlertBus) Subscribe(name string, buf int) *Subscription {
	if buf < 1 {
		buf = 1
	}
	s := &Subscription{
		name:  name,
		ch:    make(chan Alert, buf),
		bus:   b,
		drops: b.met.alertDrops.With(name),
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		close(s.ch)
		return s
	}
	b.subs[s] = struct{}{}
	return s
}

// unsubscribe removes s and closes its channel (once).
func (b *AlertBus) unsubscribe(s *Subscription) {
	b.mu.Lock()
	_, live := b.subs[s]
	delete(b.subs, s)
	b.mu.Unlock()
	if live {
		s.once.Do(func() { close(s.ch) })
	}
}

// Publish records a in the ring and offers it to every subscriber,
// dropping (and counting) on full queues.
func (b *AlertBus) Publish(a Alert) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.total++
	if len(b.ring) > 0 {
		b.ring[b.next] = a
		b.next++
		if b.next == len(b.ring) {
			b.next = 0
			b.filled = true
		}
	}
	for s := range b.subs {
		select {
		case s.ch <- a:
		default:
			s.dropped.Add(1)
			s.drops.Inc()
		}
	}
}

// Total returns how many alerts have been published.
func (b *AlertBus) Total() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.total
}

// Recent returns up to n of the most recent alerts, oldest first. n <= 0
// returns the whole retained ring.
func (b *AlertBus) Recent(n int) []Alert {
	b.mu.Lock()
	defer b.mu.Unlock()
	size := b.next
	if b.filled {
		size = len(b.ring)
	}
	if n <= 0 || n > size {
		n = size
	}
	out := make([]Alert, 0, n)
	// Walk the ring from oldest to newest, keeping the last n.
	start := 0
	if b.filled {
		start = b.next
	}
	for i := 0; i < size; i++ {
		out = append(out, b.ring[(start+i)%len(b.ring)])
	}
	return out[len(out)-n:]
}

// Close drops every subscriber (closing their channels) and stops
// accepting publishes. Idempotent.
func (b *AlertBus) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	subs := make([]*Subscription, 0, len(b.subs))
	for s := range b.subs {
		subs = append(subs, s)
	}
	b.subs = make(map[*Subscription]struct{})
	b.mu.Unlock()
	for _, s := range subs {
		s.once.Do(func() { close(s.ch) })
	}
}

// JSONLSink drains sub into ev as "alert" events (one JSON line each,
// timestamped by the event envelope) until the subscription closes. Run
// it on its own goroutine:
//
//	go ingest.JSONLSink(bus.Subscribe("jsonl", 256), events)
func JSONLSink(sub *Subscription, ev *obs.Events) {
	for a := range sub.C() {
		ev.Warn("alert", obs.Fields{
			"source": a.Source, "alert": a.Kind, "detector": a.Detector,
			"counter": a.Counter, "sample": a.Sample,
			"volatility": a.Volatility, "score": a.Score,
			"from": a.From, "to": a.To, "gap_ms": a.GapMillis,
		})
	}
}

// WebhookConfig parameterizes WebhookSink.
type WebhookConfig struct {
	// URL receives one POST per alert with a JSON Alert body.
	URL string
	// Client is the HTTP client (nil selects a 10-second-timeout client).
	Client *http.Client
	// Retry bounds delivery attempts per alert; the zero value selects
	// resilience defaults (3 attempts, 10ms base backoff). Network errors
	// and 5xx responses are retried; other HTTP errors are not.
	Retry resilience.RetryConfig
	// Timeout bounds each individual delivery attempt (0 selects 5s). It
	// caps the attempt even when Client carries no timeout of its own, so
	// a black-holed endpoint costs a bounded wait per attempt instead of
	// wedging the sink.
	Timeout time.Duration
}

// WebhookSink drains sub, POSTing each alert to cfg.URL with bounded
// retries (resilience.Retry). Delivery failures are events, never
// fatal — an unreachable webhook must not affect ingestion. Run it on its
// own goroutine; it returns when the subscription closes or ctx is
// cancelled.
func WebhookSink(ctx context.Context, sub *Subscription, cfg WebhookConfig, ev *obs.Events) {
	if ctx == nil {
		ctx = context.Background()
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	retry := cfg.Retry
	if retry.Classify == nil {
		retry.Classify = resilience.IsTransient
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	for {
		select {
		case <-ctx.Done():
			return
		case a, ok := <-sub.C():
			if !ok {
				return
			}
			body, err := json.Marshal(a)
			if err != nil {
				continue // an Alert always marshals; defensive only
			}
			err = resilience.Retry(ctx, retry, func(int) error {
				actx, cancel := context.WithTimeout(ctx, timeout)
				defer cancel()
				return postAlert(actx, client, cfg.URL, body)
			})
			if err != nil {
				ev.Error("alert_webhook_failed", obs.Fields{
					"url": cfg.URL, "source": a.Source, "alert": a.Kind,
					"error": err.Error(),
				})
			}
		}
	}
}

// postAlert performs one webhook delivery attempt. Transport errors and
// 5xx responses are marked transient for the retry classifier.
func postAlert(ctx context.Context, client *http.Client, url string, body []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("webhook: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return resilience.Transient(fmt.Errorf("webhook: %w", err))
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 500 {
		return resilience.Transient(fmt.Errorf("webhook: %s", resp.Status))
	}
	if resp.StatusCode >= 400 {
		return fmt.Errorf("webhook: %s", resp.Status)
	}
	return nil
}
