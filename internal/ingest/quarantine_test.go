package ingest

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"agingmf/internal/aging"
	"agingmf/internal/obs"
)

// writeTestSnapshot persists a snapshot holding real monitor states so
// corruption tests mutate the same bytes production restarts read.
func writeTestSnapshot(t *testing.T, path string, sources int) {
	t.Helper()
	states := make(map[string][]byte, sources)
	for i := 0; i < sources; i++ {
		mon, err := aging.NewDualMonitor(testMonitorConfig())
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 6; k++ {
			mon.Add(1e9+float64(i*100+k)*1e6, 2e8)
		}
		blob, err := mon.SaveState()
		if err != nil {
			t.Fatal(err)
		}
		states[string(rune('a'+i))+"-src"] = blob
	}
	if err := WriteSnapshot(path, states); err != nil {
		t.Fatal(err)
	}
}

// TestServerQuarantinesTruncatedSnapshot: a snapshot cut short (torn
// write, disk full) must not brick the restart — the server quarantines
// it to <path>.corrupt, emits the event and counter, and starts fresh.
func TestServerQuarantinesTruncatedSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.gob")
	writeTestSnapshot(t, path, 2)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o600); err != nil {
		t.Fatal(err)
	}

	var evBuf bytes.Buffer
	met := obs.NewRegistry()
	srv, err := NewServer(ServerConfig{
		Registry: Config{
			Shards:  2,
			Monitor: testMonitorConfig(),
			Events:  obs.NewEvents(&evBuf, obs.LevelInfo),
			Obs:     met,
		},
		SnapshotPath: path,
	})
	if err != nil {
		t.Fatalf("truncated snapshot bricked the restart: %v", err)
	}
	defer srv.Registry().Close()

	if srv.Registry().NumSources() != 0 {
		t.Fatalf("fresh start expected, got %d sources", srv.Registry().NumSources())
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("corrupt snapshot not quarantined: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("original snapshot still in place: %v", err)
	}
	if !strings.Contains(evBuf.String(), "ingest_snapshot_corrupt") {
		t.Fatalf("no ingest_snapshot_corrupt event emitted: %s", evBuf.String())
	}
	var metBuf bytes.Buffer
	if err := met.WriteText(&metBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(metBuf.String(), metricSnapshotCorrupt+" 1") {
		t.Fatalf("corrupt counter not exported:\n%s", metBuf.String())
	}
}

// TestServerQuarantinesUnrestorableSnapshot: the snapshot file decodes
// but a monitor blob inside it does not restore — the NewRegistry retry
// leg. The server must quarantine and come up fresh.
func TestServerQuarantinesUnrestorableSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.gob")
	if err := WriteSnapshot(path, map[string][]byte{
		"poisoned": []byte("this is not a monitor state blob"),
	}); err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{
		Registry:     Config{Shards: 2, Monitor: testMonitorConfig()},
		SnapshotPath: path,
	})
	if err != nil {
		t.Fatalf("unrestorable snapshot bricked the restart: %v", err)
	}
	defer srv.Registry().Close()
	if srv.Registry().NumSources() != 0 {
		t.Fatalf("fresh start expected, got %d sources", srv.Registry().NumSources())
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("corrupt snapshot not quarantined: %v", err)
	}
}

// TestServerSurvivesEveryBitFlip flips one byte at every offset of a
// real snapshot: whatever the flip hits — frame, map key, monitor blob —
// NewServer must either restore intact sources or quarantine and start
// fresh. It must never fail, and never come up with a partially-restored
// registry presenting corrupt monitors as healthy.
func TestServerSurvivesEveryBitFlip(t *testing.T) {
	dir := t.TempDir()
	pristine := filepath.Join(dir, "pristine.gob")
	writeTestSnapshot(t, pristine, 1)
	raw, err := os.ReadFile(pristine)
	if err != nil {
		t.Fatal(err)
	}
	quarantined := 0
	for off := 0; off < len(raw); off++ {
		mut := append([]byte(nil), raw...)
		mut[off] ^= 0xFF
		path := filepath.Join(dir, "flip.gob")
		if err := os.WriteFile(path, mut, 0o600); err != nil {
			t.Fatal(err)
		}
		os.Remove(path + ".corrupt")
		srv, err := NewServer(ServerConfig{
			Registry:     Config{Shards: 1, Monitor: testMonitorConfig()},
			SnapshotPath: path,
		})
		if err != nil {
			t.Fatalf("flip at offset %d bricked the restart: %v", off, err)
		}
		if _, qerr := os.Stat(path + ".corrupt"); qerr == nil {
			quarantined++
			if n := srv.Registry().NumSources(); n != 0 {
				t.Fatalf("flip at offset %d: quarantined but %d sources restored", off, n)
			}
		}
		srv.Registry().Close()
	}
	if quarantined == 0 {
		t.Fatal("no flip triggered a quarantine — the corruption path never ran")
	}
}
