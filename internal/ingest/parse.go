package ingest

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ErrBadLine reports a wire line that does not parse as a sample.
var ErrBadLine = errors.New("ingest: bad line")

// MaxSourceLen bounds the length of a source identifier on the wire, so a
// hostile producer cannot inflate the registry's keys.
const MaxSourceLen = 128

// Sample is one parsed counter observation from the wire.
type Sample struct {
	// Source identifies the producing machine. Empty when the line did
	// not carry a source= field — the transport then supplies a default
	// (the remote peer).
	Source string
	// Timestamp is the producer's clock in seconds (only meaningful when
	// HasTimestamp is set; the monitor itself is sample-indexed, so the
	// timestamp is carried for display, not analysis).
	Timestamp float64
	// HasTimestamp reports whether the line carried a timestamp field.
	HasTimestamp bool
	// Free is the free-memory counter in bytes.
	Free float64
	// Swap is the used-swap counter in bytes.
	Swap float64
}

// ParseLine parses one line of the fleet wire protocol. Every format the
// repository's binaries ever spoke is accepted, so one parser serves both
// cmd/agingmon (stdin) and cmd/agingd (TCP/HTTP):
//
//	FREE,SWAP                      the original agingmon stdin format
//	FREE SWAP                      whitespace form
//	TIMESTAMP FREE SWAP            with a producer timestamp
//	source=ID <any of the above>   fleet form, keying the source
//
// Leading/trailing whitespace is ignored. All numeric fields must be
// finite — a NaN smuggled into the monitor would silently poison every
// downstream statistic. Callers are expected to skip blank lines and
// '#' comments themselves (the transports treat those as keep-alives).
func ParseLine(line string) (Sample, error) {
	var s Sample
	rest := strings.TrimSpace(line)
	if rest == "" {
		return s, fmt.Errorf("%w: empty", ErrBadLine)
	}
	if strings.HasPrefix(rest, "source=") {
		id := rest[len("source="):]
		if sp := strings.IndexAny(id, " \t"); sp >= 0 {
			rest = strings.TrimSpace(id[sp+1:])
			id = id[:sp]
		} else {
			rest = ""
		}
		if err := validSource(id); err != nil {
			return s, err
		}
		s.Source = id
	}
	if rest == "" {
		return s, fmt.Errorf("%w: source field without counters", ErrBadLine)
	}

	if strings.ContainsRune(rest, ',') {
		// Comma form: exactly "free,swap" (spaces around the comma are
		// tolerated, matching the original stdin parser).
		parts := strings.Split(rest, ",")
		if len(parts) != 2 {
			return s, fmt.Errorf(`%w: want "free,swap", got %d fields`, ErrBadLine, len(parts))
		}
		var err error
		if s.Free, err = parseFinite("free", parts[0]); err != nil {
			return s, err
		}
		if s.Swap, err = parseFinite("swap", parts[1]); err != nil {
			return s, err
		}
		return s, nil
	}

	fields := strings.Fields(rest)
	var err error
	switch len(fields) {
	case 2:
		if s.Free, err = parseFinite("free", fields[0]); err != nil {
			return s, err
		}
		if s.Swap, err = parseFinite("swap", fields[1]); err != nil {
			return s, err
		}
	case 3:
		if s.Timestamp, err = parseFinite("timestamp", fields[0]); err != nil {
			return s, err
		}
		s.HasTimestamp = true
		if s.Free, err = parseFinite("free", fields[1]); err != nil {
			return s, err
		}
		if s.Swap, err = parseFinite("swap", fields[2]); err != nil {
			return s, err
		}
	default:
		return s, fmt.Errorf("%w: want 2 or 3 fields, got %d", ErrBadLine, len(fields))
	}
	return s, nil
}

// FormatLine renders a sample in the canonical wire form, the inverse of
// ParseLine: "source=ID [TIMESTAMP] FREE SWAP" (the source field is
// omitted when empty).
func FormatLine(s Sample) string {
	var b strings.Builder
	if s.Source != "" {
		b.WriteString("source=")
		b.WriteString(s.Source)
		b.WriteByte(' ')
	}
	if s.HasTimestamp {
		b.WriteString(strconv.FormatFloat(s.Timestamp, 'g', -1, 64))
		b.WriteByte(' ')
	}
	b.WriteString(strconv.FormatFloat(s.Free, 'g', -1, 64))
	b.WriteByte(' ')
	b.WriteString(strconv.FormatFloat(s.Swap, 'g', -1, 64))
	return b.String()
}

// PeekSource returns the source id a wire line will be attributed to —
// the line's own source= field when present and valid, defaultSource
// otherwise — without parsing the numeric payload. "" means the line is
// blank or a '#' comment keep-alive and carries no sample. The cluster
// router keys ownership off this before paying for a full parse; lines
// whose payload later fails to parse are still counted as bad by the
// registry they land on.
func PeekSource(defaultSource, line string) string {
	t := trimLine(line)
	if t == "" {
		return ""
	}
	if strings.HasPrefix(t, BatchPrefix) {
		rest := t[len(BatchPrefix):]
		if strings.HasPrefix(rest, "source=") {
			if id, _, found := strings.Cut(rest[len("source="):], ";"); found && validSource(id) == nil {
				return id
			}
		}
		return defaultSource
	}
	if strings.HasPrefix(t, "source=") {
		id := t[len("source="):]
		if sp := strings.IndexAny(id, " \t"); sp >= 0 {
			id = id[:sp]
		}
		if validSource(id) == nil {
			return id
		}
	}
	return defaultSource
}

// parseFinite parses one numeric field, rejecting non-finite values.
func parseFinite(name, field string) (float64, error) {
	v, err := strconv.ParseFloat(strings.TrimSpace(field), 64)
	if err != nil {
		return 0, fmt.Errorf("%w: %s: %v", ErrBadLine, name, err)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("%w: %s: non-finite value %v", ErrBadLine, name, v)
	}
	return v, nil
}

// validSource vets a wire-supplied source identifier: non-empty, bounded,
// and free of control characters, spaces and commas (which would collide
// with the line syntax and the CSV exports downstream).
func validSource(id string) error {
	if id == "" {
		return fmt.Errorf("%w: empty source id", ErrBadLine)
	}
	if len(id) > MaxSourceLen {
		return fmt.Errorf("%w: source id longer than %d bytes", ErrBadLine, MaxSourceLen)
	}
	for _, r := range id {
		if r <= 0x20 || r == 0x7f || r == ',' {
			return fmt.Errorf("%w: source id contains %q", ErrBadLine, r)
		}
	}
	return nil
}
