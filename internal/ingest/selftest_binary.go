package ingest

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"agingmf/internal/detect"
	transport "agingmf/internal/source"
)

// BinarySelfTestConfig parameterizes RunBinarySelfTest.
type BinarySelfTestConfig struct {
	// Sources is the number of simulated machines (0 selects 4).
	Sources int
	// Samples is the trace length per machine (0 selects 1<<21).
	Samples int
	// FrameSamples is the number of samples packed into each binary wire
	// frame (0 selects 4096); frames must fit the server's MaxLineBytes bound.
	FrameSamples int
	// Conns is the number of TCP connections the sources are multiplexed
	// over (0 selects min(Sources, 8)).
	Conns int
	// Seed offsets every machine's trace deterministically.
	Seed int64
	// Timeout bounds the whole self-test (0 selects 2m).
	Timeout time.Duration
}

func (c BinarySelfTestConfig) withDefaults() BinarySelfTestConfig {
	if c.Sources <= 0 {
		c.Sources = 4
	}
	if c.Samples <= 0 {
		c.Samples = 1 << 21
	}
	if c.FrameSamples <= 0 {
		c.FrameSamples = 4096
	}
	if c.Conns <= 0 {
		c.Conns = c.Sources
		if c.Conns > 8 {
			c.Conns = 8
		}
	}
	if c.Conns > c.Sources {
		c.Conns = c.Sources
	}
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Minute
	}
	return c
}

// BinarySelfTestReport is the outcome of one binary-wire self-test.
type BinarySelfTestReport struct {
	// Sources, SamplesSent and FramesSent describe the generated load.
	Sources     int
	SamplesSent int
	FramesSent  int
	// Accepted, Dropped and BadFrames are the registry's accounting after
	// the load; a passing run has Accepted == SamplesSent and the other
	// two zero.
	Accepted  uint64
	Dropped   uint64
	BadFrames uint64
	// ParityMismatches lists sources whose daemon-side detector state
	// differs from a single-process per-sample reference fed the same
	// trace ("id" or "id/detector") — the end-to-end assertion that the
	// columnar kernels are verdict-identical to the row path.
	ParityMismatches []string
	// Alerts is the fleet-wide alert count after the load.
	Alerts uint64
	// LoadElapsed is the wire phase only: first byte written to last
	// sample folded into its monitor. SamplesPerSec = SamplesSent over
	// that window.
	LoadElapsed   time.Duration
	SamplesPerSec float64
	// Elapsed is the wall time including encode and verify phases.
	Elapsed time.Duration
}

// Ok reports whether the self-test passed: every sample accepted through
// the binary path, nothing dropped, no frame rejected, and every
// source's monitor byte-for-byte identical to its per-sample reference.
func (r BinarySelfTestReport) Ok() bool {
	return r.Accepted == uint64(r.SamplesSent) && r.Dropped == 0 &&
		r.BadFrames == 0 && len(r.ParityMismatches) == 0
}

// binarySelfTestSourceID names simulated machine i on the wire.
func binarySelfTestSourceID(i int) string { return fmt.Sprintf("selftest-bin-%04d", i) }

// binarySelfTestPair returns sample i of machine s: a quantized linear
// memory leak (free drains one unit per tick from a seed-dependent base,
// the canonical aging trace) with a slow swap ramp. Every value is an
// integer well inside float32's exact range, so frames stay narrow on
// the wire, and the window extrema repeat from sample to sample, so the
// batch kernels' regression memo hits — this is the trace shape the
// columnar path is built to sustain, at full precision.
func binarySelfTestPair(seed int64, s, i int) (free, swap float64) {
	base := 16_000_000 - int(uint64(seed)*2654435761%4096) - s*8191
	free = float64(base - i%8_000_000)
	swap = float64((i + s*131) & 0xFFFFF)
	return free, swap
}

// RunBinarySelfTest drives deterministic high-rate traces through the
// server's real TCP socket as binary columnar frames and verifies the
// daemon end-to-end: every frame accepted whole (no drops, no rejects)
// and every source's detector-set state byte-for-byte identical to a
// single-process per-sample reference fed the same values — the full
// wire → decode → shard → batch-kernel chain proven against the row
// path. The wire streams are encoded before the clock starts, so
// SamplesPerSec measures the daemon's ingest throughput, not the
// generator's.
//
// The server must be started with a TCP listener and must not be shut
// down underneath the test. Per-sample observability (pipeline tracing,
// flight recorders) forces batches onto the row-bridge path; run the
// throughput self-test with both disabled.
func RunBinarySelfTest(ctx context.Context, srv *Server, cfg BinarySelfTestConfig) (BinarySelfTestReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg = cfg.withDefaults()
	addr := srv.TCPAddr()
	if addr == nil {
		return BinarySelfTestReport{}, fmt.Errorf("ingest: binary self-test needs a TCP listener")
	}
	ctx, cancel := context.WithTimeout(ctx, cfg.Timeout)
	defer cancel()
	start := time.Now()

	rep := BinarySelfTestReport{
		Sources:     cfg.Sources,
		SamplesSent: cfg.Sources * cfg.Samples,
	}

	// Encode phase (untimed): render each connection's whole frame stream
	// into memory. Sources are spread round-robin over the connections and
	// interleaved frame by frame within each.
	streams := make([][]byte, cfg.Conns)
	cb := transport.AcquireColumnarBatch()
	defer cb.Release()
	for c := range streams {
		var mine []int
		for s := c; s < cfg.Sources; s += cfg.Conns {
			mine = append(mine, s)
		}
		var buf []byte
		for off := 0; off < cfg.Samples; off += cfg.FrameSamples {
			end := off + cfg.FrameSamples
			if end > cfg.Samples {
				end = cfg.Samples
			}
			for _, s := range mine {
				cb.Reset()
				cb.Source = binarySelfTestSourceID(s)
				for i := off; i < end; i++ {
					free, swap := binarySelfTestPair(cfg.Seed, s, i)
					cb.Free = append(cb.Free, free)
					cb.Swap = append(cb.Swap, swap)
				}
				var err error
				if buf, err = transport.AppendFrame(buf, cb); err != nil {
					return rep, fmt.Errorf("ingest: binary self-test encode: %w", err)
				}
				rep.FramesSent++
			}
		}
		streams[c] = buf
	}

	reg := srv.Registry()
	baseAccepted := reg.Accepted()
	baseBad := reg.BadFrames()
	baseDropped := reg.Dropped()

	// Load phase (timed): stream every connection's bytes and wait for the
	// shards to fold the last sample into its monitor.
	loadStart := time.Now()
	var wg sync.WaitGroup
	errc := make(chan error, cfg.Conns)
	for c := 0; c < cfg.Conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var d net.Dialer
			conn, err := d.DialContext(ctx, addr.Network(), addr.String())
			if err != nil {
				errc <- fmt.Errorf("ingest: binary self-test dial: %w", err)
				return
			}
			defer conn.Close()
			if _, err := conn.Write(streams[c]); err != nil {
				errc <- fmt.Errorf("ingest: binary self-test write: %w", err)
				return
			}
			errc <- nil
		}(c)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		if err != nil {
			return rep, err
		}
	}
	for reg.Accepted()-baseAccepted < uint64(rep.SamplesSent) {
		if ctx.Err() != nil || reg.BadFrames() > baseBad || reg.Dropped() > baseDropped {
			break
		}
		time.Sleep(time.Millisecond)
	}
	rep.LoadElapsed = time.Since(loadStart)
	rep.Accepted = reg.Accepted() - baseAccepted
	rep.Dropped = reg.Dropped() - baseDropped
	rep.BadFrames = reg.BadFrames() - baseBad
	rep.Alerts = reg.Alerts().Total()
	if sec := rep.LoadElapsed.Seconds(); sec > 0 {
		rep.SamplesPerSec = float64(rep.Accepted) / sec
	}

	// Verify phase: replay each trace sample-by-sample into a fresh
	// detector set — the row-path reference the columnar chain must match
	// byte-for-byte.
	for s := 0; s < cfg.Sources; s++ {
		id := binarySelfTestSourceID(s)
		got, err := reg.MonitorState(id)
		if err != nil {
			rep.ParityMismatches = append(rep.ParityMismatches, id)
			continue
		}
		ref, err := detect.New(reg.Config().Detectors, reg.Config().DetectorConfig())
		if err != nil {
			return rep, fmt.Errorf("ingest: binary self-test reference detectors: %w", err)
		}
		for i := 0; i < cfg.Samples; i++ {
			free, swap := binarySelfTestPair(cfg.Seed, s, i)
			ref.Add(free, swap)
		}
		want, err := ref.SaveState()
		if err != nil {
			return rep, fmt.Errorf("ingest: binary self-test reference state: %w", err)
		}
		if !bytes.Equal(got, want) {
			rep.ParityMismatches = append(rep.ParityMismatches, detectorMismatches(id, got, want)...)
		}
	}
	rep.Elapsed = time.Since(start)
	return rep, nil
}
