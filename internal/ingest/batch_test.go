package ingest

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"testing"
)

func TestParseBatchFormats(t *testing.T) {
	cases := []struct {
		name string
		line string
		want Batch
	}{
		{"sourced", "batch;source=web-01;1e6 2048;2e6 4096", Batch{
			Source: "web-01",
			Pairs:  [][2]float64{{1e6, 2048}, {2e6, 4096}},
		}},
		{"anonymous", "batch;1e6 2048", Batch{
			Pairs: [][2]float64{{1e6, 2048}},
		}},
		{"padded", "  batch;source=db/2;1 2;3 4  ", Batch{
			Source: "db/2",
			Pairs:  [][2]float64{{1, 2}, {3, 4}},
		}},
		{"inner spaces", "batch;  1   2 ;3 4", Batch{
			Pairs: [][2]float64{{1, 2}, {3, 4}},
		}},
		{"negative", "batch;-1 -2", Batch{
			Pairs: [][2]float64{{-1, -2}},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := ParseBatch(tc.line)
			if err != nil {
				t.Fatalf("ParseBatch(%q): %v", tc.line, err)
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("ParseBatch(%q) = %+v, want %+v", tc.line, got, tc.want)
			}
			if !IsBatchLine(tc.line) {
				t.Errorf("IsBatchLine(%q) = false", tc.line)
			}
		})
	}
	if IsBatchLine("1e6 2048") {
		t.Error("IsBatchLine accepted a plain sample line")
	}
}

// TestParseBatchRejects: a batch with any bad segment must be rejected
// whole, never half-ingested.
func TestParseBatchRejects(t *testing.T) {
	lines := []string{
		"1e6 2048",             // no prefix
		"batch;",               // no pairs
		"batch;source=web-01",  // source, no pairs
		"batch;source=web-01;", // trailing ; still yields an empty segment
		"batch;source= 1 2",    // empty source
		"batch;source=ctl\x01chr;1 2",
		"batch;1 2;3",      // odd segment
		"batch;1 2 3;4 5",  // three fields
		"batch;1 2;;3 4",   // empty middle segment
		"batch;NaN 2",      // non-finite
		"batch;1 +Inf;3 4", // non-finite later segment
		"batch;1e309 0",    // overflow
		"batch;free swap",  // non-numeric
	}
	for _, line := range lines {
		if b, err := ParseBatch(line); err == nil {
			t.Errorf("ParseBatch(%q) accepted: %+v", line, b)
		} else if !errors.Is(err, ErrBadLine) {
			t.Errorf("ParseBatch(%q) error %v is not ErrBadLine", line, err)
		}
	}
}

func TestFormatBatchRoundTrip(t *testing.T) {
	batches := []Batch{
		{Pairs: [][2]float64{{1e6, 2048}}},
		{Source: "web-01", Pairs: [][2]float64{{3.5e9, 0}, {-1.5, math.MaxFloat64}}},
		{Source: "db/2", Pairs: [][2]float64{{0, 0}, {1, 2}, {3, 4}}},
	}
	for _, want := range batches {
		got, err := ParseBatch(FormatBatch(want))
		if err != nil {
			t.Fatalf("round trip of %+v: %v", want, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("round trip of %+v: got %+v (line %q)", want, got, FormatBatch(want))
		}
	}
	if s := FormatBatch(Batch{Source: "x"}); s != "" {
		t.Errorf("FormatBatch of empty batch = %q, want \"\"", s)
	}
}

// FuzzParseBatch mirrors FuzzParseLine for the batched form: no panics,
// no non-finite values, lossless canonical round trip.
func FuzzParseBatch(f *testing.F) {
	for _, seed := range []string{
		"batch;source=web-01;1e6 2048;2e6 4096",
		"batch;1 2",
		"batch;1 2;;3 4",
		"batch;source=a,b;1 2",
		"batch;NaN 0",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, line string) {
		b, err := ParseBatch(line)
		if err != nil {
			if !errors.Is(err, ErrBadLine) {
				t.Fatalf("ParseBatch(%q) error %v is not ErrBadLine", line, err)
			}
			return
		}
		for _, p := range b.Pairs {
			for _, v := range p {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("ParseBatch(%q) accepted non-finite %v", line, v)
				}
			}
		}
		rt, err := ParseBatch(FormatBatch(b))
		if err != nil {
			t.Fatalf("FormatBatch(%+v) does not re-parse: %v", b, err)
		}
		if !reflect.DeepEqual(rt, b) {
			t.Fatalf("round trip of %q: got %+v, want %+v", line, rt, b)
		}
	})
}

func TestIngestBatchValidation(t *testing.T) {
	r, err := NewRegistry(Config{Monitor: testMonitorConfig()})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.IngestBatch(Batch{Pairs: [][2]float64{{1, 2}}}); !errors.Is(err, ErrNoSource) {
		t.Errorf("sourceless batch: err = %v, want ErrNoSource", err)
	}
	if err := r.IngestBatch(Batch{Source: "a", Pairs: [][2]float64{{1, 2}, {math.NaN(), 0}}}); !errors.Is(err, ErrBadSample) {
		t.Errorf("non-finite batch: err = %v, want ErrBadSample", err)
	}
	if err := r.IngestBatch(Batch{Source: "a"}); err != nil {
		t.Errorf("empty batch: err = %v, want nil no-op", err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if got := r.Accepted(); got != 0 {
		t.Errorf("accepted = %d after only rejected batches", got)
	}
	if err := r.IngestBatch(Batch{Source: "a", Pairs: [][2]float64{{1, 2}}}); !errors.Is(err, ErrClosed) {
		t.Errorf("batch after close: err = %v, want ErrClosed", err)
	}
}

// TestRegistryBatchParity feeds the same traces per-sample, per-batch
// (mixed chunk sizes via IngestBatch), and as batch; wire lines through
// IngestLine; all three registries must hold byte-identical monitor
// state and exact sample accounting.
func TestRegistryBatchParity(t *testing.T) {
	const nSources, nSamples = 6, 240
	cfg := testMonitorConfig()
	traces := make([][][2]float64, nSources)
	for i := range traces {
		traces[i] = testTrace(i, nSamples)
	}

	feed := func(t *testing.T, feedOne func(r *Registry, id string, tr [][2]float64) error) *Registry {
		t.Helper()
		r, err := NewRegistry(Config{Shards: 2, Monitor: cfg})
		if err != nil {
			t.Fatal(err)
		}
		for i, tr := range traces {
			if err := feedOne(r, fmt.Sprintf("src-%03d", i), tr); err != nil {
				t.Fatal(err)
			}
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
		return r
	}

	chunks := []int{1, 7, 64, 500} // 500 > trace length: whole-trace batch
	batched := feed(t, func(r *Registry, id string, tr [][2]float64) error {
		ci := 0
		for off := 0; off < len(tr); {
			n := chunks[ci%len(chunks)]
			ci++
			if off+n > len(tr) {
				n = len(tr) - off
			}
			if err := r.IngestBatch(Batch{Source: id, Pairs: tr[off : off+n]}); err != nil {
				return err
			}
			off += n
		}
		return nil
	})
	lined := feed(t, func(r *Registry, id string, tr [][2]float64) error {
		return r.IngestLine("fallback", FormatBatch(Batch{Source: id, Pairs: tr}))
	})

	for _, r := range []*Registry{batched, lined} {
		if got, want := r.Accepted(), uint64(nSources*nSamples); got != want {
			t.Errorf("accepted = %d, want %d", got, want)
		}
		if r.Dropped() != 0 {
			t.Errorf("dropped = %d, want 0", r.Dropped())
		}
	}
	for i, tr := range traces {
		id := fmt.Sprintf("src-%03d", i)
		want := referenceState(t, cfg, tr)
		for name, r := range map[string]*Registry{"IngestBatch": batched, "IngestLine": lined} {
			got, err := r.MonitorState(id)
			if err != nil {
				t.Fatalf("%s state %s: %v", name, id, err)
			}
			if string(got) != string(want) {
				t.Errorf("%s: source %s diverged from per-sample reference", name, id)
			}
		}
		st, ok := batched.Source(id)
		if !ok || st.Samples != int64(nSamples) {
			t.Errorf("source %s status samples = %d, want %d", id, st.Samples, nSamples)
		}
	}
}
