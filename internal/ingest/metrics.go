package ingest

import (
	"agingmf/internal/obs"
	"agingmf/internal/resilience"
)

// Metric families of the ingestion daemon. Everything is registered
// lazily through the nil-safe obs API, so an un-instrumented registry
// (Config.Obs == nil) pays only nil checks on the hot path.
const (
	metricSamples    = "agingmf_ingest_samples_total"
	metricDropped    = "agingmf_ingest_dropped_total"
	metricBadLines   = "agingmf_ingest_bad_lines_total"
	metricBadFrames  = "agingmf_ingest_bad_frames_total"
	metricSources    = "agingmf_ingest_sources"
	metricQueueDepth = "agingmf_ingest_queue_depth"
	metricHandleSec  = "agingmf_ingest_handle_seconds"
	metricAlerts     = "agingmf_ingest_alerts_total"
	metricAlertDrops = "agingmf_ingest_alert_drops_total"
	// metricAlertDropsFleet is the control-plane name for the same drops;
	// both families are incremented so dashboards keyed on the legacy
	// ingest-scoped name keep working.
	metricAlertDropsFleet = "agingmf_alert_drops_total"
	metricConns      = "agingmf_ingest_connections_total"
	metricConnsOpen  = "agingmf_ingest_open_connections"
	metricSnapshots  = "agingmf_ingest_snapshots_total"
	// metricSnapshotCorrupt is registered on demand by the quarantine
	// path (server startup), not in newMetrics — the healthy case never
	// creates the family.
	metricSnapshotCorrupt = "agingmf_snapshot_corrupt_total"
)

// handleBuckets spans the per-sample shard work (route + DualMonitor.Add
// + status update), which is ~1 µs amortized.
var handleBuckets = []float64{
	500e-9, 1e-6, 2.5e-6, 5e-6, 10e-6, 25e-6, 100e-6, 1e-3, 10e-3,
}

// metrics holds the ingest instruments. The zero value (all nil) is fully
// functional: every update is a no-op.
type metrics struct {
	samples    *obs.CounterVec // by shard
	dropped    *obs.CounterVec // by reason
	badLines   *obs.Counter
	badFrames  *obs.CounterVec // by reason
	sources    *obs.Gauge
	queueDepth *obs.GaugeVec // by shard
	handleSec  *obs.Histogram
	alerts          *obs.CounterVec // by kind
	alertDrops      *obs.CounterVec // by sink (legacy name)
	alertDropsFleet *obs.CounterVec // by sink (control-plane name)
	conns      *obs.CounterVec // by proto
	connsOpen  *obs.Gauge
	snapshots  *obs.Counter
	res        resilience.Metrics
}

// newMetrics registers the ingest families on reg; a nil registry yields
// the zero (no-op) set.
func newMetrics(reg *obs.Registry) metrics {
	return metrics{
		samples: reg.CounterVec(metricSamples,
			"Samples accepted by the ingestion registry.", "shard"),
		dropped: reg.CounterVec(metricDropped,
			"Samples dropped before reaching a monitor.", "reason"),
		badLines: reg.Counter(metricBadLines,
			"Malformed wire lines rejected by the parser."),
		badFrames: reg.CounterVec(metricBadFrames,
			"Binary wire frames rejected whole, by reason.", "reason"),
		sources: reg.Gauge(metricSources,
			"Sources currently tracked by the registry."),
		queueDepth: reg.GaugeVec(metricQueueDepth,
			"Samples queued ahead of each shard goroutine.", "shard"),
		handleSec: reg.Histogram(metricHandleSec,
			"Per-sample shard work: monitor add, status update, alerts.",
			handleBuckets),
		alerts: reg.CounterVec(metricAlerts,
			"Alerts published on the alert bus.", "kind"),
		alertDrops: reg.CounterVec(metricAlertDrops,
			"Alerts dropped by a saturated subscriber queue.", "sink"),
		alertDropsFleet: reg.CounterVec(metricAlertDropsFleet,
			"Alerts dropped by a saturated subscriber queue, by sink.", "sink"),
		conns: reg.CounterVec(metricConns,
			"Ingest connections accepted.", "proto"),
		connsOpen: reg.Gauge(metricConnsOpen,
			"Ingest connections currently open."),
		snapshots: reg.Counter(metricSnapshots,
			"State snapshots written."),
		res: resilience.NewMetrics(reg),
	}
}
