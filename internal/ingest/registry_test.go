package ingest

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"agingmf/internal/aging"
)

// testMonitorConfig is a small-window detector configuration so tests
// exercise the full pipeline (warmup, jumps, phases) in tens of samples
// instead of the production config's tens of thousands.
func testMonitorConfig() aging.Config {
	cfg := aging.DefaultConfig()
	cfg.MinRadius = 2
	cfg.MaxRadius = 8 // ladder {2,4,8}, the minimum the estimator accepts
	cfg.VolatilityWindow = 8
	cfg.DetectorWarmup = 8
	cfg.Refractory = 4
	cfg.HistoryLimit = 64
	return cfg
}

// testTrace is source i's deterministic counter trace: a noisy decaying
// free-memory counter and a noisy growing swap counter, unique per
// source so cross-source bleed cannot cancel out.
func testTrace(i, n int) [][2]float64 {
	rng := rand.New(rand.NewSource(int64(1000 + i)))
	tr := make([][2]float64, n)
	free, swap := 1e9+float64(i)*1e6, float64(i)
	for k := range tr {
		free -= rng.Float64() * 1e5
		swap += rng.Float64() * 1e4
		tr[k] = [2]float64{free, swap}
	}
	return tr
}

// referenceState replays a trace into a fresh single-process monitor and
// returns its gob state — the ground truth the sharded registry must
// match byte-for-byte.
func referenceState(t *testing.T, cfg aging.Config, tr [][2]float64) []byte {
	t.Helper()
	mon, err := aging.NewDualMonitor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range tr {
		mon.Add(s[0], s[1])
	}
	blob, err := mon.SaveState()
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestRegistryParallelSourcesNoBleed is the core isolation test: 64
// sources, each written by its own goroutine, all racing through the
// shared shards. Every source's monitor must come out byte-for-byte
// identical to a single-process monitor fed the same trace, and the
// per-shard/per-source accounting must be exact. Run under -race this
// also proves the no-locks hot path has no data races.
func TestRegistryParallelSourcesNoBleed(t *testing.T) {
	const nSources, nSamples = 64, 200
	r, err := NewRegistry(Config{Shards: 4, QueueSize: 64, Monitor: testMonitorConfig()})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	traces := make([][][2]float64, nSources)
	for i := range traces {
		traces[i] = testTrace(i, nSamples)
	}
	var wg sync.WaitGroup
	for i := 0; i < nSources; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := fmt.Sprintf("src-%03d", i)
			for _, s := range traces[i] {
				if err := r.Ingest(Sample{Source: id, Free: s[0], Swap: s[1]}); err != nil {
					t.Errorf("ingest %s: %v", id, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if err := r.Close(); err != nil { // drains every queued sample
		t.Fatal(err)
	}

	if got, want := r.Accepted(), uint64(nSources*nSamples); got != want {
		t.Errorf("accepted = %d, want %d", got, want)
	}
	if r.Dropped() != 0 {
		t.Errorf("dropped = %d, want 0", r.Dropped())
	}
	if r.NumSources() != nSources {
		t.Errorf("sources = %d, want %d", r.NumSources(), nSources)
	}

	// Exact per-shard accounting: each shard accepted exactly the samples
	// of the sources hashed onto it, and the totals add up.
	wantPerShard := make(map[int]uint64)
	for i := 0; i < nSources; i++ {
		wantPerShard[r.shardIndex(fmt.Sprintf("src-%03d", i))] += nSamples
	}
	var sum uint64
	for _, st := range r.ShardStats() {
		if st.Accepted != wantPerShard[st.ID] {
			t.Errorf("shard %d accepted = %d, want %d", st.ID, st.Accepted, wantPerShard[st.ID])
		}
		if st.Depth != 0 {
			t.Errorf("shard %d depth = %d after drain", st.ID, st.Depth)
		}
		sum += st.Accepted
	}
	if sum != uint64(nSources*nSamples) {
		t.Errorf("shard sum = %d, want %d", sum, nSources*nSamples)
	}

	// No cross-source bleed: every monitor state equals its
	// single-process reference byte-for-byte.
	for i := 0; i < nSources; i++ {
		id := fmt.Sprintf("src-%03d", i)
		got, err := r.MonitorState(id)
		if err != nil {
			t.Fatalf("state %s: %v", id, err)
		}
		if want := referenceState(t, r.Config().Monitor, traces[i]); !bytes.Equal(got, want) {
			t.Errorf("source %s: monitor state differs from single-process reference", id)
		}
		st, ok := r.Source(id)
		if !ok {
			t.Fatalf("source %s missing from status API", id)
		}
		if st.Samples != nSamples {
			t.Errorf("source %s samples = %d, want %d", id, st.Samples, nSamples)
		}
		if st.LastFree != traces[i][nSamples-1][0] || st.LastSwap != traces[i][nSamples-1][1] {
			t.Errorf("source %s last counters = (%v, %v), want trace tail", id, st.LastFree, st.LastSwap)
		}
	}
}

func TestRegistryIngestValidation(t *testing.T) {
	r, err := NewRegistry(Config{Shards: 1, Monitor: testMonitorConfig()})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Ingest(Sample{Free: 1, Swap: 2}); !errors.Is(err, ErrNoSource) {
		t.Errorf("no source: %v", err)
	}
	for _, bad := range [][2]float64{{math.NaN(), 0}, {0, math.Inf(1)}, {math.Inf(-1), 0}} {
		if err := r.Ingest(Sample{Source: "s", Free: bad[0], Swap: bad[1]}); !errors.Is(err, ErrBadSample) {
			t.Errorf("non-finite %v accepted: %v", bad, err)
		}
	}
}

func TestRegistryIngestLine(t *testing.T) {
	r, err := NewRegistry(Config{Shards: 1, Monitor: testMonitorConfig()})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	// Keep-alives are accepted silently.
	for _, line := range []string{"", "   ", "# comment"} {
		if err := r.IngestLine("peer", line); err != nil {
			t.Errorf("keep-alive %q: %v", line, err)
		}
	}
	if err := r.IngestLine("peer", "not a sample"); err == nil {
		t.Error("malformed line accepted")
	}
	if r.BadLines() != 1 {
		t.Errorf("bad lines = %d, want 1", r.BadLines())
	}
	// Source-less lines are attributed to the default source; explicit
	// source= wins.
	if err := r.IngestLine("peer", "1e6 2048"); err != nil {
		t.Fatal(err)
	}
	if err := r.IngestLine("peer", "source=explicit 1e6 2048"); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"peer", "explicit"} {
		if st, ok := r.Source(id); !ok || st.Samples != 1 {
			t.Errorf("source %q: ok=%v samples=%+v", id, ok, st)
		}
	}
}

func TestRegistryDropWhenFull(t *testing.T) {
	r, err := NewRegistry(Config{
		Shards: 1, QueueSize: 1, DropWhenFull: true, Monitor: testMonitorConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	// Park the shard goroutine on a control message so the queue cannot
	// drain, then overfill it.
	gate := make(chan struct{})
	ctl := &ctlMsg{fn: func(*shard) { <-gate }, done: make(chan struct{})}
	r.shards[0].ch <- shardMsg{ctl: ctl}
	<-time.After(10 * time.Millisecond) // let the shard pick up the gate

	var full int
	for i := 0; i < 10; i++ {
		if err := r.Ingest(Sample{Source: "s", Free: 1, Swap: 2}); errors.Is(err, ErrQueueFull) {
			full++
		} else if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if full == 0 {
		t.Error("no ErrQueueFull with a parked 1-slot queue")
	}
	if got := r.Dropped(); got != uint64(full) {
		t.Errorf("dropped = %d, want %d", got, full)
	}
	close(gate)
	<-ctl.done
}

func TestRegistryMaxSources(t *testing.T) {
	r, err := NewRegistry(Config{Shards: 1, MaxSources: 2, Monitor: testMonitorConfig()})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for _, id := range []string{"a", "b", "c", "c", "a"} {
		if err := r.Ingest(Sample{Source: id, Free: 1, Swap: 2}); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if r.NumSources() != 2 {
		t.Errorf("sources = %d, want 2 (capped)", r.NumSources())
	}
	if _, ok := r.Source("c"); ok {
		t.Error("over-cap source c was admitted")
	}
	if r.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2 (both samples of source c)", r.Dropped())
	}
}

func TestRegistryCloseSemantics(t *testing.T) {
	r, err := NewRegistry(Config{Shards: 2, Monitor: testMonitorConfig()})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := r.Ingest(Sample{Source: "s", Free: float64(i), Swap: 0}); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := r.Ingest(Sample{Source: "s", Free: 1, Swap: 2}); !errors.Is(err, ErrClosed) {
		t.Errorf("ingest after close: %v", err)
	}
	// The registry stays readable after Close: statuses and states
	// reflect the fully drained stream.
	st, ok := r.Source("s")
	if !ok || st.Samples != 10 {
		t.Errorf("post-close status: ok=%v st=%+v", ok, st)
	}
	states, err := r.SnapshotStates()
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 1 {
		t.Errorf("post-close snapshot has %d states", len(states))
	}
}

// TestRegistryRestoreResumesExactly proves the restart story: snapshot a
// half-fed registry, restore it into a new one, feed the second half,
// and the final state must equal an uninterrupted single-process run.
func TestRegistryRestoreResumesExactly(t *testing.T) {
	cfg := Config{Shards: 2, Monitor: testMonitorConfig()}
	tr := testTrace(7, 120)

	r1, err := NewRegistry(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range tr[:60] {
		if err := r1.Ingest(Sample{Source: "m", Free: s[0], Swap: s[1]}); err != nil {
			t.Fatal(err)
		}
	}
	if err := r1.Close(); err != nil {
		t.Fatal(err)
	}
	states, err := r1.SnapshotStates()
	if err != nil {
		t.Fatal(err)
	}

	cfg.Restore = states
	r2, err := NewRegistry(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if st, ok := r2.Source("m"); !ok || st.Samples != 60 {
		t.Fatalf("restored status: ok=%v st=%+v", ok, st)
	}
	for _, s := range tr[60:] {
		if err := r2.Ingest(Sample{Source: "m", Free: s[0], Swap: s[1]}); err != nil {
			t.Fatal(err)
		}
	}
	if err := r2.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := r2.MonitorState("m")
	if err != nil {
		t.Fatal(err)
	}
	if want := referenceState(t, cfg.Monitor, tr); !bytes.Equal(got, want) {
		t.Error("restored+resumed state differs from uninterrupted reference")
	}
}

func TestRegistryRestoreRejectsGarbage(t *testing.T) {
	if _, err := NewRegistry(Config{
		Monitor: testMonitorConfig(),
		Restore: map[string][]byte{"x": []byte("not a gob")},
	}); err == nil {
		t.Error("garbage restore blob accepted")
	}
	if _, err := NewRegistry(Config{
		Monitor: testMonitorConfig(),
		Restore: map[string][]byte{"bad id": nil},
	}); err == nil {
		t.Error("invalid restored source id accepted")
	}
}

func TestRegistryStallAndResumeAlerts(t *testing.T) {
	r, err := NewRegistry(Config{
		Shards: 1, Monitor: testMonitorConfig(), StallTimeout: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	sub := r.Alerts().Subscribe("test", 16)
	if err := r.Ingest(Sample{Source: "s", Free: 1, Swap: 0}); err != nil {
		t.Fatal(err)
	}

	waitAlert := func(kind string) Alert {
		t.Helper()
		for {
			select {
			case a := <-sub.C():
				if a.Kind == kind {
					return a
				}
			case <-time.After(2 * time.Second):
				t.Fatalf("no %q alert", kind)
			}
		}
	}
	a := waitAlert(AlertStall)
	if a.Source != "s" || a.GapMillis <= 0 {
		t.Errorf("stall alert = %+v", a)
	}
	if st, _ := r.Source("s"); !st.Stalled {
		t.Error("status not marked stalled")
	}
	if err := r.Ingest(Sample{Source: "s", Free: 2, Swap: 0}); err != nil {
		t.Fatal(err)
	}
	if a := waitAlert(AlertResume); a.Source != "s" {
		t.Errorf("resume alert = %+v", a)
	}
}

// TestRegistryJumpAlertsMatchMonitor feeds a regularity change (constant
// then noisy) and checks that jump alerts mirror exactly what a local
// monitor reports on the same signal.
func TestRegistryJumpAlertsMatchMonitor(t *testing.T) {
	cfg := testMonitorConfig()
	r, err := NewRegistry(Config{Shards: 1, Monitor: cfg})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	rng := rand.New(rand.NewSource(42))
	trace := make([][2]float64, 200)
	for i := range trace {
		free := 1e9
		if i >= 100 {
			free += rng.NormFloat64() * 1e7 // late noisy regime
		}
		trace[i] = [2]float64{free, 0}
	}
	ref, err := aging.NewDualMonitor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var want []aging.DualJump
	for _, s := range trace {
		want = append(want, ref.Add(s[0], s[1])...)
		if err := r.Ingest(Sample{Source: "s", Free: s[0], Swap: s[1]}); err != nil {
			t.Fatal(err)
		}
	}
	if len(want) == 0 {
		t.Fatal("reference monitor detected nothing; test signal is too tame")
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	var got []Alert
	for _, a := range r.Alerts().Recent(0) {
		if a.Kind == AlertJump {
			got = append(got, a)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("daemon raised %d jump alerts, reference monitor %d", len(got), len(want))
	}
	for i, a := range got {
		j := want[i]
		if a.Source != "s" || a.Counter != j.Counter.String() ||
			a.Sample != j.Jump.SampleIndex || a.Volatility != j.Jump.Volatility ||
			a.Score != j.Jump.Score {
			t.Errorf("alert %d = %+v, want jump %+v", i, a, j)
		}
	}
	st, _ := r.Source("s")
	if st.Jumps != int64(len(want)) {
		t.Errorf("status jumps = %d, want %d", st.Jumps, len(want))
	}
}
