package ingest

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"agingmf/internal/obs"
)

// startTestServer boots a server on loopback ephemeral ports.
func startTestServer(t *testing.T, mutate func(*ServerConfig)) *Server {
	t.Helper()
	cfg := ServerConfig{
		Registry: Config{Shards: 2, Monitor: testMonitorConfig()},
		TCPAddr:  "127.0.0.1:0",
		HTTPAddr: "127.0.0.1:0",
	}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return srv
}

// waitAccepted polls until the registry has consumed want samples.
func waitAccepted(t *testing.T, reg *Registry, want uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for reg.Accepted() < want {
		if time.Now().After(deadline) {
			t.Fatalf("accepted %d, want %d", reg.Accepted(), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestServerTCPIngest(t *testing.T) {
	srv := startTestServer(t, nil)
	conn, err := net.Dial("tcp", srv.TCPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "source=web-01 1e9 0\n")
	fmt.Fprintf(conn, "source=web-01 9.9e8 1e6\n")
	fmt.Fprintf(conn, "# keep-alive\n\n")
	fmt.Fprintf(conn, "1e8 5e6\n") // source-less: keyed by peer host
	waitAccepted(t, srv.Registry(), 3)

	st, ok := srv.Registry().Source("web-01")
	if !ok || st.Samples != 2 || st.LastFree != 9.9e8 || st.LastSwap != 1e6 {
		t.Errorf("web-01 status: ok=%v %+v", ok, st)
	}
	if st, ok := srv.Registry().Source("127.0.0.1"); !ok || st.Samples != 1 {
		t.Errorf("peer-keyed status: ok=%v %+v", ok, st)
	}
}

func TestServerTCPBadLineBudget(t *testing.T) {
	srv := startTestServer(t, func(c *ServerConfig) { c.MaxBadLines = 2 })
	conn, err := net.Dial("tcp", srv.TCPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < 5; i++ {
		fmt.Fprintf(conn, "garbage line %d\n", i)
	}
	// Past the budget the server says why and hangs up.
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	reply, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatalf("no error reply before close: %v", err)
	}
	if !strings.Contains(reply, "malformed") {
		t.Errorf("reply = %q", reply)
	}
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Error("connection still open past the bad-line budget")
	}
	if srv.Registry().BadLines() < 3 {
		t.Errorf("bad lines = %d, want >= 3", srv.Registry().BadLines())
	}
}

func TestServerHTTPIngestAndAPI(t *testing.T) {
	srv := startTestServer(t, nil)
	base := "http://" + srv.HTTPAddr().String()

	body := "source=db-1 1e9 0\nsource=db-1 9e8 1e5\nsource=db-2 5e8 0\nbogus\n"
	resp, err := http.Post(base+"/ingest", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var counts map[string]int
	if err := json.NewDecoder(resp.Body).Decode(&counts); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || counts["accepted"] != 3 || counts["rejected"] != 1 {
		t.Errorf("POST /ingest: status %d counts %v", resp.StatusCode, counts)
	}
	waitAccepted(t, srv.Registry(), 3)

	// ?source= keys source-less lines.
	resp, err = http.Post(base+"/ingest?source=relay-9", "text/plain", strings.NewReader("1 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitAccepted(t, srv.Registry(), 4)

	var list struct {
		Sources []SourceStatus `json:"sources"`
	}
	getJSON(t, base+"/api/sources", &list)
	if len(list.Sources) != 3 {
		t.Fatalf("GET /api/sources returned %d sources: %+v", len(list.Sources), list)
	}

	var st SourceStatus
	getJSON(t, base+"/api/sources/db-1/status", &st)
	if st.ID != "db-1" || st.Samples != 2 {
		t.Errorf("GET status = %+v", st)
	}
	if resp, err := http.Get(base + "/api/sources/nope/status"); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown source: %v %v", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}

	var shards struct {
		Shards []ShardStat `json:"shards"`
	}
	getJSON(t, base+"/api/shards", &shards)
	var sum uint64
	for _, s := range shards.Shards {
		sum += s.Accepted
	}
	if len(shards.Shards) != 2 || sum != 4 {
		t.Errorf("GET /api/shards = %+v (sum %d)", shards.Shards, sum)
	}

	var alerts struct {
		Total  uint64  `json:"total"`
		Alerts []Alert `json:"alerts"`
	}
	getJSON(t, base+"/api/alerts", &alerts)
	if alerts.Total != uint64(len(alerts.Alerts)) {
		t.Errorf("GET /api/alerts = %+v", alerts)
	}
	if resp, err := http.Get(base + "/api/alerts?n=bogus"); err != nil || resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad n: %v %v", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}

	// Telemetry endpoints ride the same listener.
	for _, path := range []string{"/metrics", "/healthz"} {
		resp, err := http.Get(base + path)
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: %v %v", path, resp, err)
		}
		if resp != nil {
			resp.Body.Close()
		}
	}
}

func getJSON(t *testing.T, url string, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}

func TestServerMetricsExposition(t *testing.T) {
	srv := startTestServer(t, func(c *ServerConfig) {
		c.Registry.Obs = obs.NewRegistry()
	})
	conn, err := net.Dial("tcp", srv.TCPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(conn, "source=m 1 2\n")
	conn.Close()
	waitAccepted(t, srv.Registry(), 1)

	resp, err := http.Get("http://" + srv.HTTPAddr().String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, family := range []string{
		metricSamples, metricSources, metricConns, metricQueueDepth,
	} {
		if !strings.Contains(text, family) {
			t.Errorf("/metrics missing %s", family)
		}
	}
}

// TestServerShutdownSnapshotRestart is the kill-and-resume integration
// path at the package level: feed a server, shut it down (final snapshot),
// then boot a second server on the same snapshot file and verify every
// source resumed with its exact monitor state.
func TestServerShutdownSnapshotRestart(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "agingd.snap")
	tr := testTrace(3, 80)

	srv1 := startTestServer(t, func(c *ServerConfig) { c.SnapshotPath = snap })
	conn, err := net.Dial("tcp", srv1.TCPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	w := bufio.NewWriter(conn)
	for _, s := range tr[:40] {
		fmt.Fprintf(w, "source=m %v %v\nsource=other 1 2\n", s[0], s[1])
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	waitAccepted(t, srv1.Registry(), 80)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	srv2 := startTestServer(t, func(c *ServerConfig) { c.SnapshotPath = snap })
	if n := srv2.Registry().NumSources(); n != 2 {
		t.Fatalf("restarted server resumed %d sources, want 2", n)
	}
	if st, ok := srv2.Registry().Source("m"); !ok || st.Samples != 40 {
		t.Fatalf("restored m status: ok=%v %+v", ok, st)
	}
	conn, err = net.Dial("tcp", srv2.TCPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	w = bufio.NewWriter(conn)
	for _, s := range tr[40:] {
		fmt.Fprintf(w, "source=m %v %v\n", s[0], s[1])
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	waitAccepted(t, srv2.Registry(), 40)

	got, err := srv2.Registry().MonitorState("m")
	if err != nil {
		t.Fatal(err)
	}
	if want := referenceState(t, srv2.Registry().Config().Monitor, tr); !bytes.Equal(got, want) {
		t.Error("kill+restart state differs from uninterrupted single-process run")
	}
}

func TestServerStartErrors(t *testing.T) {
	srv := startTestServer(t, nil)
	if err := srv.Start(); err == nil {
		t.Error("double Start accepted")
	}
	// A taken address must fail cleanly.
	bad, err := NewServer(ServerConfig{
		Registry: Config{Monitor: testMonitorConfig()},
		TCPAddr:  srv.TCPAddr().String(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := bad.Start(); err == nil {
		t.Error("Start on a taken port succeeded")
	}
	_ = bad.Registry().Close()
}
