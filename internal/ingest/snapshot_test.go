package ingest

import (
	"bytes"
	"encoding/gob"
	"os"
	"path/filepath"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.gob")
	want := map[string][]byte{
		"web-01": []byte("state-a"),
		"db/2":   []byte("state-b"),
		"empty":  nil,
	}
	if err := WriteSnapshot(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d states, want %d", len(got), len(want))
	}
	for id, blob := range want {
		if !bytes.Equal(got[id], blob) {
			t.Errorf("state %q = %q, want %q", id, got[id], blob)
		}
	}
	// Overwrite must be atomic-by-rename: no stray tmp files left behind.
	if err := WriteSnapshot(path, map[string][]byte{"only": []byte("x")}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("snapshot dir has %d entries, want 1 (tmp files left?)", len(entries))
	}
	if got, err = ReadSnapshot(path); err != nil || len(got) != 1 {
		t.Errorf("overwritten snapshot: %v, %d states", err, len(got))
	}
}

func TestReadSnapshotMissingIsColdStart(t *testing.T) {
	got, err := ReadSnapshot(filepath.Join(t.TempDir(), "nope.gob"))
	if err != nil || got != nil {
		t.Errorf("missing snapshot: got %v, %v; want nil, nil", got, err)
	}
}

func TestReadSnapshotRejectsCorruptionAndVersionSkew(t *testing.T) {
	dir := t.TempDir()
	corrupt := filepath.Join(dir, "corrupt.gob")
	if err := os.WriteFile(corrupt, []byte("not a gob stream"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshot(corrupt); err == nil {
		t.Error("corrupt snapshot accepted")
	}

	skew := filepath.Join(dir, "skew.gob")
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snapshotFile{Version: snapshotVersion + 1}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(skew, buf.Bytes(), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshot(skew); err == nil {
		t.Error("future-version snapshot accepted")
	}
}

func TestWriteSnapshotUnwritableDir(t *testing.T) {
	if err := WriteSnapshot(filepath.Join(t.TempDir(), "missing", "snap.gob"), nil); err == nil {
		t.Error("write into a missing directory succeeded")
	}
}
