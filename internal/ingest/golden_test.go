package ingest

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"

	"agingmf/internal/aging"
)

// Gob-compatibility golden test for registry snapshots: restore the
// committed pre-refactor (v0) snapshot_v0.gob — written by a real
// sharded registry built on the pre-internal/stream Monitor — and prove
// a current registry resumes every source exactly where it stopped.
//
// fixtureTrace and fixtureConfig are duplicated from
// internal/aging/testdata/gen_fixtures.go (and golden_test.go there);
// the copies must stay identical or the replayed traces diverge from
// the ones baked into the fixture.

func fixtureTrace(seed uint64, n int) []float64 {
	x := seed
	rnd := func() float64 {
		x = x*6364136223846793005 + 1442695040888963407
		return float64(x>>11) / (1 << 53)
	}
	out := make([]float64, n)
	level := 0.0
	for i := range out {
		amp := 0.05
		if i >= n/2 {
			amp = 1.5
		}
		if (i/16)%2 == 0 {
			level += 0.01
			out[i] = level
		} else {
			out[i] = level + amp*(rnd()-0.5)
		}
	}
	return out
}

func fixtureConfig(kind aging.DetectorKind, historyLimit int) aging.Config {
	return aging.Config{
		MinRadius:        2,
		MaxRadius:        8,
		VolatilityWindow: 32,
		Detector:         kind,
		ShewhartK:        3,
		DetectorWarmup:   64,
		CUSUMDrift:       0.5,
		CUSUMThreshold:   20,
		PHDelta:          0.5,
		PHLambda:         50,
		EWMALambda:       0.05,
		EWMAK:            6,
		Refractory:       32,
		HistoryLimit:     historyLimit,
	}
}

const (
	fixtureLen   = 800
	fixtureSplit = 500
)

func TestGoldenSnapshotRestores(t *testing.T) {
	states, err := ReadSnapshot(filepath.Join("testdata", "snapshot_v0.gob"))
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 3 {
		t.Fatalf("fixture holds %d sources, want 3", len(states))
	}
	cfg := fixtureConfig(aging.DetectShewhart, 256)
	r, err := NewRegistry(Config{Shards: 2, Monitor: cfg, Restore: states})
	if err != nil {
		t.Fatalf("restore pre-refactor snapshot: %v", err)
	}
	defer r.Close()

	// Continue each source's trace past the fixture split through the
	// sharded path.
	for si := 0; si < 3; si++ {
		id := fmt.Sprintf("golden-%02d", si)
		st, ok := r.Source(id)
		if !ok {
			t.Fatalf("source %s not restored", id)
		}
		if st.Samples != fixtureSplit {
			t.Fatalf("source %s resumed at %d samples, want %d", id, st.Samples, fixtureSplit)
		}
		f := fixtureTrace(uint64(31+si), fixtureLen)
		s := fixtureTrace(uint64(41+si), fixtureLen)
		for i := fixtureSplit; i < fixtureLen; i++ {
			if err := r.Ingest(Sample{Source: id, Free: f[i], Swap: s[i]}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	// Every continued monitor must land byte-for-byte on a fresh
	// single-process monitor fed the full trace.
	for si := 0; si < 3; si++ {
		id := fmt.Sprintf("golden-%02d", si)
		ref, err := aging.NewDualMonitor(cfg)
		if err != nil {
			t.Fatal(err)
		}
		f := fixtureTrace(uint64(31+si), fixtureLen)
		s := fixtureTrace(uint64(41+si), fixtureLen)
		for i := 0; i < fixtureLen; i++ {
			ref.Add(f[i], s[i])
		}
		want, err := ref.SaveState()
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.MonitorState(id)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("source %s: continued v0 state diverges from full fresh run", id)
		}
	}
}
