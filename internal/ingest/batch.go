package ingest

import (
	"fmt"
	"strconv"
	"strings"
)

// Batched wire form. A producer that samples faster than it wants to
// talk to the daemon groups consecutive observations of one source into
// a single line:
//
//	batch;source=ID;FREE SWAP;FREE SWAP;...
//	batch;FREE SWAP;FREE SWAP;...           (transport supplies the source)
//
// Pairs are consumed oldest first, exactly as if each had been sent as
// its own line, but the whole batch costs one line parse and one shard
// channel send instead of one per sample. IngestLine recognizes the
// "batch;" prefix, so both the TCP listener and HTTP POST /ingest accept
// batches with no transport changes.

// BatchPrefix marks a batched wire line.
const BatchPrefix = "batch;"

// Batch is a run of counter-sample pairs from one source, oldest first.
type Batch struct {
	// Source identifies the producing machine; empty means the transport
	// supplies a default, as with Sample.
	Source string
	// Pairs holds the observations: pair[0] = free memory bytes,
	// pair[1] = used swap bytes.
	Pairs [][2]float64
}

// IsBatchLine reports whether a wire line (after trimming) uses the
// batched form.
func IsBatchLine(line string) bool {
	return strings.HasPrefix(strings.TrimSpace(line), BatchPrefix)
}

// ParseBatch parses one batched wire line. The syntax is strict — every
// ';'-separated segment after the prefix (and optional source=ID segment)
// must hold exactly two finite fields, and at least one pair is required
// — so a corrupted batch is rejected whole rather than half-ingested.
func ParseBatch(line string) (Batch, error) {
	var b Batch
	rest := strings.TrimSpace(line)
	if !strings.HasPrefix(rest, BatchPrefix) {
		return b, fmt.Errorf("%w: not a batch line", ErrBadLine)
	}
	rest = rest[len(BatchPrefix):]
	if strings.HasPrefix(rest, "source=") {
		seg, tail, found := strings.Cut(rest[len("source="):], ";")
		if !found {
			return b, fmt.Errorf("%w: batch source without pairs", ErrBadLine)
		}
		if err := validSource(seg); err != nil {
			return b, err
		}
		b.Source = seg
		rest = tail
	}
	if rest == "" {
		return b, fmt.Errorf("%w: empty batch", ErrBadLine)
	}
	b.Pairs = make([][2]float64, 0, strings.Count(rest, ";")+1)
	for len(rest) > 0 {
		seg, tail, _ := strings.Cut(rest, ";")
		rest = tail
		ff, sf, ok := twoFields(seg)
		if !ok {
			return Batch{}, fmt.Errorf(`%w: batch pair %d: want exactly "free swap" in %q`,
				ErrBadLine, len(b.Pairs), seg)
		}
		free, err := parseFinite("free", ff)
		if err != nil {
			return Batch{}, err
		}
		swap, err := parseFinite("swap", sf)
		if err != nil {
			return Batch{}, err
		}
		b.Pairs = append(b.Pairs, [2]float64{free, swap})
	}
	return b, nil
}

// twoFields splits a segment into exactly two whitespace-separated
// fields without allocating (the reason it exists: strings.Fields costs
// one slice per segment, which dominated the batch parse). ok is false
// for any other field count.
func twoFields(seg string) (a, b string, ok bool) {
	i := 0
	for i < len(seg) && asciiSpace(seg[i]) {
		i++
	}
	j := i
	for j < len(seg) && !asciiSpace(seg[j]) {
		j++
	}
	if j == i {
		return "", "", false
	}
	a = seg[i:j]
	i = j
	for i < len(seg) && asciiSpace(seg[i]) {
		i++
	}
	j = i
	for j < len(seg) && !asciiSpace(seg[j]) {
		j++
	}
	if j == i {
		return "", "", false
	}
	b = seg[i:j]
	for k := j; k < len(seg); k++ {
		if !asciiSpace(seg[k]) {
			return "", "", false
		}
	}
	return a, b, true
}

func asciiSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\v' || c == '\f' || c == '\r'
}

// FormatBatch renders a batch in the canonical wire form, the inverse of
// ParseBatch. Batches with no pairs render to "" (nothing to say on the
// wire).
func FormatBatch(b Batch) string {
	if len(b.Pairs) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteString(BatchPrefix)
	if b.Source != "" {
		sb.WriteString("source=")
		sb.WriteString(b.Source)
		sb.WriteByte(';')
	}
	var num [32]byte
	for i, p := range b.Pairs {
		if i > 0 {
			sb.WriteByte(';')
		}
		sb.Write(strconv.AppendFloat(num[:0], p[0], 'g', -1, 64))
		sb.WriteByte(' ')
		sb.Write(strconv.AppendFloat(num[:0], p[1], 'g', -1, 64))
	}
	return sb.String()
}
