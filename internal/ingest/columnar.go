package ingest

import (
	"time"

	transport "agingmf/internal/source"
)

// IngestColumns routes one columnar batch (the decoded form of a binary
// wire frame) to its source's shard as a single unit — the columnar
// counterpart of IngestBatch. Ownership of cb transfers to the registry
// on every call: the shard releases it back to the pool after folding
// the columns into the detectors, and an error return has already
// released it — the caller must not touch cb afterwards either way.
//
// The shard-side hot path hands the columns straight to
// detect.MonitorSet.AddColumns — no per-sample dispatch, no row
// materialization — which is where the binary path's throughput comes
// from (see BenchmarkIngestBinary); verdicts and detector state are
// byte-for-byte those of per-sample Ingest calls over the same values.
// Queueing semantics match IngestBatch: a full shard queue blocks the
// producer (or drops whole, counted, with DropWhenFull) — a frame is
// never split.
func (r *Registry) IngestColumns(cb *transport.ColumnarBatch) error {
	return r.ingestColumns(cb, r.tr.Sample())
}

// ingestColumns is IngestColumns with the frame's tracer sequence
// already drawn (a frame is one traced unit, like a text batch).
func (r *Registry) ingestColumns(cb *transport.ColumnarBatch, seq uint64) error {
	n := cb.Len()
	if n == 0 {
		cb.Release()
		return nil
	}
	// The wire supplies the source id raw; vet it like the text parser
	// does before it can become a registry key.
	if cb.Source == "" {
		cb.Release()
		return ErrNoSource
	}
	if err := validSource(cb.Source); err != nil {
		cb.Release()
		return err
	}
	// x-x is 0 exactly when x is finite (NaN and ±Inf both yield NaN,
	// and NaN != 0), so one fused check rejects every non-finite value.
	for i := 0; i < n; i++ {
		if d := cb.Free[i] - cb.Free[i] + cb.Swap[i] - cb.Swap[i]; d != 0 {
			cb.Release()
			return ErrBadSample
		}
	}
	// Same sender/closing protocol as Ingest; see the comment there.
	r.senders.Add(1)
	defer r.senders.Add(-1)
	if r.closing.Load() {
		r.dropN("shutdown", n)
		cb.Release()
		return ErrClosed
	}
	sh := r.shards[r.shardIndex(cb.Source)]
	msg := shardMsg{cols: cb}
	if seq != 0 {
		msg.seq, msg.enq = seq, time.Now().UnixNano()
	}
	if r.cfg.DropWhenFull {
		select {
		case sh.ch <- msg:
		default:
			r.dropN("queue_full", n)
			cb.Release()
			return ErrQueueFull
		}
	} else {
		select {
		case sh.ch <- msg:
		case <-r.stopc:
			r.dropN("shutdown", n)
			cb.Release()
			return ErrClosed
		}
	}
	sh.depthGauge.Set(float64(sh.depth.Add(1)))
	return nil
}

// handleColumns feeds one columnar batch into its source's detector set
// and returns the batch to the pool. The untraced, unrecorded path is
// the batch-first kernel chain (MonitorSet.AddColumns); a traced or
// flight-recorded source bridges to the row-oriented observe path,
// which is verdict-identical.
func (sh *shard) handleColumns(cb *transport.ColumnarBatch, seq uint64) {
	defer cb.Release()
	r := sh.reg
	n := cb.Len()
	if n == 0 {
		return
	}
	src := sh.resolve(cb.Source, n)
	if src == nil {
		return
	}
	var start time.Time
	if r.cfg.Obs != nil || seq != 0 {
		start = time.Now()
	}
	if seq == 0 && src.fr == nil {
		sh.commit(src, src.mon.AddColumns(cb.Free, cb.Swap), cb.Free[n-1], cb.Swap[n-1], n, start, seq)
		return
	}
	sh.pairs = cb.AppendPairs(sh.pairs[:0])
	sh.commit(src, sh.observe(src, sh.pairs, seq), cb.Free[n-1], cb.Swap[n-1], n, start, seq)
}
