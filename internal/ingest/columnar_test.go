package ingest

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"net"
	"testing"
	"time"

	"agingmf/internal/detect"
	transport "agingmf/internal/source"
)

// columnarTestPairs is an aging-shaped trace (decay plus noise) that
// exercises the detectors, bit-identical however it travels.
func columnarTestPairs(n int) [][2]float64 {
	pairs := make([][2]float64, n)
	for i := range pairs {
		noise := float64((i*2654435761)%1024) - 512
		pairs[i] = [2]float64{1e9 - float64(i)*1e4 + noise, float64(i % 7)}
	}
	return pairs
}

// frameOf encodes pairs as one binary frame for source id.
func frameOf(t testing.TB, id string, pairs [][2]float64) []byte {
	t.Helper()
	cb := transport.AcquireColumnarBatch()
	defer cb.Release()
	cb.Source = id
	for _, p := range pairs {
		cb.Free = append(cb.Free, p[0])
		cb.Swap = append(cb.Swap, p[1])
	}
	frame, err := transport.AppendFrame(nil, cb)
	if err != nil {
		t.Fatal(err)
	}
	return frame
}

// TestIngestColumnsParity pins the tentpole property at the registry
// boundary: the same samples pushed as columnar batches or as text
// batches leave every source's detector state byte-for-byte identical.
func TestIngestColumnsParity(t *testing.T) {
	pairs := columnarTestPairs(900)
	cfg := Config{Shards: 2, Monitor: testMonitorConfig()}

	text, err := NewRegistry(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer text.Close()
	if err := text.IngestBatch(Batch{Source: "m-1", Pairs: pairs}); err != nil {
		t.Fatal(err)
	}

	cols, err := NewRegistry(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cols.Close()
	for off := 0; off < len(pairs); off += 128 {
		end := off + 128
		if end > len(pairs) {
			end = len(pairs)
		}
		cb := transport.AcquireColumnarBatch()
		cb.Source = "m-1"
		for _, p := range pairs[off:end] {
			cb.Free = append(cb.Free, p[0])
			cb.Swap = append(cb.Swap, p[1])
		}
		if err := cols.IngestColumns(cb); err != nil {
			t.Fatal(err)
		}
	}
	if err := text.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := cols.Drain(); err != nil {
		t.Fatal(err)
	}
	want, err := text.MonitorState("m-1")
	if err != nil {
		t.Fatal(err)
	}
	got, err := cols.MonitorState("m-1")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("columnar ingest diverged from text batch ingest")
	}
	if acc := cols.Accepted(); acc != uint64(len(pairs)) {
		t.Fatalf("accepted %d, want %d", acc, len(pairs))
	}
}

// TestIngestColumnsRejects covers the data-validation boundary: missing
// or invalid source ids and non-finite samples are refused before any
// shard sees them, and the batch is released either way (the pool would
// panic loudly enough under -race if it were double-released).
func TestIngestColumnsRejects(t *testing.T) {
	r, err := NewRegistry(Config{Shards: 1, Monitor: testMonitorConfig()})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	mk := func(id string, free float64) *transport.ColumnarBatch {
		cb := transport.AcquireColumnarBatch()
		cb.Source = id
		cb.Free = append(cb.Free, free)
		cb.Swap = append(cb.Swap, 0)
		return cb
	}
	if err := r.IngestColumns(mk("", 1)); !errors.Is(err, ErrNoSource) {
		t.Fatalf("empty source: %v", err)
	}
	if err := r.IngestColumns(mk("bad id", 1)); !errors.Is(err, ErrBadLine) {
		t.Fatalf("invalid source: %v", err)
	}
	if err := r.IngestColumns(mk("ok", math.NaN())); !errors.Is(err, ErrBadSample) {
		t.Fatalf("NaN sample: %v", err)
	}
	empty := transport.AcquireColumnarBatch()
	if err := r.IngestColumns(empty); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if n := r.Accepted(); n != 0 {
		t.Fatalf("accepted %d, want 0", n)
	}
}

// TestIngestColumnsBackpressure pins the oversized-frame contract: a
// frame bigger than the whole shard queue budget still travels as ONE
// message — when the queue is full the producer blocks until the shard
// drains, and the frame is never split or silently dropped.
func TestIngestColumnsBackpressure(t *testing.T) {
	r, err := NewRegistry(Config{Shards: 1, QueueSize: 1, Monitor: testMonitorConfig()})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Park the shard goroutine so nothing drains, then fill the
	// one-slot queue.
	gate := make(chan struct{})
	parked := &ctlMsg{fn: func(*shard) { <-gate }, done: make(chan struct{})}
	r.shards[0].ch <- shardMsg{ctl: parked}
	if err := r.Ingest(Sample{Source: "bp", Free: 1, Swap: 0}); err != nil {
		t.Fatal(err)
	}

	// A frame carrying far more samples than the queue could ever hold
	// (4096 pairs vs QueueSize 1) must block the producing call whole.
	pairs := columnarTestPairs(4096)
	cb := transport.AcquireColumnarBatch()
	cb.Source = "bp"
	for _, p := range pairs {
		cb.Free = append(cb.Free, p[0])
		cb.Swap = append(cb.Swap, p[1])
	}
	done := make(chan error, 1)
	go func() { done <- r.IngestColumns(cb) }()
	select {
	case err := <-done:
		t.Fatalf("oversized frame did not block (err=%v)", err)
	case <-time.After(100 * time.Millisecond):
	}

	close(gate) // shard resumes; queue drains; the blocked send lands
	<-parked.done
	if err := <-done; err != nil {
		t.Fatalf("blocked ingest: %v", err)
	}
	if err := r.Drain(); err != nil {
		t.Fatal(err)
	}
	if acc, drop := r.Accepted(), r.Dropped(); acc != uint64(1+len(pairs)) || drop != 0 {
		t.Fatalf("accepted %d dropped %d, want %d/0 — frame split or dropped",
			acc, drop, 1+len(pairs))
	}
	st, ok := r.Source("bp")
	if !ok || st.Samples != int64(1+len(pairs)) {
		t.Fatalf("source status %+v — frame not delivered whole", st)
	}
}

// TestServerBinaryNegotiation drives the real TCP listener with both
// wires at once: a binary-frame connection and a text connection land
// in the same registry, and the binary source's detector state matches
// a text-fed twin byte-for-byte.
func TestServerBinaryNegotiation(t *testing.T) {
	srv := startTestServer(t, nil)
	pairs := columnarTestPairs(600)

	bin, err := net.Dial("tcp", srv.TCPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer bin.Close()
	var wire []byte
	for off := 0; off < len(pairs); off += 200 {
		wire = append(wire, frameOf(t, "bin-1", pairs[off:off+200])...)
	}
	if _, err := bin.Write(wire); err != nil {
		t.Fatal(err)
	}

	txt, err := net.Dial("tcp", srv.TCPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer txt.Close()
	if _, err := fmt.Fprintf(txt, "%s\n", FormatBatch(Batch{Source: "txt-1", Pairs: pairs})); err != nil {
		t.Fatal(err)
	}

	waitAccepted(t, srv.Registry(), uint64(2*len(pairs)))
	got, err := srv.Registry().MonitorState("bin-1")
	if err != nil {
		t.Fatal(err)
	}
	want, err := srv.Registry().MonitorState("txt-1")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("binary-fed detector state diverged from text-fed twin")
	}
	if bf := srv.Registry().BadFrames(); bf != 0 {
		t.Fatalf("bad frames = %d, want 0", bf)
	}
}

// TestServerBinaryDefaultSource pins the transport-default rule: a
// frame with an empty source id is attributed to the peer host, like a
// source-less text line.
func TestServerBinaryDefaultSource(t *testing.T) {
	srv := startTestServer(t, nil)
	conn, err := net.Dial("tcp", srv.TCPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(frameOf(t, "", columnarTestPairs(8))); err != nil {
		t.Fatal(err)
	}
	waitAccepted(t, srv.Registry(), 8)
	if st, ok := srv.Registry().Source("127.0.0.1"); !ok || st.Samples != 8 {
		t.Fatalf("peer-keyed status: ok=%v %+v", ok, st)
	}
}

// TestServerBinaryCRCReject corrupts one frame mid-stream: the frame is
// rejected whole and counted by reason, while the frames around it are
// ingested — the length framing preserves the boundary.
func TestServerBinaryCRCReject(t *testing.T) {
	srv := startTestServer(t, nil)
	pairs := columnarTestPairs(30)
	good1 := frameOf(t, "crc-1", pairs[:10])
	bad := frameOf(t, "crc-1", pairs[10:20])
	bad[len(bad)-1] ^= 0xff
	good2 := frameOf(t, "crc-1", pairs[20:])

	conn, err := net.Dial("tcp", srv.TCPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	wire := append(append(append([]byte(nil), good1...), bad...), good2...)
	if _, err := conn.Write(wire); err != nil {
		t.Fatal(err)
	}
	waitAccepted(t, srv.Registry(), 20)
	st, ok := srv.Registry().Source("crc-1")
	if !ok || st.Samples != 20 {
		t.Fatalf("source status: ok=%v %+v, want 20 samples", ok, st)
	}
	if bf := srv.Registry().BadFrames(); bf != 1 {
		t.Fatalf("bad frames = %d, want 1", bf)
	}
}

// TestServerBinaryTooLargeCloses pins the frame-size bound: a frame
// declaring more than MaxLineBytes poisons the connection (counted,
// then closed), exactly like an over-long text line.
func TestServerBinaryTooLargeCloses(t *testing.T) {
	srv := startTestServer(t, func(c *ServerConfig) { c.MaxLineBytes = 256 })
	conn, err := net.Dial("tcp", srv.TCPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(frameOf(t, "big", columnarTestPairs(4096))); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Error("connection still open past the frame-size bound")
	}
	if bf := srv.Registry().BadFrames(); bf != 1 {
		t.Fatalf("bad frames = %d, want 1", bf)
	}
	if acc := srv.Registry().Accepted(); acc != 0 {
		t.Fatalf("accepted %d samples from an over-long frame", acc)
	}
}

// FuzzBinaryFrame is the differential fuzz target of the columnar wire:
// any byte string that decodes as a frame must (1) re-encode and decode
// to bit-identical columns, (2) produce byte-identical detector state
// and verdicts whether the samples travel as the frame or as the
// equivalent text batch line, and (3) reject whole on a flipped CRC.
func FuzzBinaryFrame(f *testing.F) {
	for _, n := range []int{1, 3, 64} {
		frame, err := transport.AppendFrame(nil, &transport.ColumnarBatch{
			Source: "fz",
			Free:   columnsOf(columnarTestPairs(n), 0),
			Swap:   columnsOf(columnarTestPairs(n), 1),
		})
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
	}
	f.Add([]byte("batch;source=x;1 2;3 4"))
	f.Fuzz(func(t *testing.T, data []byte) {
		cb := transport.AcquireColumnarBatch()
		defer cb.Release()
		if err := transport.DecodeFrame(data, cb, nil); err != nil {
			return // rejects are fine; crashes and false accepts are not
		}
		if cb.Len() == 0 || cb.Len() > 4096 {
			return
		}
		// (1) Round trip.
		frame, err := transport.AppendFrame(nil, cb)
		if err != nil {
			t.Fatalf("decoded batch failed to re-encode: %v", err)
		}
		again := transport.AcquireColumnarBatch()
		defer again.Release()
		if err := transport.DecodeFrame(frame, again, nil); err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		for i := range cb.Free {
			if math.Float64bits(again.Free[i]) != math.Float64bits(cb.Free[i]) ||
				math.Float64bits(again.Swap[i]) != math.Float64bits(cb.Swap[i]) {
				t.Fatalf("sample %d changed across re-encode", i)
			}
		}
		// (3) A flipped CRC rejects the whole frame.
		frame[len(frame)-1] ^= 0x01
		if err := transport.DecodeFrame(frame, &transport.ColumnarBatch{}, nil); !errors.Is(err, transport.ErrFrameCRC) {
			t.Fatalf("corrupt CRC accepted: %v", err)
		}
		// (2) Differential detection: frame columns vs the text form.
		finite := true
		for i := range cb.Free {
			if math.IsNaN(cb.Free[i]) || math.IsInf(cb.Free[i], 0) ||
				math.IsNaN(cb.Swap[i]) || math.IsInf(cb.Swap[i], 0) {
				finite = false
				break
			}
		}
		if !finite {
			return // the registry refuses these on both wires
		}
		line := FormatBatch(Batch{Source: "fz", Pairs: cb.AppendPairs(nil)})
		parsed, err := ParseBatch(line)
		if err != nil {
			t.Fatalf("text form of decoded frame did not parse: %v", err)
		}
		cfg := testMonitorConfig()
		viaCols, err := detect.New(nil, detect.Config{Monitor: cfg})
		if err != nil {
			t.Fatal(err)
		}
		viaText, err := detect.New(nil, detect.Config{Monitor: cfg})
		if err != nil {
			t.Fatal(err)
		}
		evCols := viaCols.AddColumns(cb.Free, cb.Swap)
		evText := viaText.AddBatch(parsed.Pairs)
		if len(evCols) != len(evText) {
			t.Fatalf("verdicts diverged: %d columnar vs %d text events", len(evCols), len(evText))
		}
		for i := range evCols {
			if evCols[i] != evText[i] {
				t.Fatalf("event %d diverged: %+v vs %+v", i, evCols[i], evText[i])
			}
		}
		sCols, err := viaCols.SaveState()
		if err != nil {
			t.Fatal(err)
		}
		sText, err := viaText.SaveState()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sCols, sText) {
			t.Fatal("detector state diverged between the binary and text wires")
		}
	})
}

// columnsOf projects one column out of row pairs.
func columnsOf(pairs [][2]float64, col int) []float64 {
	out := make([]float64, len(pairs))
	for i, p := range pairs {
		out[i] = p[col]
	}
	return out
}
