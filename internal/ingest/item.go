package ingest

import (
	"io"

	transport "agingmf/internal/source"
)

// ParseItem parses one fleet wire line — a single sample or a "batch;"
// frame — into a transport item: the source.ParseFunc of the wire
// protocol, shared by every line-reading command.
func ParseItem(line string) (transport.Item, error) {
	if IsBatchLine(line) {
		b, err := ParseBatch(line)
		if err != nil {
			return transport.Item{}, err
		}
		return transport.Item{Source: b.Source, Pairs: b.Pairs}, nil
	}
	s, err := ParseLine(line)
	if err != nil {
		return transport.Item{}, err
	}
	return transport.Item{Source: s.Source, Pairs: [][2]float64{{s.Free, s.Swap}}}, nil
}

// NewLineSource reads the fleet wire protocol from r — the stdin source
// of cmd/agingmon and the per-connection shape of the daemon transports.
func NewLineSource(r io.Reader) *transport.LineSource {
	return transport.NewLines(r, ParseItem)
}

// RegistrySink feeds transport items into a sharded fleet registry —
// the ingestion Sink. Items keep their own source identity; pairs from
// an item run through the batch path (one shard handoff per item).
type RegistrySink struct {
	// Reg is the destination registry.
	Reg *Registry
	// Default keys items that carry no source of their own, exactly as
	// a transport supplies the peer host on the wire.
	Default string
}

func (s *RegistrySink) Write(it transport.Item) error {
	if len(it.Pairs) == 0 {
		return nil
	}
	id := it.Source
	if id == "" {
		id = s.Default
	}
	if len(it.Pairs) == 1 {
		return s.Reg.Ingest(Sample{Source: id, Free: it.Pairs[0][0], Swap: it.Pairs[0][1]})
	}
	return s.Reg.IngestBatch(Batch{Source: id, Pairs: it.Pairs})
}

func (s *RegistrySink) Close() error { return nil }
