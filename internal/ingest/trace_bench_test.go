package ingest

import (
	"os"
	"testing"
	"time"

	"agingmf/internal/trace"
)

// traceOverheadRun pushes iters batches of size pairs through a fresh
// registry configured with the given tracing options and returns the
// elapsed wall time. The registry is closed inside the timed window:
// backpressure fills the queue almost immediately, so the measured time
// is end-to-end shard consumption, and the close accounts for the
// residual drain.
func traceOverheadRun(tb testing.TB, iters, size, sampleEvery, recorderDepth int) time.Duration {
	tb.Helper()
	r, err := NewRegistry(Config{
		Monitor:             testMonitorConfig(),
		TraceSampleEvery:    sampleEvery,
		FlightRecorderDepth: recorderDepth,
	})
	if err != nil {
		tb.Fatal(err)
	}
	pairs := make([][2]float64, size)
	for i := range pairs {
		pairs[i] = [2]float64{1e9 - float64(i), float64(i)}
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := r.IngestBatch(Batch{Source: "bench-0000", Pairs: pairs}); err != nil {
			tb.Fatal(err)
		}
	}
	if err := r.Close(); err != nil {
		tb.Fatal(err)
	}
	return time.Since(start)
}

// BenchmarkIngestTraceOverhead is the paired overhead benchmark: the same
// batched workload with tracing off, sampled at 1/1024, traced on every
// unit, and with the flight recorder on. Compare ns/sample across the
// sub-benchmarks to read the cost of each observability layer.
func BenchmarkIngestTraceOverhead(b *testing.B) {
	const size = 256
	cases := []struct {
		name          string
		sampleEvery   int
		recorderDepth int
	}{
		{"off", 0, 0},
		{"sampled=1024", 1024, 0},
		{"sampled=1", 1, 0},
		{"recorder=64", 0, 64},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			r, err := NewRegistry(Config{
				Monitor:             testMonitorConfig(),
				TraceSampleEvery:    c.sampleEvery,
				FlightRecorderDepth: c.recorderDepth,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer r.Close()
			pairs := make([][2]float64, size)
			for i := range pairs {
				pairs[i] = [2]float64{1e9 - float64(i), float64(i)}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := r.IngestBatch(Batch{Source: "bench-0000", Pairs: pairs}); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*size), "ns/sample")
			if err := r.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// TestTraceOverheadBudget enforces the tracing cost contract in CI: at the
// recommended production rate (one traced unit in 1024) end-to-end batched
// throughput must stay within the documented 5% of tracing-off — asserted
// at 10% here to absorb shared-runner noise on top of the documented
// budget. The flight recorder is off in both arms: its per-sample
// annotation loop is a separately priced feature (see the recorder=64
// sub-benchmark), not part of the sampling budget.
func TestTraceOverheadBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("timing assertion is meaningless under the race detector")
	}
	if testing.Short() {
		t.Skip("timing assertion skipped in -short mode")
	}
	// A wall-clock ratio is only meaningful on an otherwise-idle machine:
	// inside `go test ./...` this package races a dozen others for cores
	// and either arm can be descheduled mid-run. The bench-smoke target
	// runs this test alone (and CI runs bench-smoke), so the assertion is
	// opt-in via the environment rather than silently flaky in the suite.
	if os.Getenv("AGINGMF_TRACE_BUDGET") == "" {
		t.Skip("timing assertion runs in isolation via `make bench-smoke` (AGINGMF_TRACE_BUDGET=1)")
	}
	const (
		iters = 2000
		size  = 256
	)
	// Min-of-3 on each arm: the minimum is the least-noisy estimator of
	// the true cost on a shared machine.
	min := func(sampleEvery int) time.Duration {
		best := time.Duration(1<<63 - 1)
		for i := 0; i < 3; i++ {
			if d := traceOverheadRun(t, iters, size, sampleEvery, 0); d < best {
				best = d
			}
		}
		return best
	}
	min(0) // warm up code paths and the page cache once
	off := min(0)
	sampled := min(1024)
	ratio := float64(sampled) / float64(off)
	t.Logf("off=%v sampled(1/1024)=%v ratio=%.3f", off, sampled, ratio)
	if ratio > 1.10 {
		t.Fatalf("1/1024 sampling costs %.1f%% (off %v, sampled %v); budget is 5%% (+CI slack)",
			(ratio-1)*100, off, sampled)
	}
}

// TestTraceOverheadRunsAreExact sanity-checks the harness itself: every
// batch must be accepted in both arms, or the timing comparison is
// meaningless.
func TestTraceOverheadRunsAreExact(t *testing.T) {
	r, err := NewRegistry(Config{Monitor: testMonitorConfig(), TraceSampleEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	pairs := [][2]float64{{1e9, 0}, {1e9 - 1, 1}}
	const iters = 100
	for i := 0; i < iters; i++ {
		if err := r.IngestBatch(Batch{Source: "bench-0000", Pairs: pairs}); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if got := r.Accepted(); got != iters*uint64(len(pairs)) {
		t.Fatalf("accepted %d, want %d", got, iters*len(pairs))
	}
	detects := 0
	for _, sp := range r.Tracer().Spans() {
		if sp.Stage == trace.StageDetect {
			detects++
		}
	}
	if detects != iters/8 {
		t.Fatalf("traced %d units (detect spans), want %d", detects, iters/8)
	}
}
