package ingest

import (
	"errors"
	"fmt"

	"agingmf/internal/detect"
	"agingmf/internal/obs"
	"agingmf/internal/trace"
)

// ErrSourceExists reports an AttachSource collision: the registry already
// holds a live monitor for the source.
var ErrSourceExists = errors.New("ingest: source already exists")

// DetachSource removes one source from the registry and returns its
// serialized monitor state plus its flight-recorder tail — the payload of
// a cluster migration envelope. The detach runs on the source's shard
// goroutine, so it lands on a sample boundary: every sample accepted
// before the detach is folded into the returned state, and no sample can
// slip into the monitor afterwards. Subsequent samples for the id would
// lazily create a fresh monitor, so callers gate ingestion for the
// source (the cluster node blocks its lines) until it is attached
// elsewhere or re-attached here.
func (r *Registry) DetachSource(id string) ([]byte, []trace.Record, error) {
	if _, ok := r.byID.Load(id); !ok {
		return nil, nil, fmt.Errorf("%w: %q", ErrUnknownSource, id)
	}
	var (
		blob []byte
		recs []trace.Record
		err  error
	)
	werr := r.withShard(r.shards[r.shardIndex(id)], func(sh *shard) {
		src, ok := sh.sources[id]
		if !ok {
			err = fmt.Errorf("%w: %q", ErrUnknownSource, id)
			return
		}
		blob, err = src.mon.SaveState()
		if err != nil {
			return
		}
		recs = src.fr.Snapshot()
		src.wd.Stop()
		delete(sh.sources, id)
		r.byID.Delete(id)
		r.met.sources.Set(float64(r.nsources.Add(-1)))
	})
	if werr != nil {
		return nil, nil, werr
	}
	if err != nil {
		return nil, nil, err
	}
	r.cfg.Events.Info("ingest_source_detached", obs.Fields{"source": id})
	return blob, recs, nil
}

// AttachSource installs a source from a SaveState blob (or fresh, when
// state is empty) — the receiving side of a migration and the
// restore-from-last-snapshot leg of dead-node adoption. The detector set
// resumes exactly where the blob stopped — every detector's state
// travels byte-identically in the envelope — so verdicts after the
// attach are byte-for-byte what the origin would have produced. recs
// seeds the source's flight recorder with the tail that travelled in the
// envelope. Fails with ErrSourceExists when the source is already live
// here (the caller lost a benign creation race) and respects
// Config.MaxSources.
func (r *Registry) AttachSource(id string, state []byte, recs []trace.Record) error {
	if err := validSource(id); err != nil {
		return err
	}
	var (
		mon *detect.MonitorSet
		err error
	)
	if len(state) == 0 {
		mon, err = detect.New(r.cfg.Detectors, r.cfg.DetectorConfig())
	} else {
		mon, err = detect.RestoreMonitorSet(state)
	}
	if err != nil {
		return fmt.Errorf("ingest: attach %q: %w", id, err)
	}
	var (
		aerr     error
		attached int64
	)
	werr := r.withShard(r.shards[r.shardIndex(id)], func(sh *shard) {
		if _, exists := sh.sources[id]; exists {
			aerr = fmt.Errorf("%w: %q", ErrSourceExists, id)
			return
		}
		if r.cfg.MaxSources > 0 && r.nsources.Load() >= int64(r.cfg.MaxSources) {
			aerr = fmt.Errorf("ingest: attach %q: source cap %d reached", id, r.cfg.MaxSources)
			return
		}
		// Read the restored monitor only inside the shard callback: the
		// moment attachSource publishes it, the shard goroutine may fold
		// new samples into it.
		src := r.attachSource(sh, id, mon)
		attached = int64(mon.SamplesSeen())
		src.samples.Store(attached)
		src.jumps.Store(int64(mon.Jumps()))
		if src.fr != nil && len(recs) > 0 {
			src.fr.Append(recs)
		}
	})
	if werr != nil {
		return werr
	}
	if aerr != nil {
		return aerr
	}
	r.cfg.Events.Info("ingest_source_attached", obs.Fields{
		"source": id, "samples": attached,
	})
	return nil
}
