package ingest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"agingmf/internal/obs"
	"agingmf/internal/trace"
)

// TestRegistryTraceThreadingEndToEnd traces every unit (SampleEvery 1)
// through the full pipeline and checks three things at once: every stage
// from parse to alert fan-out produced spans, the flight recorder captured
// an annotated per-sample tail, and — the property everything else rests
// on — the traced path left the monitors byte-for-byte identical to an
// untraced single-process run.
func TestRegistryTraceThreadingEndToEnd(t *testing.T) {
	reg, err := NewRegistry(Config{
		Shards:              2,
		Monitor:             testMonitorConfig(),
		Obs:                 obs.NewRegistry(),
		TraceSampleEvery:    1,
		FlightRecorderDepth: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	const n = 64
	tr := testTrace(1, n)
	// Mix the two wire shapes so both the sample and the batch paths are
	// exercised under tracing: first half line-by-line, second half as
	// one batch.
	for _, p := range tr[:n/2] {
		line := FormatLine(Sample{Source: "m1", Free: p[0], Swap: p[1]})
		if err := reg.IngestLine("", line); err != nil {
			t.Fatal(err)
		}
	}
	if err := reg.IngestLine("", FormatBatch(Batch{Source: "m1", Pairs: tr[n/2:]})); err != nil {
		t.Fatal(err)
	}
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}

	// Stage coverage: every pipeline stage must have produced spans.
	seen := make(map[trace.Stage]int)
	for _, sp := range reg.Tracer().Spans() {
		seen[sp.Stage]++
		if sp.Source != "m1" {
			t.Errorf("span attributed to %q, want m1", sp.Source)
		}
	}
	// Every registry pipeline stage must be covered; StageMigrate belongs
	// to the cluster handoff path, which has its own tracer test.
	for st := trace.StageParse; st < trace.StageMigrate; st++ {
		if seen[st] == 0 {
			t.Errorf("no spans for stage %q (coverage: %v)", st, seen)
		}
	}

	// Flight recorder: the tail must be the last 16 samples, annotated.
	recs, err := reg.FlightRecords("m1")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 16 {
		t.Fatalf("recorder tail has %d records, want 16", len(recs))
	}
	for i, rec := range recs {
		if want := uint64(n - 16 + i + 1); rec.Seq != want {
			t.Errorf("rec[%d].Seq = %d, want %d", i, rec.Seq, want)
		}
		if rec.Phase == "" {
			t.Errorf("rec[%d] has no phase", i)
		}
		if rec.Free != tr[n-16+i][0] || rec.Swap != tr[n-16+i][1] {
			t.Errorf("rec[%d] values (%g, %g) do not match trace", i, rec.Free, rec.Swap)
		}
	}
	last := recs[len(recs)-1]
	if last.TraceSeq == 0 {
		t.Error("last record of a traced batch has no TraceSeq")
	}
	if last.StageNs[trace.StageEst] == 0 || last.StageNs[trace.StageDetect] == 0 {
		t.Errorf("last record missing stage timings: %v", last.StageNs)
	}

	// Parity: the annotated path must not perturb detection state.
	got, err := reg.MonitorState("m1")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, referenceState(t, testMonitorConfig(), tr)) {
		t.Fatal("traced monitor state differs from single-process reference")
	}

	// Metrics: the histogram and depth gauge families must be exposed.
	var text bytes.Buffer
	if err := reg.cfg.Obs.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		trace.MetricStageSeconds, trace.MetricQueueDepth, trace.MetricSpansTotal,
	} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestFlightRecorderWithoutTracing pins the recorder-only mode: with
// sampling off the recorder still captures every sample's annotations,
// but no spans exist and no unit carries a trace sequence.
func TestFlightRecorderWithoutTracing(t *testing.T) {
	reg, err := NewRegistry(Config{
		Shards:              1,
		Monitor:             testMonitorConfig(),
		FlightRecorderDepth: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	if reg.Tracer() != nil {
		t.Fatal("tracer must be nil with TraceSampleEvery 0")
	}
	for _, p := range testTrace(2, 10) {
		if err := reg.Ingest(Sample{Source: "m2", Free: p[0], Swap: p[1]}); err != nil {
			t.Fatal(err)
		}
	}
	reg.Close()
	recs, err := reg.FlightRecords("m2")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("recorder tail has %d records, want 4", len(recs))
	}
	for i, rec := range recs {
		if rec.TraceSeq != 0 {
			t.Errorf("rec[%d].TraceSeq = %d, want 0 (tracing disabled)", i, rec.TraceSeq)
		}
	}
}

// TestFlightRecordsErrors pins the accessor's edge cases: unknown sources
// are an error, sources without a recorder return an empty tail.
func TestFlightRecordsErrors(t *testing.T) {
	reg, err := NewRegistry(Config{Shards: 1, Monitor: testMonitorConfig()})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	if _, err := reg.FlightRecords("nope"); err == nil {
		t.Fatal("unknown source must error")
	}
	if err := reg.Ingest(Sample{Source: "m1", Free: 1, Swap: 0}); err != nil {
		t.Fatal(err)
	}
	reg.Close()
	recs, err := reg.FlightRecords("m1")
	if err != nil {
		t.Fatal(err)
	}
	if recs != nil {
		t.Fatalf("disabled recorder returned %d records, want none", len(recs))
	}
}

// TestServerTraceEndpoints drives the HTTP surface: the per-source
// recorder endpoint, the Perfetto-importable export, and the 404 for
// unknown sources.
func TestServerTraceEndpoints(t *testing.T) {
	srv := startTestServer(t, func(cfg *ServerConfig) {
		cfg.Registry.TraceSampleEvery = 1
		cfg.Registry.FlightRecorderDepth = 8
		cfg.Registry.Obs = obs.NewRegistry()
	})
	conn, err := net.Dial("tcp", srv.TCPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range testTrace(3, 32) {
		fmt.Fprintln(conn, FormatLine(Sample{Source: "m3", Free: p[0], Swap: p[1]}))
	}
	conn.Close()
	waitAccepted(t, srv.Registry(), 32)

	base := "http://" + srv.HTTPAddr().String()
	var rec struct {
		Source  string         `json:"source"`
		Depth   int            `json:"depth"`
		Records []trace.Record `json:"records"`
	}
	getJSON(t, base+"/api/trace/m3", &rec)
	if rec.Source != "m3" || rec.Depth != 8 || len(rec.Records) != 8 {
		t.Fatalf("recorder endpoint: %+v", rec)
	}
	if rec.Records[7].Seq != 32 {
		t.Errorf("newest record Seq = %d, want 32", rec.Records[7].Seq)
	}

	resp, err := http.Get(base + "/api/trace/export")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("export status %d", resp.StatusCode)
	}
	var export struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &export); err != nil {
		t.Fatalf("export is not JSON: %v", err)
	}
	if len(export.TraceEvents) == 0 {
		t.Fatal("export has no events")
	}
	for _, ev := range export.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("unexpected event phase %q", ev.Ph)
		}
	}

	if resp, err := http.Get(base + "/api/trace/unknown-source"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown source status = %d, want 404", resp.StatusCode)
		}
	}
}

// TestServerStalledShardFlipsHealth wedges the single shard's goroutine
// with a blocking control closure while samples pile up in its queue, and
// asserts /healthz flips to 503 "stalled" — then recovers once the shard
// drains. This is the watchdog for the failure mode where one partition
// silently freezes while the rest of the daemon keeps answering.
func TestServerStalledShardFlipsHealth(t *testing.T) {
	srv := startTestServer(t, func(cfg *ServerConfig) {
		cfg.Registry.Shards = 1
		cfg.Registry.QueueSize = 64
		cfg.Registry.DropWhenFull = true
		cfg.Registry.StallTimeout = 80 * time.Millisecond
	})
	reg := srv.Registry()

	unblock := make(chan struct{})
	released := false
	defer func() {
		if !released {
			close(unblock)
		}
	}()
	entered := make(chan struct{})
	go reg.withShard(reg.shards[0], func(*shard) {
		close(entered)
		<-unblock
	})
	<-entered // the shard goroutine is now wedged

	// Queue work behind the wedged closure; accepted cannot advance.
	for i := 0; i < 8; i++ {
		_ = reg.Ingest(Sample{Source: "m1", Free: float64(i), Swap: 0})
	}

	base := "http://" + srv.HTTPAddr().String()
	waitHealth := func(wantCode int, wantBody string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			resp, err := http.Get(base + "/healthz")
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == wantCode && strings.Contains(string(body), wantBody) {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("healthz = %d %q, want %d %q", resp.StatusCode, body, wantCode, wantBody)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitHealth(http.StatusServiceUnavailable, "stalled")

	released = true
	close(unblock)
	waitHealth(http.StatusOK, "")
	waitAccepted(t, reg, 8)
}

// TestSlowAlertSubscriberNeverBlocksIngest is the drop-path contract: a
// subscriber that never drains (a blocked webhook, a wedged sink) loses
// alerts — counted per sink in the exposition — while ingestion proceeds
// at full speed. The shard goroutines publish alerts inline, so any
// blocking here would stall the entire partition.
func TestSlowAlertSubscriberNeverBlocksIngest(t *testing.T) {
	reg, err := NewRegistry(Config{
		Shards:  1,
		Monitor: testMonitorConfig(),
		Obs:     obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	// Buffer 1, never drained: everything past the first alert must drop.
	sub := reg.Alerts().Subscribe("wedged-webhook", 1)
	defer sub.Cancel()

	// A steeply decaying trace through the small test detector fires many
	// jump and phase alerts.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, p := range testTrace(5, 512) {
			if err := reg.Ingest(Sample{Source: "m5", Free: p[0], Swap: p[1]}); err != nil {
				t.Errorf("ingest: %v", err)
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("ingestion stalled behind a slow subscriber")
	}
	reg.Close()

	if reg.Accepted() != 512 {
		t.Fatalf("accepted %d/512", reg.Accepted())
	}
	if total := reg.Alerts().Total(); total < 2 {
		t.Fatalf("test needs multiple alerts to exercise drops, got %d", total)
	}
	if sub.Dropped() == 0 {
		t.Fatal("undrained subscriber reports no drops")
	}
	var text bytes.Buffer
	if err := reg.cfg.Obs.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf(`%s{sink="wedged-webhook"} %d`, metricAlertDrops, sub.Dropped())
	if !strings.Contains(text.String(), want) {
		t.Errorf("exposition missing %q in:\n%s", want, text.String())
	}
}
