package ingest

import (
	"context"
	"testing"
	"time"
)

// TestSelfTestSmall exercises the full loop quickly: simulated machines,
// real sockets, parity verification.
func TestSelfTestSmall(t *testing.T) {
	srv := startTestServer(t, nil)
	rep, err := RunSelfTest(context.Background(), srv, SelfTestConfig{
		Sources: 8,
		Samples: 64,
		Conns:   3,
		Seed:    7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("self-test failed: %+v", rep)
	}
	if rep.SamplesSent == 0 || rep.Accepted != uint64(rep.SamplesSent) {
		t.Errorf("accounting: %+v", rep)
	}
}

// TestSelfTestThousandSources is the fleet-scale acceptance test: 1000
// concurrent simulated sources through real loopback sockets at the
// default queue sizes, with zero dropped samples and byte-for-byte
// monitor parity for every source.
func TestSelfTestThousandSources(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet-scale self-test skipped in -short mode")
	}
	srv := startTestServer(t, func(c *ServerConfig) {
		c.Registry = Config{Monitor: testMonitorConfig()} // default shards & queues
	})
	rep, err := RunSelfTest(context.Background(), srv, SelfTestConfig{
		Sources: 1000,
		Samples: 24,
		Seed:    1,
		Timeout: 4 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dropped != 0 {
		t.Errorf("dropped %d samples at default queue sizes", rep.Dropped)
	}
	if rep.Accepted != uint64(rep.SamplesSent) {
		t.Errorf("accepted %d of %d samples", rep.Accepted, rep.SamplesSent)
	}
	if len(rep.ParityMismatches) != 0 {
		t.Errorf("%d sources diverged from single-process monitors: %v",
			len(rep.ParityMismatches), rep.ParityMismatches)
	}
	if srv.Registry().NumSources() != 1000 {
		t.Errorf("registry tracks %d sources, want 1000", srv.Registry().NumSources())
	}
	t.Logf("self-test: %d sources, %d samples, %d alerts in %v",
		rep.Sources, rep.SamplesSent, rep.Alerts, rep.Elapsed.Round(time.Millisecond))
}

// TestSelfTestBatched runs the same loop over batch; framed wire lines:
// parity against per-sample reference monitors proves batching changes
// the transport, not the verdicts.
func TestSelfTestBatched(t *testing.T) {
	srv := startTestServer(t, nil)
	rep, err := RunSelfTest(context.Background(), srv, SelfTestConfig{
		Sources:   8,
		Samples:   64,
		Conns:     3,
		BatchSize: 9, // deliberately does not divide Samples: ragged tail batch
		Seed:      7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("batched self-test failed: %+v", rep)
	}
}

// TestSelfTestTracedAndRecorded runs the self-test with both tracing and
// the flight recorder on: parity must still hold (the annotated path is
// verdict-neutral), the recorder tails must agree with the wire traces,
// and the tracer must have retained spans.
func TestSelfTestTracedAndRecorded(t *testing.T) {
	srv := startTestServer(t, func(c *ServerConfig) {
		c.Registry.TraceSampleEvery = 16
		c.Registry.FlightRecorderDepth = 32
	})
	rep, err := RunSelfTest(context.Background(), srv, SelfTestConfig{
		Sources:   8,
		Samples:   64,
		Conns:     3,
		BatchSize: 9,
		Seed:      7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("traced self-test failed: %+v", rep)
	}
	if len(rep.RecorderFailures) != 0 {
		t.Errorf("recorder disagrees with wire traces: %v", rep.RecorderFailures)
	}
	if rep.TraceSpans == 0 {
		t.Error("tracing was on but no spans were retained")
	}
}

func TestSelfTestNeedsTCP(t *testing.T) {
	srv, err := NewServer(ServerConfig{Registry: Config{Monitor: testMonitorConfig()}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Registry().Close()
	if _, err := RunSelfTest(context.Background(), srv, SelfTestConfig{}); err == nil {
		t.Error("self-test without a TCP listener succeeded")
	}
}

// TestBinarySelfTestSmall exercises the binary-wire loop quickly: framed
// columnar load over real sockets, zero rejects, per-sample parity.
func TestBinarySelfTestSmall(t *testing.T) {
	srv := startTestServer(t, nil)
	rep, err := RunBinarySelfTest(context.Background(), srv, BinarySelfTestConfig{
		Sources:      3,
		Samples:      500,
		FrameSamples: 64, // ragged tail frame
		Conns:        2,
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("binary self-test failed: %+v", rep)
	}
	if rep.SamplesSent != 1500 || rep.Accepted != 1500 || rep.FramesSent != 24 {
		t.Errorf("accounting: %+v", rep)
	}
	if rep.SamplesPerSec <= 0 {
		t.Errorf("throughput not measured: %+v", rep)
	}
}

func TestBinarySelfTestNeedsTCP(t *testing.T) {
	srv, err := NewServer(ServerConfig{Registry: Config{Monitor: testMonitorConfig()}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Registry().Close()
	if _, err := RunBinarySelfTest(context.Background(), srv, BinarySelfTestConfig{}); err == nil {
		t.Error("binary self-test without a TCP listener succeeded")
	}
}
