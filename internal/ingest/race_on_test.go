//go:build race

package ingest

// raceEnabled reports whether the race detector is compiled in; timing
// assertions (overhead budgets) are meaningless under its ~10x slowdown.
const raceEnabled = true
