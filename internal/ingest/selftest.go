package ingest

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"agingmf/internal/detect"
	"agingmf/internal/memsim"
	transport "agingmf/internal/source"
	"agingmf/internal/workload"
)

// SelfTestConfig parameterizes RunSelfTest.
type SelfTestConfig struct {
	// Sources is the number of simulated machines (0 selects 16).
	Sources int
	// Samples is the trace length per machine (0 selects 256). A machine
	// that crashes earlier contributes its partial trace.
	Samples int
	// Conns is the number of TCP connections the sources are multiplexed
	// over (0 selects min(Sources, 64)); the wire source= field keys the
	// streams, exactly as a fleet relay would.
	Conns int
	// BatchSize groups each source's samples into batch; wire lines of
	// this many pairs (0 or 1 sends plain per-sample lines). Sources are
	// still interleaved on each connection, at batch granularity.
	BatchSize int
	// Seed makes every machine's trace deterministic (machine i derives
	// from Seed+i).
	Seed int64
	// Machine is the simulated hardware (zero value selects
	// memsim.DefaultConfig).
	Machine memsim.Config
	// Workload is the load configuration (zero value selects
	// workload.DefaultDriverConfig).
	Workload workload.DriverConfig
	// Timeout bounds the whole self-test (0 selects 2m).
	Timeout time.Duration
}

func (c SelfTestConfig) withDefaults() SelfTestConfig {
	if c.Sources <= 0 {
		c.Sources = 16
	}
	if c.Samples <= 0 {
		c.Samples = 256
	}
	if c.Conns <= 0 {
		c.Conns = c.Sources
		if c.Conns > 64 {
			c.Conns = 64
		}
	}
	if c.Conns > c.Sources {
		c.Conns = c.Sources
	}
	if c.Machine == (memsim.Config{}) {
		c.Machine = memsim.DefaultConfig()
	}
	if c.Workload.Server == nil && c.Workload.ClientRate == 0 {
		c.Workload = workload.DefaultDriverConfig()
	}
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Minute
	}
	return c
}

// SelfTestReport is the outcome of one self-test.
type SelfTestReport struct {
	// Sources and SamplesSent describe the generated load.
	Sources     int
	SamplesSent int
	// Accepted and Dropped are the registry's accounting after the load;
	// a passing self-test has Accepted == SamplesSent and Dropped == 0.
	Accepted uint64
	Dropped  uint64
	// ParityMismatches lists sources whose daemon-side detector state
	// differs from a single-process detector set fed the same trace —
	// always empty unless the sharding is broken. Entries are "id" when
	// the whole snapshot diverged and "id/detector" when a specific
	// detector's state did.
	ParityMismatches []string
	// Jumps and Alerts summarize what the fleet detected.
	Jumps  int64
	Alerts uint64
	// RecorderFailures lists sources whose flight recorder disagrees with
	// the wire trace (empty recorder, or a tail that does not match the
	// last samples sent). Only populated when the registry runs with
	// FlightRecorderDepth > 0.
	RecorderFailures []string
	// TraceSpans is the number of sampled pipeline spans retained by the
	// tracer after the load (0 when tracing is disabled).
	TraceSpans int
	// Elapsed is the wall time of the load+verify phases.
	Elapsed time.Duration
}

// Ok reports whether the self-test passed: every sample accepted, none
// dropped, every source's monitor byte-for-byte identical to its
// single-process reference, and — when the flight recorder is on — every
// recorder tail consistent with the wire trace.
func (r SelfTestReport) Ok() bool {
	return r.Accepted == uint64(r.SamplesSent) && r.Dropped == 0 &&
		len(r.ParityMismatches) == 0 && len(r.RecorderFailures) == 0
}

// selfTestSourceID names simulated machine i on the wire.
func selfTestSourceID(i int) string { return fmt.Sprintf("selftest-%04d", i) }

// RunSelfTest drives cfg.Sources simulated machines (internal/memsim
// under an internal/workload driver) through the server's real TCP
// socket, multiplexed over cfg.Conns connections, then verifies the
// daemon end-to-end:
//
//   - every sample was accepted, none dropped (backpressure, not loss);
//   - each source's detector-set state is byte-for-byte identical to a
//     single-process detect.MonitorSet (same suite) fed the same trace,
//     detector by detector.
//
// The server must be started with a TCP listener and must not be shut
// down underneath the test. RunSelfTest returns an error only for
// plumbing failures (dial, config); a detected discrepancy is reported
// in SelfTestReport, not as an error.
func RunSelfTest(ctx context.Context, srv *Server, cfg SelfTestConfig) (SelfTestReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg = cfg.withDefaults()
	addr := srv.TCPAddr()
	if addr == nil {
		return SelfTestReport{}, fmt.Errorf("ingest: self-test needs a TCP listener")
	}
	ctx, cancel := context.WithTimeout(ctx, cfg.Timeout)
	defer cancel()
	start := time.Now()

	// Generate every machine's trace up front: the same deterministic
	// traces feed both the wire and the single-process reference monitors.
	traces := make([][][2]float64, cfg.Sources)
	total := 0
	for i := range traces {
		tr, err := selfTestTrace(cfg, i)
		if err != nil {
			return SelfTestReport{}, err
		}
		traces[i] = tr
		total += len(tr)
	}

	rep := SelfTestReport{Sources: cfg.Sources, SamplesSent: total}
	reg := srv.Registry()
	base := reg.Accepted() // the server may have served traffic already

	// Partition sources round-robin over the connections; each connection
	// interleaves its sources sample-by-sample, the worst case for
	// cross-source isolation.
	var wg sync.WaitGroup
	errc := make(chan error, cfg.Conns)
	for c := 0; c < cfg.Conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			errc <- selfTestConn(ctx, addr, cfg, traces, c)
		}(c)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		if err != nil {
			return rep, err
		}
	}

	// The samples are all written; wait for the shards to consume them.
	for reg.Accepted()-base < uint64(total) {
		if ctx.Err() != nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	rep.Accepted = reg.Accepted() - base
	rep.Dropped = reg.Dropped()
	rep.Alerts = reg.Alerts().Total()

	// Parity: replay each trace into a fresh single-process detector set
	// (the same suite the registry runs) and compare gob states
	// byte-for-byte, reporting per-detector when they diverge.
	for i, tr := range traces {
		id := selfTestSourceID(i)
		if st, ok := reg.Source(id); ok {
			rep.Jumps += st.Jumps
		}
		got, err := reg.MonitorState(id)
		if err != nil {
			rep.ParityMismatches = append(rep.ParityMismatches, id)
			continue
		}
		ref, err := detect.New(reg.Config().Detectors, reg.Config().DetectorConfig())
		if err != nil {
			return rep, fmt.Errorf("ingest: self-test reference detectors: %w", err)
		}
		for _, s := range tr {
			ref.Add(s[0], s[1])
		}
		want, err := ref.SaveState()
		if err != nil {
			return rep, fmt.Errorf("ingest: self-test reference state: %w", err)
		}
		if !bytes.Equal(got, want) {
			rep.ParityMismatches = append(rep.ParityMismatches, detectorMismatches(id, got, want)...)
		}
		// Flight-recorder consistency: the recorder's newest record must
		// be the trace's last sample, bit-for-bit (the wire format
		// round-trips float64 exactly — the same property parity rests on).
		if reg.Config().FlightRecorderDepth > 0 && len(tr) > 0 {
			recs, err := reg.FlightRecords(id)
			if err != nil || len(recs) == 0 {
				rep.RecorderFailures = append(rep.RecorderFailures, id)
				continue
			}
			tail, lastPair := recs[len(recs)-1], tr[len(tr)-1]
			if tail.Free != lastPair[0] || tail.Swap != lastPair[1] ||
				tail.Seq != uint64(len(tr)) {
				rep.RecorderFailures = append(rep.RecorderFailures, id)
			}
		}
	}
	rep.TraceSpans = len(reg.Tracer().Spans())
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// detectorMismatches attributes a set-snapshot divergence to the
// detectors whose states differ ("id/kind"), falling back to the bare id
// when the snapshots cannot be split or disagree structurally.
func detectorMismatches(id string, got, want []byte) []string {
	gk, gs, gerr := detect.DecodeStates(got)
	wk, ws, werr := detect.DecodeStates(want)
	if gerr != nil || werr != nil || len(gk) != len(wk) {
		return []string{id}
	}
	var out []string
	for i := range gk {
		if gk[i] != wk[i] {
			return []string{id}
		}
		if !bytes.Equal(gs[i], ws[i]) {
			out = append(out, id+"/"+gk[i])
		}
	}
	if len(out) == 0 {
		return []string{id} // envelope differs but contents match: still a defect
	}
	return out
}

// selfTestTrace simulates machine i and returns its (free, swap) trace.
func selfTestTrace(cfg SelfTestConfig, i int) ([][2]float64, error) {
	m, err := memsim.New(cfg.Machine, rand.New(rand.NewSource(cfg.Seed+int64(i))))
	if err != nil {
		return nil, fmt.Errorf("ingest: self-test machine %d: %w", i, err)
	}
	wcfg := cfg.Workload
	if wcfg.Server != nil {
		server := *wcfg.Server // no shared mutable state across machines
		wcfg.Server = &server
	}
	d, err := workload.NewDriver(m, wcfg, nil, rand.New(rand.NewSource(cfg.Seed+int64(i)+1e6)))
	if err != nil {
		return nil, fmt.Errorf("ingest: self-test driver %d: %w", i, err)
	}
	src := transport.NewSimFromParts(m, d, cfg.Samples, 1)
	tr := make([][2]float64, 0, cfg.Samples)
	for len(tr) < cfg.Samples {
		it, err := src.Next(context.Background())
		if err != nil {
			break // crash is the machine's natural endpoint; partial trace is fine
		}
		tr = append(tr, it.Pairs...)
		if it.Crash != memsim.CrashNone {
			break // the crash tick is the trace's last sample
		}
	}
	return tr, nil
}

// selfTestConn writes connection c's share of the sources, interleaved
// sample-by-sample over one real TCP connection.
func selfTestConn(ctx context.Context, addr net.Addr, cfg SelfTestConfig, traces [][][2]float64, c int) error {
	var d net.Dialer
	conn, err := d.DialContext(ctx, addr.Network(), addr.String())
	if err != nil {
		return fmt.Errorf("ingest: self-test dial: %w", err)
	}
	defer conn.Close()
	w := bufio.NewWriter(conn)
	mine := make([]int, 0, len(traces)/cfg.Conns+1)
	longest := 0
	for i := c; i < len(traces); i += cfg.Conns {
		mine = append(mine, i)
		if len(traces[i]) > longest {
			longest = len(traces[i])
		}
	}
	bs := cfg.BatchSize
	if bs < 1 {
		bs = 1
	}
	// Advance in BatchSize strides so sources still interleave on the
	// wire, just at batch granularity instead of sample granularity.
	for round := 0; round < longest; round += bs {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		for _, i := range mine {
			tr := traces[i]
			if round >= len(tr) {
				continue
			}
			end := round + bs
			if end > len(tr) {
				end = len(tr)
			}
			var line string
			if bs == 1 {
				line = FormatLine(Sample{
					Source: selfTestSourceID(i),
					Free:   tr[round][0],
					Swap:   tr[round][1],
				})
			} else {
				line = FormatBatch(Batch{
					Source: selfTestSourceID(i),
					Pairs:  tr[round:end],
				})
			}
			if _, err := w.WriteString(line + "\n"); err != nil {
				return fmt.Errorf("ingest: self-test write: %w", err)
			}
		}
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("ingest: self-test flush: %w", err)
	}
	return nil
}
