package control

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"agingmf/internal/obs"
	"agingmf/internal/resilience"
)

// JSONLSink drains sub into ev as "alert" events (one JSON line each,
// timestamped by the event envelope) until the subscription closes. Run
// it on its own goroutine:
//
//	go control.JSONLSink(bus.Subscribe("jsonl", 256), events)
//
// The emitted field set (and therefore the line bytes, given the event
// envelope's sorted-key order) is pinned by a golden test: alerts
// predating the control plane serialize exactly as they always have.
// The "node" field rides along only on alerts that set it.
func JSONLSink(sub *Subscription, ev *obs.Events) {
	for a := range sub.C() {
		f := obs.Fields{
			"source": a.Source, "alert": a.Kind, "detector": a.Detector,
			"counter": a.Counter, "sample": a.Sample,
			"volatility": a.Volatility, "score": a.Score,
			"from": a.From, "to": a.To, "gap_ms": a.GapMillis,
		}
		if a.Node != "" {
			f["node"] = a.Node
		}
		ev.Warn("alert", f)
	}
}

// WebhookConfig parameterizes WebhookSink.
type WebhookConfig struct {
	// URL receives one POST per alert with a JSON Alert body.
	URL string
	// Client is the HTTP client (nil selects a 10-second-timeout client).
	Client *http.Client
	// Retry bounds delivery attempts per alert; the zero value selects
	// resilience defaults (3 attempts, 10ms base backoff). Network errors
	// and 5xx responses are retried; other HTTP errors are not.
	Retry resilience.RetryConfig
	// Timeout bounds each individual delivery attempt (0 selects 5s). It
	// caps the attempt even when Client carries no timeout of its own, so
	// a black-holed endpoint costs a bounded wait per attempt instead of
	// wedging the sink.
	Timeout time.Duration
}

// WebhookSink drains sub, POSTing each alert to cfg.URL with bounded
// retries (resilience.Retry). Delivery failures are events, never
// fatal — an unreachable webhook must not affect ingestion. Run it on its
// own goroutine; it returns when the subscription closes or ctx is
// cancelled.
func WebhookSink(ctx context.Context, sub *Subscription, cfg WebhookConfig, ev *obs.Events) {
	if ctx == nil {
		ctx = context.Background()
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	retry := cfg.Retry
	if retry.Classify == nil {
		retry.Classify = resilience.IsTransient
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	for {
		select {
		case <-ctx.Done():
			return
		case a, ok := <-sub.C():
			if !ok {
				return
			}
			body, err := json.Marshal(a)
			if err != nil {
				continue // an Alert always marshals; defensive only
			}
			err = resilience.Retry(ctx, retry, func(int) error {
				actx, cancel := context.WithTimeout(ctx, timeout)
				defer cancel()
				return postAlert(actx, client, cfg.URL, body)
			})
			if err != nil {
				ev.Error("alert_webhook_failed", obs.Fields{
					"url": cfg.URL, "source": a.Source, "alert": a.Kind,
					"error": err.Error(),
				})
			}
		}
	}
}

// postAlert performs one webhook delivery attempt. Transport errors and
// 5xx responses are marked transient for the retry classifier.
func postAlert(ctx context.Context, client *http.Client, url string, body []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("webhook: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return resilience.Transient(fmt.Errorf("webhook: %w", err))
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 500 {
		return resilience.Transient(fmt.Errorf("webhook: %s", resp.Status))
	}
	if resp.StatusCode >= 400 {
		return fmt.Errorf("webhook: %s", resp.Status)
	}
	return nil
}
