// Package control is the fleet control plane: the canonical Alert type
// every layer publishes, a non-blocking subscription bus that fans
// alerts out to bounded per-consumer queues, delivery sinks (JSONL,
// webhook), and the Rejuvenator — a controller that closes the loop from
// detector verdicts to proactive restarts under a fleet cost model.
//
// Before this package, alerts existed in four incompatible shapes
// (ingest's bus struct, detect's detector-labeled events, cluster
// heartbeat state, agingmon's report lines); nothing could consume a
// verdict programmatically. The canonical Alert unifies them: detectors,
// the ingest registry, the cluster membership layer and the rejuvenation
// controller all speak it, and the legacy ingest names remain as type
// aliases so existing producers and consumers compile unchanged.
package control

// Alert kinds published on the bus.
const (
	// KindJump is a detection alarm on one counter (a Hölder-volatility
	// jump, an entropy collapse, ... — the Detector field says which).
	KindJump = "jump"
	// KindRecalibrate records a detector re-anchoring its baseline after
	// a confirmed workload shift (adaptive detector); informational.
	KindRecalibrate = "recalibrate"
	// KindPhaseChange is an aging-phase transition.
	KindPhaseChange = "phase_change"
	// KindStall means a source went silent past the stall timeout.
	KindStall = "stall"
	// KindResume means a stalled source produced a sample again.
	KindResume = "resume"

	// Cluster membership events share the bus so one subscriber sees the
	// whole fleet: detector verdicts and the topology they ride on.

	// KindNodeUp means a cluster peer (re)joined the membership.
	KindNodeUp = "node_up"
	// KindNodeDown means a cluster peer missed its heartbeat budget.
	KindNodeDown = "node_down"
	// KindMigrated means a source's monitor state moved between nodes
	// (From/To name the nodes).
	KindMigrated = "migrated"
	// KindAdopted means a dead peer's source was restored from its last
	// snapshot by a survivor (From names the dead node, To the adopter).
	KindAdopted = "adopted"

	// KindRejuvenate closes the loop: the Rejuvenator actuated a
	// proactive restart of Source (Detector carries the policy name).
	KindRejuvenate = "rejuvenate"
)

// Alert is one fleet event — the control plane's single currency. It
// carries no wall-clock timestamp of its own — alerts derive
// deterministically from the sample stream, which is what makes the
// daemon's verdicts comparable byte-for-byte with a single-process run;
// sinks that need a timestamp add their own (the JSONL sink's event
// envelope has one).
//
// Field order is load-bearing: encoding/json marshals struct fields in
// declaration order and the webhook payload is pinned byte-for-byte by
// golden tests, so new fields append at the end with omitempty.
type Alert struct {
	// Source is the machine the alert concerns (or the node, for
	// cluster membership alerts).
	Source string `json:"source"`
	// Kind is one of the Kind* constants.
	Kind string `json:"kind"`
	// Detector labels jump/recalibrate alerts with the emitting detector
	// ("holder", "entropy", "adaptive") and rejuvenate alerts with the
	// triggering policy; empty for source-level alerts (stall, resume,
	// phase_change) and cluster alerts.
	Detector string `json:"detector,omitempty"`
	// Counter attributes jump alerts to free-memory or used-swap.
	Counter string `json:"counter,omitempty"`
	// Sample is the per-source sample index the alert fired at.
	Sample int `json:"sample,omitempty"`
	// Volatility and Score describe a jump alarm.
	Volatility float64 `json:"volatility,omitempty"`
	Score      float64 `json:"score,omitempty"`
	// From and To describe a phase change or a migration/adoption
	// (node names).
	From string `json:"from,omitempty"`
	To   string `json:"to,omitempty"`
	// GapMillis is the observed silence of a stall alert.
	GapMillis int64 `json:"gap_ms,omitempty"`
	// Node is the cluster member a membership alert concerns, and the
	// arc a rejuvenate alert was staggered within. Appended after the
	// legacy fields: pre-existing alert kinds never set it, keeping
	// their wire bytes unchanged.
	Node string `json:"node,omitempty"`
}
