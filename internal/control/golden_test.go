package control

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"agingmf/internal/obs"
)

// The control-plane refactor must not move a single byte of wire
// output: the webhook payload is json.Marshal(Alert) and the JSONL sink
// line is the event envelope plus a fixed field set, both of which
// external consumers parse. These goldens pin the exact bytes for every
// pre-existing alert kind; a mismatch means the Alert struct's field
// order or tags changed, which is a compatibility break.

func TestAlertPayloadGolden(t *testing.T) {
	cases := []struct {
		name string
		a    Alert
		want string
	}{
		{
			name: "jump",
			a: Alert{Source: "m1", Kind: KindJump, Detector: "holder",
				Counter: "free_memory", Sample: 128, Volatility: 0.42, Score: 3.5},
			want: `{"source":"m1","kind":"jump","detector":"holder","counter":"free_memory","sample":128,"volatility":0.42,"score":3.5}`,
		},
		{
			name: "recalibrate",
			a: Alert{Source: "m1", Kind: KindRecalibrate, Detector: "adaptive",
				Counter: "used_swap", Sample: 64, Score: 1.25},
			want: `{"source":"m1","kind":"recalibrate","detector":"adaptive","counter":"used_swap","sample":64,"score":1.25}`,
		},
		{
			name: "phase_change",
			a:    Alert{Source: "m2", Kind: KindPhaseChange, Sample: 200, From: "healthy", To: "aging-onset"},
			want: `{"source":"m2","kind":"phase_change","sample":200,"from":"healthy","to":"aging-onset"}`,
		},
		{
			name: "stall",
			a:    Alert{Source: "m3", Kind: KindStall, GapMillis: 1500},
			want: `{"source":"m3","kind":"stall","gap_ms":1500}`,
		},
		{
			name: "resume",
			a:    Alert{Source: "m3", Kind: KindResume},
			want: `{"source":"m3","kind":"resume"}`,
		},
		{
			// New control-plane fields append strictly after the legacy
			// ones, so a legacy consumer's prefix parse still works.
			name: "migrated_with_node",
			a:    Alert{Source: "m4", Kind: KindMigrated, From: "node-a", To: "node-b", Node: "node-b"},
			want: `{"source":"m4","kind":"migrated","from":"node-a","to":"node-b","node":"node-b"}`,
		},
	}
	for _, tc := range cases {
		got, err := json.Marshal(tc.a)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if string(got) != tc.want {
			t.Errorf("%s payload changed:\n got  %s\n want %s", tc.name, got, tc.want)
		}
	}
}

func TestJSONLSinkGolden(t *testing.T) {
	var buf bytes.Buffer
	clock := func() time.Time {
		return time.Date(2026, 1, 2, 3, 4, 5, 6, time.UTC)
	}
	ev := obs.NewEvents(&buf, obs.LevelInfo).WithClock(clock)

	b := NewBus(4)
	sub := b.Subscribe("jsonl", 4)
	b.Publish(Alert{Source: "m1", Kind: KindJump, Detector: "holder",
		Counter: "free_memory", Sample: 128, Volatility: 0.42, Score: 3.5})
	b.Publish(Alert{Source: "m2", Kind: KindPhaseChange, Sample: 200, From: "healthy", To: "aging-onset"})
	b.Close()
	JSONLSink(sub, ev) // runs to completion: the bus is closed

	want := `{"ts":"2026-01-02T03:04:05.000000006Z","level":"warn","event":"alert","alert":"jump","counter":"free_memory","detector":"holder","from":"","gap_ms":0,"sample":128,"score":3.5,"source":"m1","to":"","volatility":0.42}
{"ts":"2026-01-02T03:04:05.000000006Z","level":"warn","event":"alert","alert":"phase_change","counter":"","detector":"","from":"healthy","gap_ms":0,"sample":200,"score":0,"source":"m2","to":"aging-onset","volatility":0}
`
	if got := buf.String(); got != want {
		t.Errorf("JSONL sink bytes changed:\n got  %q\n want %q", got, want)
	}
}
