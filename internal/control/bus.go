package control

import (
	"sync"
	"sync/atomic"

	"agingmf/internal/obs"
)

// Subscription is one consumer's bounded alert queue. Alerts are
// delivered on C until Cancel (or the bus closing) closes it. A consumer
// that falls behind loses alerts — counted by Dropped and the
// agingmf_alert_drops_total{sink} metric — rather than ever
// backpressuring the publisher's hot path.
type Subscription struct {
	name    string
	ch      chan Alert
	bus     *Bus
	dropped atomic.Uint64
	drops   []*obs.Counter
	once    sync.Once
}

// C returns the delivery channel.
func (s *Subscription) C() <-chan Alert { return s.ch }

// Name returns the sink name given at Subscribe.
func (s *Subscription) Name() string { return s.name }

// Dropped returns how many alerts this subscriber lost to a full queue.
func (s *Subscription) Dropped() uint64 { return s.dropped.Load() }

// Cancel unsubscribes and closes the delivery channel. Idempotent; safe
// to race the bus closing.
func (s *Subscription) Cancel() {
	s.bus.unsubscribe(s)
}

// Bus fans alerts out to subscribers and keeps a bounded ring of the
// most recent alerts for the HTTP API. Publishing never blocks.
type Bus struct {
	dropVecs []*obs.CounterVec

	mu     sync.Mutex
	subs   map[*Subscription]struct{}
	ring   []Alert
	next   int
	filled bool
	total  uint64
	closed bool
}

// NewBus builds a bus with the given ring capacity. Each dropVec is a
// per-sink drop-counter family: every Subscribe registers a child
// labeled with the sink name on each of them, so one bus can feed both a
// control-plane metric and a legacy-named one. Nil vecs are allowed and
// cost nothing (the obs instruments are nil-safe).
func NewBus(ringSize int, dropVecs ...*obs.CounterVec) *Bus {
	return &Bus{
		dropVecs: dropVecs,
		subs:     make(map[*Subscription]struct{}),
		ring:     make([]Alert, ringSize),
	}
}

// Subscribe registers a consumer with a queue of buf alerts (minimum 1).
// The name labels this sink's drop metrics.
func (b *Bus) Subscribe(name string, buf int) *Subscription {
	if buf < 1 {
		buf = 1
	}
	s := &Subscription{
		name: name,
		ch:   make(chan Alert, buf),
		bus:  b,
	}
	for _, v := range b.dropVecs {
		s.drops = append(s.drops, v.With(name))
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		close(s.ch)
		return s
	}
	b.subs[s] = struct{}{}
	return s
}

// unsubscribe removes s and closes its channel (once).
func (b *Bus) unsubscribe(s *Subscription) {
	b.mu.Lock()
	_, live := b.subs[s]
	delete(b.subs, s)
	b.mu.Unlock()
	if live {
		s.once.Do(func() { close(s.ch) })
	}
}

// Publish records a in the ring and offers it to every subscriber,
// dropping (and counting) on full queues.
func (b *Bus) Publish(a Alert) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.total++
	if len(b.ring) > 0 {
		b.ring[b.next] = a
		b.next++
		if b.next == len(b.ring) {
			b.next = 0
			b.filled = true
		}
	}
	for s := range b.subs {
		select {
		case s.ch <- a:
		default:
			s.dropped.Add(1)
			for _, c := range s.drops {
				c.Inc()
			}
		}
	}
}

// Total returns how many alerts have been published.
func (b *Bus) Total() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.total
}

// Recent returns up to n of the most recent alerts, oldest first. n <= 0
// returns the whole retained ring.
func (b *Bus) Recent(n int) []Alert {
	b.mu.Lock()
	defer b.mu.Unlock()
	size := b.next
	if b.filled {
		size = len(b.ring)
	}
	if n <= 0 || n > size {
		n = size
	}
	out := make([]Alert, 0, n)
	// Walk the ring from oldest to newest, keeping the last n.
	start := 0
	if b.filled {
		start = b.next
	}
	for i := 0; i < size; i++ {
		out = append(out, b.ring[(start+i)%len(b.ring)])
	}
	return out[len(out)-n:]
}

// Close drops every subscriber (closing their channels) and stops
// accepting publishes. Idempotent.
func (b *Bus) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	subs := make([]*Subscription, 0, len(b.subs))
	for s := range b.subs {
		subs = append(subs, s)
	}
	b.subs = make(map[*Subscription]struct{})
	b.mu.Unlock()
	for _, s := range subs {
		s.once.Do(func() { close(s.ch) })
	}
}
