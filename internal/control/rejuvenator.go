package control

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"agingmf/internal/aging"
	"agingmf/internal/memsim"
	"agingmf/internal/obs"
	"agingmf/internal/rejuv"
)

// ErrBadPolicy reports an unparsable -rejuv-policy specification.
var ErrBadPolicy = errors.New("control: bad rejuvenation policy")

// Actuator performs the proactive restart the Rejuvenator decides on.
// memsim.Machine implements it (a rejuvenation is a Reboot); production
// deployments plug in whatever restarts the real machine; DryRunActuator
// only records the decision.
type Actuator interface {
	Rejuvenate(source string) error
}

// ActuatorFunc adapts a function to the Actuator interface — the fleet
// experiments use it to route each source to its own machine.
type ActuatorFunc func(source string) error

// Rejuvenate implements Actuator.
func (f ActuatorFunc) Rejuvenate(source string) error { return f(source) }

// DryRunActuator records rejuvenation decisions as events without
// touching anything — the default actuator of a daemon whose sources
// are real machines it cannot reboot. The decision stream is the
// product: operators watch the "rejuvenate_dry_run" events (or the
// /api/rejuv counters) to see what the policy would have done.
type DryRunActuator struct {
	// Events receives one "rejuvenate_dry_run" event per decision
	// (nil disables).
	Events *obs.Events

	mu sync.Mutex
	n  uint64
}

// Rejuvenate implements Actuator.
func (d *DryRunActuator) Rejuvenate(source string) error {
	d.mu.Lock()
	d.n++
	n := d.n
	d.mu.Unlock()
	d.Events.Info("rejuvenate_dry_run", obs.Fields{"source": source, "total": n})
	return nil
}

// Count returns how many decisions have been recorded.
func (d *DryRunActuator) Count() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.n
}

// ParsePhase inverts aging.Phase.String (the form alerts carry).
func ParsePhase(s string) (aging.Phase, bool) {
	switch s {
	case "healthy":
		return aging.PhaseHealthy, true
	case "aging-onset":
		return aging.PhaseAgingOnset, true
	case "crash-imminent":
		return aging.PhaseCrashImminent, true
	}
	return 0, false
}

// PhasePolicy is a rejuv.Policy driven by the fleet's own detector
// verdicts instead of a private monitor: the Rejuvenator feeds it the
// phase carried by phase-change alerts, and it requests rejuvenation
// once the observed phase reaches Trigger and uptime passes MinUptime.
// This realizes the paper's prediction-based trigger without running a
// second detection pipeline inside the controller.
type PhasePolicy struct {
	// Trigger is the aging phase that requests rejuvenation.
	Trigger aging.Phase
	// MinUptime suppresses triggers right after a restart, in samples.
	MinUptime int

	phase aging.Phase
}

// Name implements rejuv.Policy.
func (p *PhasePolicy) Name() string { return fmt.Sprintf("phase(%v)", p.Trigger) }

// Observe implements rejuv.Policy; verdicts arrive via ObservePhase.
func (p *PhasePolicy) Observe(memsim.Counters) {}

// ObservePhase records the source's detector-reported aging phase.
func (p *PhasePolicy) ObservePhase(ph aging.Phase) { p.phase = ph }

// ShouldRejuvenate implements rejuv.Policy.
func (p *PhasePolicy) ShouldRejuvenate(upTicks int) bool {
	return upTicks >= p.MinUptime && p.phase >= p.Trigger
}

// Reset implements rejuv.Policy.
func (p *PhasePolicy) Reset() error {
	p.phase = aging.PhaseHealthy
	return nil
}

// phaseObserver is the optional policy capability the Rejuvenator feeds
// phase-change alerts through.
type phaseObserver interface {
	ObservePhase(aging.Phase)
}

// PolicyFactory builds one source's policy instance. The Rejuvenator
// creates a policy per source the first time it sees an alert for it.
type PolicyFactory func(source string) rejuv.Policy

// ParsePolicy parses a -rejuv-policy specification into a factory:
//
//	none                          no controller
//	periodic:<samples>            time-based (Huang et al.): rejuvenate
//	                              every N samples of uptime
//	phase:<phase>[:<min-uptime>]  prediction-based: rejuvenate when the
//	                              detector suite reports <phase>
//	                              ("aging-onset" or "crash-imminent"),
//	                              at least <min-uptime> samples after
//	                              the previous restart (default 256)
//
// The returned factory is nil (with no error) for "none"/"".
func ParsePolicy(spec string) (PolicyFactory, error) {
	kind, arg := spec, ""
	if i := indexByte(spec, ':'); i >= 0 {
		kind, arg = spec[:i], spec[i+1:]
	}
	switch kind {
	case "", "none":
		return nil, nil
	case "periodic":
		var n int
		if _, err := fmt.Sscanf(arg, "%d", &n); err != nil || n < 1 {
			return nil, fmt.Errorf("%w: periodic interval %q (want periodic:<samples>)", ErrBadPolicy, arg)
		}
		return func(string) rejuv.Policy { return &rejuv.PeriodicPolicy{Interval: n} }, nil
	case "phase":
		min := 256
		phaseStr := arg
		if i := indexByte(arg, ':'); i >= 0 {
			phaseStr = arg[:i]
			if _, err := fmt.Sscanf(arg[i+1:], "%d", &min); err != nil || min < 0 {
				return nil, fmt.Errorf("%w: phase min-uptime %q", ErrBadPolicy, arg[i+1:])
			}
		}
		trigger, ok := ParsePhase(phaseStr)
		if !ok || trigger == aging.PhaseHealthy {
			return nil, fmt.Errorf("%w: trigger phase %q (want aging-onset or crash-imminent)", ErrBadPolicy, phaseStr)
		}
		return func(string) rejuv.Policy {
			p := &PhasePolicy{Trigger: trigger, MinUptime: min}
			_ = p.Reset()
			return p
		}, nil
	}
	return nil, fmt.Errorf("%w: %q (want none, periodic:<samples> or phase:<phase>)", ErrBadPolicy, spec)
}

// indexByte avoids importing strings for one call site.
func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

// RejuvenatorConfig parameterizes a Rejuvenator.
type RejuvenatorConfig struct {
	// Bus is the alert stream the controller subscribes to (required for
	// Start; Handle can be driven directly without it).
	Bus *Bus
	// Actuator performs the restarts. Required.
	Actuator Actuator
	// Policy builds each source's decision policy. Required.
	Policy PolicyFactory
	// Cost prices decisions for the status report and the budget gate
	// (zero value selects rejuv.DefaultCostModel).
	Cost rejuv.CostModel
	// Budget caps the planned cost (PerRejuvenation each) the controller
	// may spend per BudgetWindow; further decisions are deferred until
	// the window rolls. 0 = unlimited.
	Budget float64
	// BudgetWindow is the rolling budget horizon (0 selects one hour).
	BudgetWindow time.Duration
	// Group maps a source to its anti-affinity arc — sources sharing an
	// arc never rejuvenate within StaggerGap of each other, so one
	// detector storm cannot take a whole cluster arc down at once. Wire
	// it to the cluster ring's Owner to group by co-location. Nil puts
	// every source in its own arc (no staggering).
	Group func(source string) string
	// StaggerGap is the minimum spacing between rejuvenations inside one
	// arc (0 selects one minute).
	StaggerGap time.Duration
	// QueueSize bounds the bus subscription (0 selects 256).
	QueueSize int
	// Events receives decision/defer events. Nil disables.
	Events *obs.Events
	// Obs receives the controller metric families. Nil disables.
	Obs *obs.Registry
	// Now is the staggering/budget clock (tests and deterministic
	// experiments inject their own; nil selects time.Now).
	Now func() time.Time
}

// rejuvMetrics is the controller's instrument set (nil-safe zero value).
type rejuvMetrics struct {
	rejuvenations *obs.Counter
	deferred      *obs.CounterVec // by reason
	failures      *obs.Counter
}

func newRejuvMetrics(reg *obs.Registry) rejuvMetrics {
	return rejuvMetrics{
		rejuvenations: reg.Counter("agingmf_rejuvenations_total",
			"Proactive restarts actuated by the rejuvenation controller."),
		deferred: reg.CounterVec("agingmf_rejuvenations_deferred_total",
			"Rejuvenation decisions deferred, by reason (stagger, budget).", "reason"),
		failures: reg.Counter("agingmf_rejuvenation_failures_total",
			"Actuator errors during proactive restarts."),
	}
}

// rejuvSource is one source's controller state.
type rejuvSource struct {
	policy rejuv.Policy
	// lastSample is the newest per-source sample index seen on any alert.
	lastSample int
	// rebased is lastSample at the previous rejuvenation: uptime in
	// samples is lastSample - rebased.
	rebased  int
	count    int
	deferred int
	phase    aging.Phase
}

// rejuvGroup is one anti-affinity arc's state.
type rejuvGroup struct {
	last    time.Time
	haveRun bool
}

// Rejuvenator closes the loop from detector verdicts to proactive
// restarts: it consumes the alert bus, drives one rejuv.Policy per
// source, and actuates restarts through an Actuator under a fleet cost
// budget with per-arc anti-affinity staggering. Decisions are
// deterministic given the alert stream and the injected clock, which is
// what lets the chaos campaign (experiment E14) and the snapshot tests
// replay them exactly.
type Rejuvenator struct {
	cfg  RejuvenatorConfig
	met  rejuvMetrics
	cost rejuv.CostModel

	mu      sync.Mutex
	sources map[string]*rejuvSource
	groups  map[string]*rejuvGroup
	spent   []time.Time // budget window: one entry per actuation
	total   int
	fails   int

	sub  *Subscription
	done chan struct{}
}

// NewRejuvenator validates the configuration. Call Start to drive it
// from the bus, or Handle directly for synchronous (deterministic) use.
func NewRejuvenator(cfg RejuvenatorConfig) (*Rejuvenator, error) {
	if cfg.Actuator == nil {
		return nil, errors.New("control: RejuvenatorConfig.Actuator required")
	}
	if cfg.Policy == nil {
		return nil, errors.New("control: RejuvenatorConfig.Policy required")
	}
	if cfg.Cost == (rejuv.CostModel{}) {
		cfg.Cost = rejuv.DefaultCostModel()
	}
	if cfg.BudgetWindow <= 0 {
		cfg.BudgetWindow = time.Hour
	}
	if cfg.StaggerGap <= 0 {
		cfg.StaggerGap = time.Minute
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 256
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Rejuvenator{
		cfg:     cfg,
		met:     newRejuvMetrics(cfg.Obs),
		cost:    cfg.Cost,
		sources: make(map[string]*rejuvSource),
		groups:  make(map[string]*rejuvGroup),
	}, nil
}

// Start subscribes to the bus and drains it on a goroutine until the
// bus closes or Stop is called.
func (r *Rejuvenator) Start() error {
	if r.cfg.Bus == nil {
		return errors.New("control: Rejuvenator.Start without a Bus")
	}
	r.sub = r.cfg.Bus.Subscribe("rejuvenator", r.cfg.QueueSize)
	r.done = make(chan struct{})
	go func() {
		defer close(r.done)
		for a := range r.sub.C() {
			r.Handle(a)
		}
	}()
	return nil
}

// Stop cancels the bus subscription and waits for the drain goroutine.
func (r *Rejuvenator) Stop() {
	if r.sub == nil {
		return
	}
	r.sub.Cancel()
	<-r.done
}

// Handle feeds one alert through the decision pipeline. Safe for
// concurrent use; the fleet experiments call it synchronously so that
// actuations happen on the goroutine driving the machines.
func (r *Rejuvenator) Handle(a Alert) {
	switch a.Kind {
	case KindNodeUp, KindNodeDown, KindRejuvenate, KindMigrated, KindAdopted:
		// Topology alerts carry no per-source aging signal. (Migrations
		// preserve monitor state, so the decision state stays valid too.)
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.sources[a.Source]
	if !ok {
		st = &rejuvSource{policy: r.cfg.Policy(a.Source), phase: aging.PhaseHealthy}
		r.sources[a.Source] = st
	}
	if a.Sample > st.lastSample {
		st.lastSample = a.Sample
	}
	if a.Kind == KindPhaseChange {
		if ph, ok := ParsePhase(a.To); ok {
			st.phase = ph
			if po, ok := st.policy.(phaseObserver); ok {
				po.ObservePhase(ph)
			}
		}
	}
	up := st.lastSample - st.rebased
	if !st.policy.ShouldRejuvenate(up) {
		return
	}

	now := r.cfg.Now()
	group := a.Source
	if r.cfg.Group != nil {
		group = r.cfg.Group(a.Source)
	}
	g, ok := r.groups[group]
	if !ok {
		g = &rejuvGroup{}
		r.groups[group] = g
	}
	// Anti-affinity: one restart per arc per StaggerGap. The deferred
	// source retries on its next alert; the policy keeps requesting.
	if g.haveRun && now.Sub(g.last) < r.cfg.StaggerGap {
		st.deferred++
		r.met.deferred.With("stagger").Inc()
		r.cfg.Events.Info("rejuvenate_deferred", obs.Fields{
			"source": a.Source, "group": group, "reason": "stagger",
		})
		return
	}
	// Fleet budget: planned spend (the fixed per-restart cost) within
	// the rolling window must stay under Budget.
	if r.cfg.Budget > 0 {
		r.rollBudgetLocked(now)
		if float64(len(r.spent)+1)*r.cost.PerRejuvenation > r.cfg.Budget {
			st.deferred++
			r.met.deferred.With("budget").Inc()
			r.cfg.Events.Info("rejuvenate_deferred", obs.Fields{
				"source": a.Source, "group": group, "reason": "budget",
			})
			return
		}
	}

	if err := r.cfg.Actuator.Rejuvenate(a.Source); err != nil {
		r.fails++
		r.met.failures.Inc()
		r.cfg.Events.Error("rejuvenate_failed", obs.Fields{
			"source": a.Source, "error": err.Error(),
		})
		return
	}
	st.count++
	st.rebased = st.lastSample
	st.phase = aging.PhaseHealthy
	_ = st.policy.Reset()
	g.last, g.haveRun = now, true
	r.spent = append(r.spent, now)
	r.total++
	r.met.rejuvenations.Inc()
	r.cfg.Events.Warn("rejuvenate", obs.Fields{
		"source": a.Source, "group": group, "policy": st.policy.Name(),
		"sample": st.lastSample, "uptime_samples": up, "total": r.total,
	})
	// Close the loop on the bus itself: the actuation is a fleet event
	// other subscribers (sinks, dashboards) should see.
	if r.cfg.Bus != nil {
		r.cfg.Bus.Publish(Alert{
			Source:   a.Source,
			Kind:     KindRejuvenate,
			Detector: st.policy.Name(),
			Sample:   st.lastSample,
			Node:     group,
		})
	}
}

// rollBudgetLocked drops spend entries older than the budget window.
func (r *Rejuvenator) rollBudgetLocked(now time.Time) {
	cut := now.Add(-r.cfg.BudgetWindow)
	i := 0
	for i < len(r.spent) && !r.spent[i].After(cut) {
		i++
	}
	r.spent = r.spent[i:]
}

// RejuvSourceStatus is one source's controller state for the API.
type RejuvSourceStatus struct {
	Source        string `json:"source"`
	Policy        string `json:"policy"`
	Phase         string `json:"phase"`
	Rejuvenations int    `json:"rejuvenations"`
	Deferred      int    `json:"deferred"`
	UptimeSamples int    `json:"uptime_samples"`
}

// RejuvStatus is the controller's /api/rejuv document.
type RejuvStatus struct {
	Rejuvenations int                 `json:"rejuvenations"`
	Failures      int                 `json:"failures"`
	BudgetSpent   float64             `json:"budget_spent"`
	Budget        float64             `json:"budget,omitempty"`
	Sources       []RejuvSourceStatus `json:"sources"`
}

// Status reports the controller state, sources sorted by id.
func (r *Rejuvenator) Status() RejuvStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rollBudgetLocked(r.cfg.Now())
	st := RejuvStatus{
		Rejuvenations: r.total,
		Failures:      r.fails,
		BudgetSpent:   float64(len(r.spent)) * r.cost.PerRejuvenation,
		Budget:        r.cfg.Budget,
	}
	for id, s := range r.sources {
		st.Sources = append(st.Sources, RejuvSourceStatus{
			Source:        id,
			Policy:        s.policy.Name(),
			Phase:         s.phase.String(),
			Rejuvenations: s.count,
			Deferred:      s.deferred,
			UptimeSamples: s.lastSample - s.rebased,
		})
	}
	sort.Slice(st.Sources, func(i, j int) bool { return st.Sources[i].Source < st.Sources[j].Source })
	return st
}

// Total returns how many restarts have been actuated.
func (r *Rejuvenator) Total() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// rejuvStateVersion versions the controller's snapshot blob.
const rejuvStateVersion = 1

// rejuvSourceState is one source's persisted decision state.
type rejuvSourceState struct {
	LastSample int
	Rebased    int
	Count      int
	Deferred   int
	Phase      int
}

// rejuvState is the gob snapshot envelope. It deliberately lives in its
// own file beside the ingest snapshot, never inside it: the ingest gob
// envelope is pinned by golden fixtures and must not change shape.
type rejuvState struct {
	Version int
	Total   int
	Fails   int
	Sources map[string]rejuvSourceState
	Groups  map[string]time.Time
	Spent   []time.Time
}

// SaveState serializes the controller's decision state (counters,
// per-source uptime bases and observed phases, arc stagger clocks,
// budget window) for restart-restore.
func (r *Rejuvenator) SaveState() ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := rejuvState{
		Version: rejuvStateVersion,
		Total:   r.total,
		Fails:   r.fails,
		Sources: make(map[string]rejuvSourceState, len(r.sources)),
		Groups:  make(map[string]time.Time, len(r.groups)),
		Spent:   append([]time.Time(nil), r.spent...),
	}
	for id, s := range r.sources {
		st.Sources[id] = rejuvSourceState{
			LastSample: s.lastSample, Rebased: s.rebased,
			Count: s.count, Deferred: s.deferred, Phase: int(s.phase),
		}
	}
	for id, g := range r.groups {
		if g.haveRun {
			st.Groups[id] = g.last
		}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("control: save rejuvenator state: %w", err)
	}
	return buf.Bytes(), nil
}

// RestoreState resumes a SaveState blob: policies are rebuilt from the
// factory and re-observe their persisted phase, so a restarted daemon's
// controller picks up exactly where it left off.
func (r *Rejuvenator) RestoreState(blob []byte) error {
	var st rejuvState
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&st); err != nil {
		return fmt.Errorf("control: restore rejuvenator state: %w", err)
	}
	if st.Version != rejuvStateVersion {
		return fmt.Errorf("control: restore rejuvenator state: unknown version %d", st.Version)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total, r.fails = st.Total, st.Fails
	r.sources = make(map[string]*rejuvSource, len(st.Sources))
	for id, s := range st.Sources {
		src := &rejuvSource{
			policy:     r.cfg.Policy(id),
			lastSample: s.LastSample,
			rebased:    s.Rebased,
			count:      s.Count,
			deferred:   s.Deferred,
			phase:      aging.Phase(s.Phase),
		}
		if po, ok := src.policy.(phaseObserver); ok {
			po.ObservePhase(src.phase)
		}
		r.sources[id] = src
	}
	r.groups = make(map[string]*rejuvGroup, len(st.Groups))
	for id, last := range st.Groups {
		r.groups[id] = &rejuvGroup{last: last, haveRun: true}
	}
	r.spent = append(r.spent[:0], st.Spent...)
	return nil
}
