package control

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"agingmf/internal/aging"
	"agingmf/internal/memsim"
	"agingmf/internal/rejuv"
)

// recorder is a test actuator capturing each restart with its clock time.
type recorder struct {
	calls []string
	times []time.Time
	now   *time.Time
	err   error
}

func (rec *recorder) Rejuvenate(source string) error {
	if rec.err != nil {
		return rec.err
	}
	rec.calls = append(rec.calls, source)
	if rec.now != nil {
		rec.times = append(rec.times, *rec.now)
	}
	return nil
}

// tickClock returns a controllable clock and its current-time cell.
func tickClock() (func() time.Time, *time.Time) {
	t := time.Unix(1000, 0)
	return func() time.Time { return t }, &t
}

func phaseFactory(trigger aging.Phase, minUp int) PolicyFactory {
	return func(string) rejuv.Policy {
		p := &PhasePolicy{Trigger: trigger, MinUptime: minUp}
		_ = p.Reset()
		return p
	}
}

func TestRejuvenatorPhaseTriggeredRestart(t *testing.T) {
	now, cell := tickClock()
	rec := &recorder{}
	r, err := NewRejuvenator(RejuvenatorConfig{
		Actuator: rec,
		Policy:   phaseFactory(aging.PhaseAgingOnset, 10),
		Now:      now,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Healthy phase: no trigger however many samples pass.
	r.Handle(Alert{Source: "m1", Kind: KindJump, Sample: 50})
	if len(rec.calls) != 0 {
		t.Fatalf("rejuvenated while healthy: %v", rec.calls)
	}
	// Phase crosses the trigger but below MinUptime: suppressed.
	r.Handle(Alert{Source: "m2", Kind: KindPhaseChange, Sample: 5, From: "healthy", To: "aging-onset"})
	if len(rec.calls) != 0 {
		t.Fatalf("rejuvenated below MinUptime: %v", rec.calls)
	}
	// m1 crosses with plenty of uptime: one restart, then re-arms.
	r.Handle(Alert{Source: "m1", Kind: KindPhaseChange, Sample: 60, From: "healthy", To: "aging-onset"})
	if len(rec.calls) != 1 || rec.calls[0] != "m1" {
		t.Fatalf("calls = %v, want [m1]", rec.calls)
	}
	// After the restart the policy re-armed: further alerts without a new
	// phase transition do not retrigger.
	r.Handle(Alert{Source: "m1", Kind: KindJump, Sample: 80})
	if len(rec.calls) != 1 {
		t.Fatalf("retriggered without a new phase transition: %v", rec.calls)
	}
	// A fresh transition after enough post-restart uptime (and past the
	// per-group stagger cooldown) does.
	*cell = cell.Add(2 * time.Minute)
	r.Handle(Alert{Source: "m1", Kind: KindPhaseChange, Sample: 75, From: "healthy", To: "crash-imminent"})
	if len(rec.calls) != 2 {
		t.Fatalf("calls = %v, want a second m1 restart", rec.calls)
	}
	st := r.Status()
	if st.Rejuvenations != 2 || len(st.Sources) != 2 {
		t.Fatalf("status = %+v, want 2 rejuvenations over 2 sources", st)
	}
}

func TestRejuvenatorAntiAffinityStagger(t *testing.T) {
	now, cell := tickClock()
	rec := &recorder{now: cell}
	arc := func(source string) string { return "arc-0" } // all co-located
	r, err := NewRejuvenator(RejuvenatorConfig{
		Actuator:   rec,
		Policy:     phaseFactory(aging.PhaseAgingOnset, 0),
		Group:      arc,
		StaggerGap: 10 * time.Second,
		Now:        now,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Handle(Alert{Source: "m1", Kind: KindPhaseChange, Sample: 20, To: "aging-onset"})
	r.Handle(Alert{Source: "m2", Kind: KindPhaseChange, Sample: 20, To: "aging-onset"})
	if len(rec.calls) != 1 {
		t.Fatalf("calls = %v, want only m1 (m2 staggered)", rec.calls)
	}
	// m2 retries inside the gap: still deferred.
	*cell = cell.Add(5 * time.Second)
	r.Handle(Alert{Source: "m2", Kind: KindJump, Sample: 25})
	if len(rec.calls) != 1 {
		t.Fatalf("m2 ran inside the stagger gap: %v", rec.calls)
	}
	// Past the gap it runs.
	*cell = cell.Add(6 * time.Second)
	r.Handle(Alert{Source: "m2", Kind: KindJump, Sample: 30})
	if len(rec.calls) != 2 || rec.calls[1] != "m2" {
		t.Fatalf("calls = %v, want [m1 m2]", rec.calls)
	}
	if gap := rec.times[1].Sub(rec.times[0]); gap < 10*time.Second {
		t.Fatalf("arc restarts %v apart, want >= stagger gap", gap)
	}
	st := r.Status()
	var m2 RejuvSourceStatus
	for _, s := range st.Sources {
		if s.Source == "m2" {
			m2 = s
		}
	}
	if m2.Deferred != 2 {
		t.Fatalf("m2 deferred %d times, want 2", m2.Deferred)
	}
}

func TestRejuvenatorBudgetGate(t *testing.T) {
	now, cell := tickClock()
	rec := &recorder{}
	r, err := NewRejuvenator(RejuvenatorConfig{
		Actuator:     rec,
		Policy:       phaseFactory(aging.PhaseAgingOnset, 0),
		Cost:         rejuv.CostModel{PerRejuvenation: 30},
		Budget:       60, // two restarts per window
		BudgetWindow: time.Minute,
		StaggerGap:   time.Nanosecond,
		Now:          now,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, src := range []string{"a", "b", "c"} {
		*cell = cell.Add(time.Second)
		r.Handle(Alert{Source: src, Kind: KindPhaseChange, Sample: 10 + i, To: "aging-onset"})
	}
	if len(rec.calls) != 2 {
		t.Fatalf("calls = %v, want 2 (third over budget)", rec.calls)
	}
	st := r.Status()
	if st.BudgetSpent != 60 {
		t.Fatalf("budget spent %v, want 60", st.BudgetSpent)
	}
	// The window rolls: c's next alert fits again.
	*cell = cell.Add(2 * time.Minute)
	r.Handle(Alert{Source: "c", Kind: KindJump, Sample: 20})
	if len(rec.calls) != 3 || rec.calls[2] != "c" {
		t.Fatalf("calls = %v, want c after the budget window rolled", rec.calls)
	}
}

func TestRejuvenatorActuatorFailureCounted(t *testing.T) {
	r, err := NewRejuvenator(RejuvenatorConfig{
		Actuator: &recorder{err: errors.New("ssh unreachable")},
		Policy:   phaseFactory(aging.PhaseAgingOnset, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Handle(Alert{Source: "m1", Kind: KindPhaseChange, Sample: 10, To: "aging-onset"})
	if st := r.Status(); st.Failures != 1 || st.Rejuvenations != 0 {
		t.Fatalf("status = %+v, want 1 failure, 0 rejuvenations", st)
	}
}

func TestRejuvenatorBusLoop(t *testing.T) {
	bus := NewBus(16)
	rec := make(chan string, 4)
	r, err := NewRejuvenator(RejuvenatorConfig{
		Bus:      bus,
		Actuator: ActuatorFunc(func(s string) error { rec <- s; return nil }),
		Policy:   phaseFactory(aging.PhaseAgingOnset, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	sink := bus.Subscribe("witness", 16)
	bus.Publish(Alert{Source: "m1", Kind: KindPhaseChange, Sample: 40, To: "aging-onset"})
	select {
	case got := <-rec:
		if got != "m1" {
			t.Fatalf("actuated %q, want m1", got)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("no actuation from the bus loop")
	}
	// The actuation itself is published back on the bus.
	deadline := time.After(3 * time.Second)
	for {
		select {
		case a := <-sink.C():
			if a.Kind == KindRejuvenate && a.Source == "m1" {
				r.Stop()
				bus.Close()
				return
			}
		case <-deadline:
			t.Fatal("no rejuvenate alert published back on the bus")
		}
	}
}

func TestRejuvenatorSaveRestoreState(t *testing.T) {
	now, cell := tickClock()
	factory := phaseFactory(aging.PhaseAgingOnset, 0)
	mk := func() *Rejuvenator {
		r, err := NewRejuvenator(RejuvenatorConfig{
			Actuator:   &recorder{},
			Policy:     factory,
			Group:      func(string) string { return "arc" },
			StaggerGap: 10 * time.Second,
			Now:        now,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	r1 := mk()
	r1.Handle(Alert{Source: "m1", Kind: KindPhaseChange, Sample: 30, To: "aging-onset"})
	r1.Handle(Alert{Source: "m2", Kind: KindPhaseChange, Sample: 31, To: "aging-onset"}) // staggered
	blob, err := r1.SaveState()
	if err != nil {
		t.Fatal(err)
	}

	r2 := mk()
	if err := r2.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	if got, want := r2.Status(), r1.Status(); len(got.Sources) != len(want.Sources) ||
		got.Rejuvenations != want.Rejuvenations {
		t.Fatalf("restored status %+v != saved %+v", got, want)
	}
	// The arc stagger clock survived: m2 stays deferred inside the gap...
	rec2 := &recorder{}
	r2.cfg.Actuator = rec2
	r2.Handle(Alert{Source: "m2", Kind: KindJump, Sample: 35})
	if len(rec2.calls) != 0 {
		t.Fatalf("restored controller forgot the stagger clock: %v", rec2.calls)
	}
	// ...and runs after it.
	*cell = cell.Add(11 * time.Second)
	r2.Handle(Alert{Source: "m2", Kind: KindJump, Sample: 36})
	if len(rec2.calls) != 1 || rec2.calls[0] != "m2" {
		t.Fatalf("restored controller did not resume: %v", rec2.calls)
	}

	if err := r2.RestoreState([]byte("not a gob")); err == nil {
		t.Fatal("restore of garbage succeeded")
	}
}

func TestParsePolicy(t *testing.T) {
	if f, err := ParsePolicy("none"); err != nil || f != nil {
		t.Fatalf("none: f=%v err=%v", f, err)
	}
	if f, err := ParsePolicy(""); err != nil || f != nil {
		t.Fatalf("empty: f=%v err=%v", f, err)
	}
	f, err := ParsePolicy("periodic:1400")
	if err != nil {
		t.Fatal(err)
	}
	if got := f("x").Name(); got != "periodic(1400)" {
		t.Fatalf("periodic name %q", got)
	}
	f, err = ParsePolicy("phase:aging-onset:100")
	if err != nil {
		t.Fatal(err)
	}
	p := f("x").(*PhasePolicy)
	if p.Trigger != aging.PhaseAgingOnset || p.MinUptime != 100 {
		t.Fatalf("phase policy = %+v", p)
	}
	if _, err := ParsePolicy("phase:crash-imminent"); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"periodic:0", "periodic:x", "phase:healthy", "phase:bogus", "wat"} {
		if _, err := ParsePolicy(bad); err == nil {
			t.Errorf("ParsePolicy(%q) accepted", bad)
		}
	}
}

func TestMachineImplementsActuator(t *testing.T) {
	m, err := memsim.New(memsim.DefaultConfig(), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	var a Actuator = m
	if err := a.Rejuvenate("self"); err != nil {
		t.Fatal(err)
	}
	if m.Reboots() != 1 {
		t.Fatalf("reboots = %d, want 1", m.Reboots())
	}
}
