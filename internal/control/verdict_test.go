package control

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"agingmf/internal/aging"
	"agingmf/internal/detect"
	"agingmf/internal/obs"
	"agingmf/internal/rejuv"
	"agingmf/internal/resilience"
)

func TestFromDetectEventShapes(t *testing.T) {
	jump := FromDetectEvent("m1", detect.Event{
		Detector: "holder", Kind: detect.EventJump,
		Counter: aging.CounterFreeMemory, Sample: 42, Value: 1.5, Score: 6.1,
	})
	want := Alert{
		Source: "m1", Kind: KindJump, Detector: "holder",
		Counter: "free-memory", Sample: 42, Volatility: 1.5, Score: 6.1,
	}
	if jump != want {
		t.Errorf("jump alert = %+v, want %+v", jump, want)
	}

	// Recalibrations drop Value (a raw counter, not a volatility) — the
	// byte-compatibility contract with the original ingest emission.
	recal := FromDetectEvent("m1", detect.Event{
		Detector: "adaptive", Kind: detect.EventRecalibrate,
		Counter: aging.CounterUsedSwap, Sample: 99, Value: 123456, Score: 12.5,
	})
	if recal.Kind != KindRecalibrate || recal.Volatility != 0 || recal.Score != 12.5 {
		t.Errorf("recalibrate alert = %+v", recal)
	}
}

func TestVerdictHelpers(t *testing.T) {
	pc := PhaseChange("m2", 7, aging.PhaseHealthy, aging.PhaseAgingOnset)
	if pc.Kind != KindPhaseChange || pc.From != "healthy" || pc.To != "aging-onset" || pc.Sample != 7 {
		t.Errorf("phase change alert = %+v", pc)
	}
	if st := Stall("m3", 1500); st.Kind != KindStall || st.GapMillis != 1500 {
		t.Errorf("stall alert = %+v", st)
	}
	if rs := Resume("m3"); rs.Kind != KindResume || rs.Source != "m3" {
		t.Errorf("resume alert = %+v", rs)
	}
}

func TestDryRunActuatorCountsAndEmits(t *testing.T) {
	var buf bytes.Buffer
	act := &DryRunActuator{Events: obs.NewEvents(&buf, obs.LevelInfo)}
	for i := 0; i < 3; i++ {
		if err := act.Rejuvenate("m1"); err != nil {
			t.Fatalf("Rejuvenate: %v", err)
		}
	}
	if act.Count() != 3 {
		t.Errorf("count = %d, want 3", act.Count())
	}
	if got := strings.Count(buf.String(), "rejuvenate_dry_run"); got != 3 {
		t.Errorf("%d dry-run events, want 3:\n%s", got, buf.String())
	}
}

func TestActuatorFuncAndSubscriptionName(t *testing.T) {
	var got string
	var act Actuator = ActuatorFunc(func(s string) error { got = s; return nil })
	if err := act.Rejuvenate("m9"); err != nil || got != "m9" {
		t.Errorf("ActuatorFunc: err=%v source=%q", err, got)
	}
	bus := NewBus(4)
	defer bus.Close()
	sub := bus.Subscribe("webhook", 1)
	defer sub.Cancel()
	if sub.Name() != "webhook" {
		t.Errorf("Name() = %q", sub.Name())
	}
}

// The webhook sink end-to-end: delivery of the JSON alert body, a
// retried 5xx that eventually lands, and a non-retryable 4xx surfacing
// as a failure event.
func TestWebhookSinkDelivery(t *testing.T) {
	var calls atomic.Int64
	bodies := make(chan Alert, 4)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 2 { // second delivery: fail once, then succeed
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		var a Alert
		if err := json.NewDecoder(r.Body).Decode(&a); err != nil {
			t.Errorf("bad webhook body: %v", err)
		}
		bodies <- a
	}))
	defer srv.Close()

	bus := NewBus(8)
	sub := bus.Subscribe("webhook", 8)
	var evBuf bytes.Buffer
	ev := obs.NewEvents(&evBuf, obs.LevelInfo)
	done := make(chan struct{})
	go func() {
		defer close(done)
		WebhookSink(context.Background(), sub, WebhookConfig{URL: srv.URL}, ev)
	}()

	bus.Publish(Alert{Source: "m1", Kind: KindJump, Detector: "holder", Sample: 5})
	bus.Publish(Alert{Source: "m2", Kind: KindStall, GapMillis: 900})
	first, second := <-bodies, <-bodies
	if first.Source != "m1" || second.Source != "m2" {
		t.Errorf("delivered %+v then %+v", first, second)
	}
	if calls.Load() != 3 { // 1 + (1 failed + 1 retried)
		t.Errorf("server saw %d deliveries, want 3", calls.Load())
	}
	bus.Close()
	<-done
}

func TestWebhookSinkReportsTerminalFailure(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusForbidden)
	}))
	defer srv.Close()

	bus := NewBus(8)
	sub := bus.Subscribe("webhook", 8)
	var evBuf bytes.Buffer
	ev := obs.NewEvents(&evBuf, obs.LevelInfo)
	done := make(chan struct{})
	go func() {
		defer close(done)
		WebhookSink(context.Background(), sub, WebhookConfig{
			URL:   srv.URL,
			Retry: resilience.RetryConfig{MaxAttempts: 2},
		}, ev)
	}()
	bus.Publish(Alert{Source: "m1", Kind: KindJump})
	bus.Close()
	<-done
	if !strings.Contains(evBuf.String(), "alert_webhook_failed") {
		t.Errorf("4xx delivery did not surface a failure event:\n%s", evBuf.String())
	}
}

func TestRejuvenatorTotalAndIdleStop(t *testing.T) {
	rej, err := NewRejuvenator(RejuvenatorConfig{
		Actuator: ActuatorFunc(func(string) error { return errors.New("unused") }),
		Policy:   func(string) rejuv.Policy { return &PhasePolicy{Trigger: aging.PhaseAgingOnset} },
	})
	if err != nil {
		t.Fatalf("NewRejuvenator: %v", err)
	}
	if rej.Total() != 0 {
		t.Errorf("fresh Total = %d", rej.Total())
	}
	rej.Stop() // never started: must be a no-op
	if err := rej.Start(); err == nil {
		t.Error("Start without a Bus should fail")
	}
}
