package control

import (
	"fmt"
	"strings"
	"testing"

	"agingmf/internal/obs"
)

func TestBusRing(t *testing.T) {
	b := NewBus(4)
	for i := 0; i < 6; i++ {
		b.Publish(Alert{Source: fmt.Sprintf("s%d", i), Kind: KindJump})
	}
	if got := b.Total(); got != 6 {
		t.Fatalf("Total() = %d, want 6", got)
	}
	recent := b.Recent(0)
	if len(recent) != 4 {
		t.Fatalf("Recent(0) returned %d alerts, want 4 (ring size)", len(recent))
	}
	for i, a := range recent {
		if want := fmt.Sprintf("s%d", i+2); a.Source != want {
			t.Errorf("recent[%d].Source = %q, want %q", i, a.Source, want)
		}
	}
	if got := b.Recent(2); len(got) != 2 || got[1].Source != "s5" {
		t.Errorf("Recent(2) = %v, want the two newest ending at s5", got)
	}
}

func TestBusFanoutAndLabeledDrops(t *testing.T) {
	reg := obs.NewRegistry()
	fleet := reg.CounterVec("agingmf_alert_drops_total", "by sink", "sink")
	legacy := reg.CounterVec("agingmf_ingest_alert_drops_total", "by sink", "sink")
	b := NewBus(8, fleet, legacy)

	fast := b.Subscribe("fast", 16)
	slow := b.Subscribe("slow", 1)
	for i := 0; i < 5; i++ {
		b.Publish(Alert{Source: "m", Kind: KindJump, Sample: i})
	}
	// fast has room for all five; slow's queue of one keeps the first and
	// drops the other four.
	if got := len(fast.C()); got != 5 {
		t.Errorf("fast queued %d alerts, want 5", got)
	}
	if got := slow.Dropped(); got != 4 {
		t.Errorf("slow.Dropped() = %d, want 4", got)
	}
	// The drops are labeled by sink on BOTH metric families: the
	// control-plane name and the legacy ingest-scoped one.
	for _, vec := range []*obs.CounterVec{fleet, legacy} {
		if got := vec.With("slow").Value(); got != 4 {
			t.Errorf("drop counter {sink=slow} = %d, want 4", got)
		}
		if got := vec.With("fast").Value(); got != 0 {
			t.Errorf("drop counter {sink=fast} = %d, want 0", got)
		}
	}
	var text strings.Builder
	if err := reg.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), `agingmf_alert_drops_total{sink="slow"} 4`) {
		t.Errorf("exposition lacks labeled drop sample:\n%s", text.String())
	}

	fast.Cancel()
	fast.Cancel() // idempotent
	b.Publish(Alert{Source: "m", Kind: KindJump})
	if got := slow.Dropped(); got != 5 {
		t.Errorf("slow.Dropped() after cancel of fast = %d, want 5", got)
	}

	b.Close()
	b.Close() // idempotent
	if _, ok := <-slow.C(); !ok {
		// Drain the one queued alert first; the channel must then close.
		t.Fatalf("slow lost its queued alert on Close")
	}
	for range slow.C() {
	}
	b.Publish(Alert{Source: "m", Kind: KindJump}) // no-op after Close
	if got := b.Total(); got != 6 {
		t.Errorf("Total() after post-close publish = %d, want 6", got)
	}
	if sub := b.Subscribe("late", 1); sub != nil {
		if _, ok := <-sub.C(); ok {
			t.Errorf("post-close Subscribe delivered an alert")
		}
	}
}

func BenchmarkAlertBusPublish(b *testing.B) {
	reg := obs.NewRegistry()
	drops := reg.CounterVec("agingmf_alert_drops_total", "by sink", "sink")
	bus := NewBus(256, drops)
	// One draining subscriber and one saturated: the benchmark covers
	// both the delivery and the drop-count path, which is what the
	// ingest hot loop pays per alert.
	sat := bus.Subscribe("saturated", 1)
	defer sat.Cancel()
	live := bus.Subscribe("live", 1024)
	defer live.Cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range live.C() {
		}
	}()
	a := Alert{Source: "bench", Kind: KindJump, Detector: "holder", Sample: 1, Score: 3.2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bus.Publish(a)
	}
	b.StopTimer()
	bus.Close()
	<-done
}
