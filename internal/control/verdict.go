package control

import (
	"agingmf/internal/aging"
	"agingmf/internal/detect"
)

// This file is the verdict boundary: every translation from a detector's
// internal event shape into the canonical Alert lives here, so the
// detect layer keeps its own vocabulary and the rest of the system —
// ingest, sinks, the Rejuvenator — sees exactly one.

// FromDetectEvent translates one detector verdict event for source into
// the canonical Alert. detect.EventRecalibrate maps to KindRecalibrate
// (Value is the raw counter there, not a volatility, so it is dropped —
// matching the original ingest emission byte-for-byte); every other
// event kind is a detection alarm and maps to KindJump.
func FromDetectEvent(source string, ev detect.Event) Alert {
	if ev.Kind == detect.EventRecalibrate {
		return Alert{
			Source:   source,
			Kind:     KindRecalibrate,
			Detector: ev.Detector,
			Counter:  ev.Counter.String(),
			Sample:   ev.Sample,
			Score:    ev.Score,
		}
	}
	return Alert{
		Source:     source,
		Kind:       KindJump,
		Detector:   ev.Detector,
		Counter:    ev.Counter.String(),
		Sample:     ev.Sample,
		Volatility: ev.Value,
		Score:      ev.Score,
	}
}

// PhaseChange builds the alert for a source's aggregate aging-phase
// transition at the given sample index.
func PhaseChange(source string, sample int, from, to aging.Phase) Alert {
	return Alert{
		Source: source,
		Kind:   KindPhaseChange,
		Sample: sample,
		From:   from.String(),
		To:     to.String(),
	}
}

// Stall builds the alert for a source gone silent for gapMillis.
func Stall(source string, gapMillis int64) Alert {
	return Alert{Source: source, Kind: KindStall, GapMillis: gapMillis}
}

// Resume builds the alert for a stalled source producing samples again.
func Resume(source string) Alert {
	return Alert{Source: source, Kind: KindResume}
}
