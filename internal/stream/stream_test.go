package stream

import (
	"math"
	"math/rand"
	"testing"

	"agingmf/internal/changepoint"
)

func TestSlidingExtremaMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	raw := make([]float64, 0, 500)
	tr := newSlidingExtrema(7)
	for i := 0; i < 500; i++ {
		raw = append(raw, rng.NormFloat64())
		tr.push(i, raw[i])
	}
	for c := 7; c+7 < 500; c++ {
		lo, hi := raw[c-7], raw[c-7]
		for k := c - 7; k <= c+7; k++ {
			if raw[k] < lo {
				lo = raw[k]
			}
			if raw[k] > hi {
				hi = raw[k]
			}
		}
		if got := tr.at(c); got != hi-lo {
			t.Fatalf("osc at %d = %v, naive %v", c, got, hi-lo)
		}
	}
}

func TestSlidingExtremaConstantInput(t *testing.T) {
	tr := newSlidingExtrema(3)
	for i := 0; i < 100; i++ {
		tr.push(i, 5)
	}
	for c := 3; c+3 < 100; c++ {
		if got := tr.at(c); got != 0 {
			t.Fatalf("constant oscillation at %d = %v", c, got)
		}
	}
}

func TestSlidingExtremaStateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := newSlidingExtrema(5)
	b := newSlidingExtrema(5)
	for i := 0; i < 137; i++ {
		x := rng.NormFloat64()
		a.push(i, x)
		b.push(i, x)
	}
	a.trim(120)
	b.trim(120)
	restored, err := restoreExtrema(a.state())
	if err != nil {
		t.Fatal(err)
	}
	for i := 137; i < 300; i++ {
		x := rng.NormFloat64()
		restored.push(i, x)
		b.push(i, x)
		if got, want := restored.at(i-5), b.at(i-5); got != want {
			t.Fatalf("osc divergence at center %d: %v vs %v", i-5, got, want)
		}
	}
}

// scanAlpha is the direct-scan reference for the estimator: rescan the
// raw window at every radius and refit.
func scanAlpha(raw []float64, radii []int, t int) float64 {
	logO := make([]float64, 0, len(radii))
	logR := make([]float64, 0, len(radii))
	for _, r := range radii {
		minV, maxV := math.Inf(1), math.Inf(-1)
		for k := t - r; k <= t+r; k++ {
			if raw[k] < minV {
				minV = raw[k]
			}
			if raw[k] > maxV {
				maxV = raw[k]
			}
		}
		osc := maxV - minV
		if osc <= 0 {
			return 1
		}
		logO = append(logO, math.Log(osc))
		logR = append(logR, math.Log(float64(r)))
	}
	return FitAlpha(logR, logO)
}

func TestOscillationEstimatorMatchesScanReference(t *testing.T) {
	radii := []int{2, 4, 8, 16, 32}
	est, err := NewOscillationEstimator(radii)
	if err != nil {
		t.Fatal(err)
	}
	if est.Lag() != 32 {
		t.Fatalf("lag = %d, want 32", est.Lag())
	}
	rng := rand.New(rand.NewSource(2))
	level := 0.0
	n := 3000
	raw := make([]float64, 0, n)
	var centers int
	for i := 0; i < n; i++ {
		// Mixed smooth/rough input exercises both the constant-window and
		// the regression branch.
		if (i/100)%2 == 0 {
			level += 0.01
		} else {
			level += rng.NormFloat64()
		}
		raw = append(raw, level)
		alpha, ok := est.Push(level)
		if c := i - est.Lag(); c >= est.Lag() {
			if !ok {
				t.Fatalf("no estimate at sample %d (center %d)", i, c)
			}
			if want := scanAlpha(raw, radii, c); alpha != want {
				t.Fatalf("alpha mismatch at center %d: incremental %v, scan %v", c, alpha, want)
			}
			centers++
		} else if ok {
			t.Fatalf("unexpected estimate at sample %d", i)
		}
	}
	if want := n - 2*est.Lag(); centers != want {
		t.Fatalf("emitted %d estimates, want %d", centers, want)
	}
}

func TestOscillationEstimatorDuplicateRadii(t *testing.T) {
	// The offline trajectory code can produce a degenerate ladder with
	// repeated radii; the estimator must accept it.
	est, err := NewOscillationEstimator([]int{2, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		alpha, ok := est.Push(rng.NormFloat64())
		if ok && (math.IsNaN(alpha) || alpha < 0 || alpha > 2) {
			t.Fatalf("alpha %v out of range", alpha)
		}
	}
}

func TestOscillationEstimatorBadLadder(t *testing.T) {
	for _, radii := range [][]int{nil, {5}, {0, 2, 4}, {-1, 2, 4}} {
		if _, err := NewOscillationEstimator(radii); err == nil {
			t.Errorf("ladder %v should fail", radii)
		}
	}
}

func TestOscillationEstimatorStateRoundTrip(t *testing.T) {
	radii := []int{2, 4, 8}
	full, err := NewOscillationEstimator(radii)
	if err != nil {
		t.Fatal(err)
	}
	half, err := NewOscillationEstimator(radii)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	xs := make([]float64, 400)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	for _, x := range xs[:250] {
		half.Push(x)
	}
	restored, err := RestoreOscillationEstimator(half.State())
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		a, aok := full.Push(x)
		if i < 250 {
			continue
		}
		b, bok := restored.Push(x)
		if a != b || aok != bok {
			t.Fatalf("restored divergence at sample %d: (%v,%v) vs (%v,%v)", i, a, aok, b, bok)
		}
	}
	if _, err := RestoreOscillationEstimator(OscillationEstimatorState{Radii: radii}); err == nil {
		t.Error("restore with missing trackers should fail")
	}
}

func TestVolatilityWindowMatchesNaive(t *testing.T) {
	const w = 16
	vw, err := NewVolatilityWindow(w)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	hist := make([]float64, 0, 300)
	for i := 0; i < 300; i++ {
		x := rng.NormFloat64()
		hist = append(hist, x)
		got, ok := vw.Push(x)
		if (i+1 >= w) != ok {
			t.Fatalf("ok=%v at push %d", ok, i)
		}
		if !ok {
			continue
		}
		var sum, sumSq float64
		for _, v := range hist[len(hist)-w:] {
			sum += v
			sumSq += v * v
		}
		mean := sum / w
		want := math.Sqrt(math.Max(0, sumSq/w-mean*mean))
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("vol at %d = %v, naive %v", i, got, want)
		}
	}
}

func TestVolatilityWindowStateRoundTrip(t *testing.T) {
	const w = 8
	a, _ := NewVolatilityWindow(w)
	b, _ := NewVolatilityWindow(w)
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	hist := xs[:37]
	for _, x := range hist {
		a.Push(x)
	}
	// Direct ring restore.
	restored, err := RestoreVolatilityWindow(a.State())
	if err != nil {
		t.Fatal(err)
	}
	// History-tail restore (the legacy-snapshot path).
	st := a.State()
	ring, err := RebuildVolatilityRing(w, st.Count, hist)
	if err != nil {
		t.Fatal(err)
	}
	st.Ring = ring
	rebuilt, err := RestoreVolatilityWindow(st)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range hist {
		b.Push(x)
	}
	for _, x := range xs[37:] {
		want, wok := b.Push(x)
		got1, ok1 := restored.Push(x)
		got2, ok2 := rebuilt.Push(x)
		if got1 != want || ok1 != wok || got2 != want || ok2 != wok {
			t.Fatalf("restore divergence: want (%v,%v), ring (%v,%v), rebuilt (%v,%v)",
				want, wok, got1, ok1, got2, ok2)
		}
	}
}

func TestStandardizer(t *testing.T) {
	s, err := NewStandardizer(4, true)
	if err != nil {
		t.Fatal(err)
	}
	baseline := []float64{1, 2, 3, 2}
	for i, x := range baseline {
		if _, ok := s.Push(x); ok {
			t.Fatalf("emitted during warmup at %d", i)
		}
	}
	// Baseline: mean 2, var (1+4+9+4)/4 - 4 = 0.5.
	std := math.Sqrt(0.5)
	got, ok := s.Push(3)
	if !ok || math.Abs(got-(3-2)/std) > 1e-12 {
		t.Fatalf("z(3) = (%v,%v)", got, ok)
	}
	s.Recalibrate()
	if _, ok := s.Push(10); ok {
		t.Fatal("emitted right after recalibration")
	}
	// A disabled standardizer is the identity.
	id, err := NewStandardizer(4, false)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := id.Push(42); !ok || got != 42 {
		t.Fatalf("disabled push = (%v,%v)", got, ok)
	}
	// Zero-variance baseline must not divide by zero.
	z, _ := NewStandardizer(2, true)
	z.Push(1)
	z.Push(1)
	if got, ok := z.Push(1); !ok || math.IsNaN(got) || math.IsInf(got, 0) {
		t.Fatalf("degenerate baseline push = (%v,%v)", got, ok)
	}
}

func TestStandardizerStateRoundTrip(t *testing.T) {
	a, _ := NewStandardizer(8, true)
	b, _ := NewStandardizer(8, true)
	rng := rand.New(rand.NewSource(8))
	xs := make([]float64, 40)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	for _, x := range xs[:13] {
		a.Push(x)
	}
	restored, err := RestoreStandardizer(a.State())
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		want, wok := b.Push(x)
		if i < 13 {
			continue
		}
		got, ok := restored.Push(x)
		if got != want || ok != wok {
			t.Fatalf("restore divergence at %d: (%v,%v) vs (%v,%v)", i, got, ok, want, wok)
		}
	}
}

func TestGatedDetectorRefractory(t *testing.T) {
	det, err := changepoint.NewShewhart(3, 8, false)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGatedDetector(det, 5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	fires := []int{}
	for i := 0; i < 400; i++ {
		x := rng.NormFloat64()
		if i >= 100 {
			x += 50 // gross shift: the detector wants to fire continuously
		}
		if _, fired := g.Push(x); fired {
			fires = append(fires, i)
		}
	}
	if len(fires) == 0 {
		t.Fatal("never fired")
	}
	for i := 1; i < len(fires); i++ {
		if fires[i]-fires[i-1] <= 5 {
			t.Fatalf("fires %d and %d within refractory window", fires[i-1], fires[i])
		}
	}
	if g.Remaining() < 0 {
		t.Fatalf("remaining = %d", g.Remaining())
	}
	if err := g.SetRemaining(-1); err == nil {
		t.Error("negative remaining should fail")
	}
	if _, err := NewGatedDetector(nil, 1); err == nil {
		t.Error("nil detector should fail")
	}
}

// TestPipelineSteadyStateAllocs locks in the kernel's zero-allocation
// guarantee at the stage level (the aging package asserts it again for
// the composed monitor).
func TestPipelineSteadyStateAllocs(t *testing.T) {
	est, err := NewOscillationEstimator([]int{2, 4, 8, 16})
	if err != nil {
		t.Fatal(err)
	}
	vw, err := NewVolatilityWindow(32)
	if err != nil {
		t.Fatal(err)
	}
	sd, err := NewStandardizer(64, true)
	if err != nil {
		t.Fatal(err)
	}
	det, err := changepoint.NewShewhart(1e9, 8, false) // never fires
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGatedDetector(det, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	xs := make([]float64, 4096)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	i := 0
	step := func() {
		x := xs[i%len(xs)]
		i++
		alpha, ok := est.Push(x)
		if !ok {
			return
		}
		vol, ok := vw.Push(alpha)
		if !ok {
			return
		}
		stat, ok := sd.Push(vol)
		if !ok {
			return
		}
		g.Push(stat)
	}
	for j := 0; j < 2048; j++ { // warm up: fill windows, settle capacities
		step()
	}
	if avg := testing.AllocsPerRun(2000, step); avg != 0 {
		t.Fatalf("steady-state pipeline allocates %v per push", avg)
	}
}
