package stream

import (
	"fmt"
	"math"
)

// VolatilityWindow is the second pipeline stage: it consumes the Hölder
// trajectory one estimate per Push and emits the moving standard
// deviation over the last W estimates — the paper's Hölder volatility.
// It keeps a W-slot ring of raw values plus running first and second
// moments, so Push is O(1) with zero allocations.
//
// The floating-point update order (add the new value, then subtract the
// one leaving the window) is load-bearing: it matches the historical
// monitor implementation bit for bit, which the cross-implementation
// parity and snapshot-compatibility tests rely on.
type VolatilityWindow struct {
	w          int
	ring       []float64 // last w pushes; slot count%w
	count      int       // total values pushed
	sum, sumSq float64
	// slot == count % w, maintained incrementally so the hot path has no
	// integer division. Derived state, reconstructed on restore.
	slot int
	// The standard deviation is a pure function of (sum, sumSq); caching
	// the last result skips the sqrt on runs of unchanged moments — the
	// steady case for memoized Hölder trajectories. Identical inputs
	// replay identical bits, so the memo never alters what Push returns.
	memoSum, memoSumSq, memoVol float64
	memoOK                      bool
}

// NewVolatilityWindow creates a window over w >= 2 values.
func NewVolatilityWindow(w int) (*VolatilityWindow, error) {
	if w < 2 {
		return nil, fmt.Errorf("volatility window %d: %w", w, ErrBadConfig)
	}
	return &VolatilityWindow{w: w, ring: make([]float64, w)}, nil
}

// Window returns the configured window length.
func (v *VolatilityWindow) Window() int { return v.w }

// Count returns how many values have been pushed.
func (v *VolatilityWindow) Count() int { return v.count }

// Push consumes one value. It returns the moving standard deviation and
// true once the window is full (from the w-th push onward).
func (v *VolatilityWindow) Push(x float64) (float64, bool) {
	slot := v.slot
	old := v.ring[slot] // the value leaving the window, w pushes ago
	v.ring[slot] = x
	slot++
	if slot == v.w {
		slot = 0
	}
	v.slot = slot
	v.count++
	v.sum += x
	v.sumSq += x * x
	if v.count > v.w {
		v.sum -= old
		v.sumSq -= old * old
	}
	if v.count < v.w {
		return 0, false
	}
	if v.memoOK && v.sum == v.memoSum && v.sumSq == v.memoSumSq {
		return v.memoVol, true
	}
	fw := float64(v.w)
	mean := v.sum / fw
	va := v.sumSq/fw - mean*mean
	if va < 0 {
		va = 0
	}
	vol := math.Sqrt(va)
	v.memoSum, v.memoSumSq, v.memoVol, v.memoOK = v.sum, v.sumSq, vol, true
	return vol, true
}

// VolatilityWindowState is the persistable state of the stage.
type VolatilityWindowState struct {
	W          int
	Ring       []float64
	Count      int
	Sum, SumSq float64
}

// State snapshots the stage.
func (v *VolatilityWindow) State() VolatilityWindowState {
	return VolatilityWindowState{
		W:     v.w,
		Ring:  append([]float64(nil), v.ring...),
		Count: v.count,
		Sum:   v.sum,
		SumSq: v.sumSq,
	}
}

// RestoreVolatilityWindow rebuilds a window from a snapshot. The running
// sums are restored verbatim (not recomputed) to preserve bit-exact
// continuation.
func RestoreVolatilityWindow(st VolatilityWindowState) (*VolatilityWindow, error) {
	v, err := NewVolatilityWindow(st.W)
	if err != nil {
		return nil, err
	}
	if len(st.Ring) != st.W || st.Count < 0 {
		return nil, fmt.Errorf("volatility window: ring %d != w %d: %w", len(st.Ring), st.W, ErrBadState)
	}
	copy(v.ring, st.Ring)
	v.count = st.Count
	v.sum = st.Sum
	v.sumSq = st.SumSq
	v.slot = st.Count % st.W
	return v, nil
}

// RebuildVolatilityRing reconstructs the ring layout from the tail of the
// value history: tail's last element is the most recent push. It is used
// to restore pre-stream monitor snapshots, which persisted the history
// slice and running sums but no ring. The returned slice has length w.
func RebuildVolatilityRing(w, count int, tail []float64) ([]float64, error) {
	if w < 2 || count < 0 {
		return nil, ErrBadState
	}
	k := count
	if k > w {
		k = w
	}
	if len(tail) < k {
		return nil, fmt.Errorf("volatility window: need %d history values, have %d: %w", k, len(tail), ErrBadState)
	}
	ring := make([]float64, w)
	for i := 0; i < k; i++ {
		abs := count - k + i // absolute push index of this tail element
		ring[abs%w] = tail[len(tail)-k+i]
	}
	return ring, nil
}
