package stream

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// columnarTraces are the waveforms the columnar-kernel parity tests run:
// each stresses a different branch of the batch estimator (memo hits on
// plateaus, memo misses on noise, the osc<=0 locally-constant path, and
// denormal-scale values).
func columnarTraces() map[string][]float64 {
	rng := rand.New(rand.NewSource(7))
	noisy := make([]float64, 800)
	for i := range noisy {
		noisy[i] = 1e9 - 1000*float64(i) + 50*rng.NormFloat64()
	}
	ramp := make([]float64, 800)
	for i := range ramp {
		ramp[i] = float64(i) * 4096
	}
	steps := make([]float64, 800)
	for i := range steps {
		steps[i] = float64((i / 37) * 1 << 20)
	}
	flat := make([]float64, 800)
	for i := range flat {
		flat[i] = 42
	}
	tiny := make([]float64, 800)
	for i := range tiny {
		tiny[i] = 1e-300 * (1 + rng.Float64())
	}
	return map[string][]float64{
		"noisy": noisy, "ramp": ramp, "steps": steps, "flat": flat, "tiny": tiny,
	}
}

// TestPushRangeParity drives one tracker through push and pushRange in
// every batch-split pattern and requires identical state.
func TestPushRangeParity(t *testing.T) {
	for name, xs := range columnarTraces() {
		for _, r := range []int{1, 2, 8} {
			ref := newSlidingExtrema(r)
			for i, x := range xs {
				ref.push(i, x)
			}
			for _, chunk := range []int{1, 3, 64, len(xs)} {
				got := newSlidingExtrema(r)
				for off := 0; off < len(xs); off += chunk {
					end := off + chunk
					if end > len(xs) {
						end = len(xs)
					}
					got.pushRange(off, xs[off:end])
				}
				if !reflect.DeepEqual(got.state(), ref.state()) {
					t.Fatalf("%s r=%d chunk=%d: pushRange state diverged from push", name, r, chunk)
				}
			}
		}
	}
}

// TestPushColumnsParity requires PushColumns to emit bit-identical
// estimates and leave bit-identical estimator state versus per-sample
// Push, across chunkings that split batches mid-warmup and mid-stream.
func TestPushColumnsParity(t *testing.T) {
	radii := []int{2, 4, 8}
	for name, xs := range columnarTraces() {
		ref, err := NewOscillationEstimator(radii)
		if err != nil {
			t.Fatal(err)
		}
		var want []float64
		for _, x := range xs {
			if a, ok := ref.Push(x); ok {
				want = append(want, a)
			}
		}
		for _, chunk := range []int{1, 5, 17, 256, len(xs)} {
			got, err := NewOscillationEstimator(radii)
			if err != nil {
				t.Fatal(err)
			}
			var have []float64
			for off := 0; off < len(xs); off += chunk {
				end := off + chunk
				if end > len(xs) {
					end = len(xs)
				}
				have = got.PushColumns(xs[off:end], have)
			}
			if len(have) != len(want) {
				t.Fatalf("%s chunk=%d: %d alphas, want %d", name, chunk, len(have), len(want))
			}
			for i := range have {
				if math.Float64bits(have[i]) != math.Float64bits(want[i]) {
					t.Fatalf("%s chunk=%d: alpha[%d] = %v, want %v", name, chunk, i, have[i], want[i])
				}
			}
			if !reflect.DeepEqual(got.State(), ref.State()) {
				t.Fatalf("%s chunk=%d: estimator state diverged", name, chunk)
			}
		}
	}
}

// TestPushColumnsInterleaved mixes Push and PushColumns on one estimator:
// the memo must never go stale when per-sample pushes run between
// batches.
func TestPushColumnsInterleaved(t *testing.T) {
	radii := []int{2, 4, 8}
	xs := columnarTraces()["noisy"]
	ref, _ := NewOscillationEstimator(radii)
	var want []float64
	for _, x := range xs {
		if a, ok := ref.Push(x); ok {
			want = append(want, a)
		}
	}
	got, _ := NewOscillationEstimator(radii)
	var have []float64
	for off := 0; off < len(xs); {
		if (off/10)%2 == 0 && off < len(xs) {
			if a, ok := got.Push(xs[off]); ok {
				have = append(have, a)
			}
			off++
			continue
		}
		end := off + 23
		if end > len(xs) {
			end = len(xs)
		}
		have = got.PushColumns(xs[off:end], have)
		off = end
	}
	if !reflect.DeepEqual(have, want) {
		t.Fatalf("interleaved Push/PushColumns diverged: %d vs %d alphas", len(have), len(want))
	}
	if !reflect.DeepEqual(got.State(), ref.State()) {
		t.Fatal("interleaved estimator state diverged")
	}
}
