package stream

import (
	"fmt"
	"math"
)

// Standardizer is the third pipeline stage: it z-scores the volatility
// stream against a baseline estimated from the first Warmup values, for
// detectors whose thresholds are defined in baseline-sigma units (CUSUM,
// Page–Hinkley). While the baseline is being estimated nothing is
// emitted. After a detected jump the caller invokes Recalibrate so the
// baseline is re-estimated for the post-jump regime.
//
// A disabled Standardizer (enabled=false) passes every value through
// unchanged, which lets the monitor keep a single pipeline shape for
// self-calibrating detectors (Shewhart, EWMA) too.
type Standardizer struct {
	enabled bool
	warmup  int

	n          int
	sum, sqSum float64
	mean, std  float64
	calibrated bool
}

// NewStandardizer creates a Standardizer estimating its baseline over
// warmup >= 2 values. When enabled is false, Push is the identity.
func NewStandardizer(warmup int, enabled bool) (*Standardizer, error) {
	if warmup < 2 {
		return nil, fmt.Errorf("standardizer warmup %d: %w", warmup, ErrBadConfig)
	}
	return &Standardizer{enabled: enabled, warmup: warmup}, nil
}

// Enabled reports whether the stage transforms its input.
func (s *Standardizer) Enabled() bool { return s.enabled }

// Push consumes one value. It returns the standardized value and true,
// or false while the baseline is still being estimated.
func (s *Standardizer) Push(x float64) (float64, bool) {
	if !s.enabled {
		return x, true
	}
	if !s.calibrated {
		s.n++
		s.sum += x
		s.sqSum += x * x
		if s.n < s.warmup {
			return 0, false
		}
		s.mean = s.sum / float64(s.n)
		v := s.sqSum/float64(s.n) - s.mean*s.mean
		if v < 0 {
			v = 0
		}
		s.std = math.Sqrt(v)
		if s.std == 0 {
			s.std = 1e-12
		}
		s.calibrated = true
		return 0, false
	}
	return (x - s.mean) / s.std, true
}

// Recalibrate discards the baseline so it is re-estimated from the next
// Warmup values (used after a jump, when the in-control regime changed).
// The previous mean/std are retained until then, mirroring the historical
// monitor so persisted state round-trips bit for bit.
func (s *Standardizer) Recalibrate() {
	s.n, s.sum, s.sqSum = 0, 0, 0
	s.calibrated = false
}

// StandardizerState is the persistable state of the stage.
type StandardizerState struct {
	Enabled    bool
	Warmup     int
	N          int
	Sum, SqSum float64
	Mean, Std  float64
	Calibrated bool
}

// State snapshots the stage.
func (s *Standardizer) State() StandardizerState {
	return StandardizerState{
		Enabled:    s.enabled,
		Warmup:     s.warmup,
		N:          s.n,
		Sum:        s.sum,
		SqSum:      s.sqSum,
		Mean:       s.mean,
		Std:        s.std,
		Calibrated: s.calibrated,
	}
}

// RestoreStandardizer rebuilds a Standardizer from a snapshot.
func RestoreStandardizer(st StandardizerState) (*Standardizer, error) {
	s, err := NewStandardizer(st.Warmup, st.Enabled)
	if err != nil {
		return nil, err
	}
	if st.N < 0 {
		return nil, ErrBadState
	}
	s.n = st.N
	s.sum = st.Sum
	s.sqSum = st.SqSum
	s.mean = st.Mean
	s.std = st.Std
	s.calibrated = st.Calibrated
	return s, nil
}
