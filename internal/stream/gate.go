package stream

import (
	"fmt"

	"agingmf/internal/changepoint"
)

// GatedDetector is the final pipeline stage: a changepoint detector with
// a refractory period. After each alarm the detector is reset and further
// alarms are suppressed for the next `refractory` pushes — one physical
// regime change should not be double counted — while the underlying
// detector keeps stepping so its baseline stays in sync with the stream.
type GatedDetector struct {
	det        changepoint.Detector
	refractory int // configured suppression length
	remaining  int // pushes left in the current refractory period
}

// NewGatedDetector wraps det with a refractory period of `refractory`
// pushes (0 disables gating).
func NewGatedDetector(det changepoint.Detector, refractory int) (*GatedDetector, error) {
	if det == nil || refractory < 0 {
		return nil, fmt.Errorf("gated detector (refractory %d): %w", refractory, ErrBadConfig)
	}
	return &GatedDetector{det: det, refractory: refractory}, nil
}

// Detector returns the wrapped detector (used for persistence; the
// concrete detectors implement encoding.BinaryMarshaler).
func (g *GatedDetector) Detector() changepoint.Detector { return g.det }

// Remaining returns how many pushes of the current refractory period are
// left.
func (g *GatedDetector) Remaining() int { return g.remaining }

// SetRemaining overrides the refractory countdown (used when restoring
// persisted state).
func (g *GatedDetector) SetRemaining(n int) error {
	if n < 0 {
		return ErrBadState
	}
	g.remaining = n
	return nil
}

// Push consumes one value. It returns the alarm and true when the
// detector fires outside a refractory period.
func (g *GatedDetector) Push(x float64) (changepoint.Alarm, bool) {
	if g.remaining > 0 {
		g.remaining--
		// Keep the detector's baseline in sync without alarming.
		_, _ = g.det.Step(x)
		return changepoint.Alarm{}, false
	}
	alarm, fired := g.det.Step(x)
	if !fired {
		return changepoint.Alarm{}, false
	}
	g.remaining = g.refractory
	g.det.Reset()
	return alarm, true
}
