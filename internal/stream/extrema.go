package stream

import "math"

// idxVal is one deque entry of the sliding-extrema tracker.
type idxVal struct {
	idx int
	v   float64
}

// deque is a fixed-capacity ring double-ended queue of idxVal. A
// monotonic deque over a window of w samples never holds more than w
// entries, so the backing array is allocated once and reused forever —
// unlike slicing (`d = d[1:]`), which leaks front capacity and forces
// amortized reallocations on the hot path.
type deque struct {
	buf  []idxVal
	head int // index of the front element
	n    int // number of elements
}

func newDeque(capacity int) deque {
	return deque{buf: make([]idxVal, capacity)}
}

func (d *deque) front() idxVal { return d.buf[d.head] }

func (d *deque) back() idxVal {
	i := d.head + d.n - 1
	if i >= len(d.buf) {
		i -= len(d.buf)
	}
	return d.buf[i]
}

func (d *deque) pushBack(e idxVal) {
	i := d.head + d.n
	if i >= len(d.buf) {
		i -= len(d.buf)
	}
	d.buf[i] = e
	d.n++
}

func (d *deque) popBack() { d.n-- }

func (d *deque) popFront() {
	d.head++
	if d.head >= len(d.buf) {
		d.head = 0
	}
	d.n--
}

// slidingExtrema incrementally tracks max-min over centered windows of
// one radius of the raw sample stream, using monotonic ring deques:
// amortized O(1) per sample and zero steady-state allocations. The
// oscillation for center c becomes available once sample c+r has been
// consumed. Entries are self-contained (index + value), so the tracker
// needs no access to the raw history and supports bounded-memory
// operation via trim.
type slidingExtrema struct {
	r, w int
	maxD deque // values decreasing
	minD deque // values increasing
	osc  []float64
	// oscBase is the center index of osc[0].
	oscBase int
	// sufMax/sufMin and prefMax/prefMin are pushRangeBlocks' per-block
	// suffix and prefix scratch; derived state, never persisted.
	sufMax, sufMin   []float64
	prefMax, prefMin []float64
}

func newSlidingExtrema(r int) *slidingExtrema {
	w := 2*r + 1
	// Capacity w+1: push appends the new entry before evicting the one
	// that just left the window, so the deque transiently holds w+1.
	return &slidingExtrema{
		r:       r,
		w:       w,
		maxD:    newDeque(w + 1),
		minD:    newDeque(w + 1),
		oscBase: r,
	}
}

// push consumes sample (idx, x); idx must increase by one per call. It
// records the oscillation of the newly completed window, if any.
func (s *slidingExtrema) push(idx int, x float64) {
	for s.maxD.n > 0 && s.maxD.back().v <= x {
		s.maxD.popBack()
	}
	s.maxD.pushBack(idxVal{idx: idx, v: x})
	for s.minD.n > 0 && s.minD.back().v >= x {
		s.minD.popBack()
	}
	s.minD.pushBack(idxVal{idx: idx, v: x})
	// Evict entries that fell out of the window ending at idx.
	lo := idx - s.w + 1
	for s.maxD.front().idx < lo {
		s.maxD.popFront()
	}
	for s.minD.front().idx < lo {
		s.minD.popFront()
	}
	if idx >= s.w-1 {
		// Window [idx-w+1, idx] is complete; center idx-r.
		s.osc = append(s.osc, s.maxD.front().v-s.minD.front().v)
	}
}

// at returns the oscillation for center t (t >= r, t+r consumed, and t
// not trimmed away).
func (s *slidingExtrema) at(t int) float64 {
	return s.osc[t-s.oscBase]
}

// pushRange consumes samples xs[0..] at consecutive indices starting at
// idx0. It is the batch form of push: the deque cursors live in locals
// for the whole run, so the per-sample loop compiles to straight-line
// ring arithmetic with no method-call layering. The pops, evictions and
// oscillation appends happen in exactly the order repeated push would
// perform them, so the tracker state after pushRange is identical
// (asserted by TestPushRangeParity).
func (s *slidingExtrema) pushRange(idx0 int, xs []float64) {
	maxBuf, minBuf := s.maxD.buf, s.minD.buf
	mh, mn := s.maxD.head, s.maxD.n
	nh, nn := s.minD.head, s.minD.n
	ringCap := len(maxBuf) // == len(minBuf) == w+1
	osc := s.osc
	w := s.w
	for i, x := range xs {
		idx := idx0 + i
		for mn > 0 {
			bi := mh + mn - 1
			if bi >= ringCap {
				bi -= ringCap
			}
			if maxBuf[bi].v > x {
				break
			}
			mn--
		}
		bi := mh + mn
		if bi >= ringCap {
			bi -= ringCap
		}
		maxBuf[bi] = idxVal{idx: idx, v: x}
		mn++
		for nn > 0 {
			bj := nh + nn - 1
			if bj >= ringCap {
				bj -= ringCap
			}
			if minBuf[bj].v < x {
				break
			}
			nn--
		}
		bj := nh + nn
		if bj >= ringCap {
			bj -= ringCap
		}
		minBuf[bj] = idxVal{idx: idx, v: x}
		nn++
		lo := idx - w + 1
		for maxBuf[mh].idx < lo {
			mh++
			if mh >= ringCap {
				mh = 0
			}
			mn--
		}
		for minBuf[nh].idx < lo {
			nh++
			if nh >= ringCap {
				nh = 0
			}
			nn--
		}
		if idx >= w-1 {
			osc = append(osc, maxBuf[mh].v-minBuf[nh].v)
		}
	}
	s.maxD.head, s.maxD.n = mh, mn
	s.minD.head, s.minD.n = nh, nn
	s.osc = osc
}

// pushRangeBlocks is the batch form of push for runs long enough to
// amortize block processing: it computes the same oscillations with the
// van Herk–Gil-Werman two-pass scheme — running prefix extrema within
// w-aligned blocks plus per-block suffix extrema, ~4 comparisons per
// sample regardless of radius — instead of maintaining the monotonic
// deques sample by sample.
//
// a is a contiguous raw view covering absolute indices [a0, idx0+m);
// xs[0..m) lives at a[idx0-a0..]. The caller must provide history back
// to the start of the block preceding the first completed window
// (vanHerkReady). The oscillation of a window is its true max minus its
// true min — unique values independent of the algorithm — so the osc
// slice ends bit-identical to repeated push; the deques, which only
// matter for snapshots and for resuming sample-by-sample, are
// reconstructed afterwards from the final window's raw samples, whose
// monotone chains are exactly what repeated push would have left
// (asserted by the columnar parity tests).
func (s *slidingExtrema) pushRangeBlocks(a []float64, a0, idx0, m int) {
	w := s.w
	end := idx0 + m - 1
	e := idx0
	if e < w-1 {
		e = w - 1
	}
	if cap(s.sufMax) < w {
		s.sufMax = make([]float64, w)
		s.sufMin = make([]float64, w)
		s.prefMax = make([]float64, w)
		s.prefMin = make([]float64, w)
	}
	sufMax, sufMin := s.sufMax[:w], s.sufMin[:w]
	prefMax, prefMin := s.prefMax[:w], s.prefMin[:w]
	// One oscillation per e in [e, end]: pre-extend osc once so the
	// emission loop stores by index instead of appending per element.
	osc := s.osc
	k := len(osc)
	if need := k + end - e + 1; cap(osc) < need {
		grown := make([]float64, k, need+need/4)
		copy(grown, osc)
		osc = grown
	}
	osc = osc[:k+end-e+1]
	for e <= end {
		bs := e / w * w // current block [bs, bs+w-1]
		pb := bs - w    // previous block [pb, bs-1]
		// Suffix extrema of the previous block: sufMax[q] = max blk[q..w-1].
		blk := a[pb-a0 : bs-a0] // len w: lets the compiler drop bounds checks
		v := blk[w-1]
		mx, mn := v, v
		sufMax[w-1], sufMin[w-1] = v, v
		for j := w - 2; j >= 0; j-- {
			v = blk[j]
			if v > mx {
				mx = v
			}
			if v < mn {
				mn = v
			}
			sufMax[j], sufMin[j] = mx, mn
		}
		// Running prefix extrema over [bs, e-1] (empty when e opens the block).
		rMax, rMin := math.Inf(-1), math.Inf(1)
		for j := bs; j < e; j++ {
			v = a[j-a0]
			if v > rMax {
				rMax = v
			}
			if v < rMin {
				rMin = v
			}
		}
		stop := bs + w - 1
		if stop > end {
			stop = end
		}
		// Two passes over [e, stop]: the serial prefix scan (loop-carried
		// running extrema) writes prefMax/prefMin, then the combine pass —
		// independent per element, so it pipelines — merges each window's
		// previous-block suffix with its prefix. Window [e-w+1, e] =
		// suffix of the previous block + prefix [bs, e]; q == w means the
		// window is exactly the current block.
		pe := 0
		for _, x := range a[e-a0 : stop+1-a0] {
			if x > rMax {
				rMax = x
			}
			if x < rMin {
				rMin = x
			}
			prefMax[pe], prefMin[pe] = rMax, rMin
			pe++
		}
		q := e - w + 1 - pb
		for j := 0; j < pe; j++ {
			mx, mn = prefMax[j], prefMin[j]
			if q < w {
				if sv := sufMax[q]; sv > mx {
					mx = sv
				}
				if sv := sufMin[q]; sv < mn {
					mn = sv
				}
			}
			q++
			osc[k] = mx - mn
			k++
		}
		e = stop + 1
	}
	s.osc = osc[:k]
	// Rebuild the monotonic deques for the window ending at `end`: scan
	// newest to oldest keeping strict improvements — the newest of equal
	// values survives, exactly as push's `<=`/`>=` back-pops leave it.
	mb, nb := s.maxD.buf, s.minD.buf
	mp, np := len(mb), len(nb)
	curMax, curMin := math.Inf(-1), math.Inf(1)
	lo := end - w + 1
	for j := end; j >= lo; j-- {
		v := a[j-a0]
		if v > curMax {
			mp--
			mb[mp] = idxVal{idx: j, v: v}
			curMax = v
		}
		if v < curMin {
			np--
			nb[np] = idxVal{idx: j, v: v}
			curMin = v
		}
	}
	s.maxD.head, s.maxD.n = mp, len(mb)-mp
	s.minD.head, s.minD.n = np, len(nb)-np
}

// vanHerkReady reports whether a batch of m samples starting at absolute
// index idx0, with contiguous raw history back to a0, can run
// pushRangeBlocks: the batch must be long enough to amortize the block
// passes, at least one window must complete, and the history must reach
// the block preceding the first completed window's start.
func (s *slidingExtrema) vanHerkReady(a0, idx0, m int) bool {
	w := s.w
	e := idx0
	if e < w-1 {
		e = w - 1
	}
	return m >= w && idx0+m-1 >= e && e/w*w-w >= a0
}

// trim discards oscillations for centers below minCenter, bounding the
// tracker's memory. The copy-down reuses the slice's capacity, so after
// the first few trims push/trim cycles allocate nothing.
func (s *slidingExtrema) trim(minCenter int) {
	drop := minCenter - s.oscBase
	if drop <= 0 {
		return
	}
	if drop > len(s.osc) {
		drop = len(s.osc)
	}
	s.osc = append(s.osc[:0], s.osc[drop:]...)
	s.oscBase += drop
}

// ExtremaState is the persistable state of one radius tracker. The field
// layout matches the pre-stream `aging` tracker snapshot so legacy gob
// blobs map onto it directly.
type ExtremaState struct {
	R       int
	MaxIdx  []int
	MaxVal  []float64
	MinIdx  []int
	MinVal  []float64
	Osc     []float64
	OscBase int
}

// state snapshots the tracker.
func (s *slidingExtrema) state() ExtremaState {
	st := ExtremaState{
		R:       s.r,
		Osc:     append([]float64(nil), s.osc...),
		OscBase: s.oscBase,
	}
	for i := 0; i < s.maxD.n; i++ {
		e := s.maxD.buf[(s.maxD.head+i)%len(s.maxD.buf)]
		st.MaxIdx = append(st.MaxIdx, e.idx)
		st.MaxVal = append(st.MaxVal, e.v)
	}
	for i := 0; i < s.minD.n; i++ {
		e := s.minD.buf[(s.minD.head+i)%len(s.minD.buf)]
		st.MinIdx = append(st.MinIdx, e.idx)
		st.MinVal = append(st.MinVal, e.v)
	}
	return st
}

// restoreExtrema rebuilds a tracker from a snapshot.
func restoreExtrema(st ExtremaState) (*slidingExtrema, error) {
	if st.R < 1 || len(st.MaxIdx) != len(st.MaxVal) || len(st.MinIdx) != len(st.MinVal) {
		return nil, ErrBadState
	}
	s := newSlidingExtrema(st.R)
	if len(st.MaxIdx) > s.w || len(st.MinIdx) > s.w {
		return nil, ErrBadState
	}
	for i := range st.MaxIdx {
		s.maxD.pushBack(idxVal{idx: st.MaxIdx[i], v: st.MaxVal[i]})
	}
	for i := range st.MinIdx {
		s.minD.pushBack(idxVal{idx: st.MinIdx[i], v: st.MinVal[i]})
	}
	s.osc = append(s.osc, st.Osc...)
	s.oscBase = st.OscBase
	return s, nil
}
