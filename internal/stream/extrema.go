package stream

// idxVal is one deque entry of the sliding-extrema tracker.
type idxVal struct {
	idx int
	v   float64
}

// deque is a fixed-capacity ring double-ended queue of idxVal. A
// monotonic deque over a window of w samples never holds more than w
// entries, so the backing array is allocated once and reused forever —
// unlike slicing (`d = d[1:]`), which leaks front capacity and forces
// amortized reallocations on the hot path.
type deque struct {
	buf  []idxVal
	head int // index of the front element
	n    int // number of elements
}

func newDeque(capacity int) deque {
	return deque{buf: make([]idxVal, capacity)}
}

func (d *deque) front() idxVal { return d.buf[d.head] }

func (d *deque) back() idxVal {
	i := d.head + d.n - 1
	if i >= len(d.buf) {
		i -= len(d.buf)
	}
	return d.buf[i]
}

func (d *deque) pushBack(e idxVal) {
	i := d.head + d.n
	if i >= len(d.buf) {
		i -= len(d.buf)
	}
	d.buf[i] = e
	d.n++
}

func (d *deque) popBack() { d.n-- }

func (d *deque) popFront() {
	d.head++
	if d.head >= len(d.buf) {
		d.head = 0
	}
	d.n--
}

// slidingExtrema incrementally tracks max-min over centered windows of
// one radius of the raw sample stream, using monotonic ring deques:
// amortized O(1) per sample and zero steady-state allocations. The
// oscillation for center c becomes available once sample c+r has been
// consumed. Entries are self-contained (index + value), so the tracker
// needs no access to the raw history and supports bounded-memory
// operation via trim.
type slidingExtrema struct {
	r, w int
	maxD deque // values decreasing
	minD deque // values increasing
	osc  []float64
	// oscBase is the center index of osc[0].
	oscBase int
}

func newSlidingExtrema(r int) *slidingExtrema {
	w := 2*r + 1
	// Capacity w+1: push appends the new entry before evicting the one
	// that just left the window, so the deque transiently holds w+1.
	return &slidingExtrema{
		r:       r,
		w:       w,
		maxD:    newDeque(w + 1),
		minD:    newDeque(w + 1),
		oscBase: r,
	}
}

// push consumes sample (idx, x); idx must increase by one per call. It
// records the oscillation of the newly completed window, if any.
func (s *slidingExtrema) push(idx int, x float64) {
	for s.maxD.n > 0 && s.maxD.back().v <= x {
		s.maxD.popBack()
	}
	s.maxD.pushBack(idxVal{idx: idx, v: x})
	for s.minD.n > 0 && s.minD.back().v >= x {
		s.minD.popBack()
	}
	s.minD.pushBack(idxVal{idx: idx, v: x})
	// Evict entries that fell out of the window ending at idx.
	lo := idx - s.w + 1
	for s.maxD.front().idx < lo {
		s.maxD.popFront()
	}
	for s.minD.front().idx < lo {
		s.minD.popFront()
	}
	if idx >= s.w-1 {
		// Window [idx-w+1, idx] is complete; center idx-r.
		s.osc = append(s.osc, s.maxD.front().v-s.minD.front().v)
	}
}

// at returns the oscillation for center t (t >= r, t+r consumed, and t
// not trimmed away).
func (s *slidingExtrema) at(t int) float64 {
	return s.osc[t-s.oscBase]
}

// trim discards oscillations for centers below minCenter, bounding the
// tracker's memory. The copy-down reuses the slice's capacity, so after
// the first few trims push/trim cycles allocate nothing.
func (s *slidingExtrema) trim(minCenter int) {
	drop := minCenter - s.oscBase
	if drop <= 0 {
		return
	}
	if drop > len(s.osc) {
		drop = len(s.osc)
	}
	s.osc = append(s.osc[:0], s.osc[drop:]...)
	s.oscBase += drop
}

// ExtremaState is the persistable state of one radius tracker. The field
// layout matches the pre-stream `aging` tracker snapshot so legacy gob
// blobs map onto it directly.
type ExtremaState struct {
	R       int
	MaxIdx  []int
	MaxVal  []float64
	MinIdx  []int
	MinVal  []float64
	Osc     []float64
	OscBase int
}

// state snapshots the tracker.
func (s *slidingExtrema) state() ExtremaState {
	st := ExtremaState{
		R:       s.r,
		Osc:     append([]float64(nil), s.osc...),
		OscBase: s.oscBase,
	}
	for i := 0; i < s.maxD.n; i++ {
		e := s.maxD.buf[(s.maxD.head+i)%len(s.maxD.buf)]
		st.MaxIdx = append(st.MaxIdx, e.idx)
		st.MaxVal = append(st.MaxVal, e.v)
	}
	for i := 0; i < s.minD.n; i++ {
		e := s.minD.buf[(s.minD.head+i)%len(s.minD.buf)]
		st.MinIdx = append(st.MinIdx, e.idx)
		st.MinVal = append(st.MinVal, e.v)
	}
	return st
}

// restoreExtrema rebuilds a tracker from a snapshot.
func restoreExtrema(st ExtremaState) (*slidingExtrema, error) {
	if st.R < 1 || len(st.MaxIdx) != len(st.MaxVal) || len(st.MinIdx) != len(st.MinVal) {
		return nil, ErrBadState
	}
	s := newSlidingExtrema(st.R)
	if len(st.MaxIdx) > s.w || len(st.MinIdx) > s.w {
		return nil, ErrBadState
	}
	for i := range st.MaxIdx {
		s.maxD.pushBack(idxVal{idx: st.MaxIdx[i], v: st.MaxVal[i]})
	}
	for i := range st.MinIdx {
		s.minD.pushBack(idxVal{idx: st.MinIdx[i], v: st.MinVal[i]})
	}
	s.osc = append(s.osc, st.Osc...)
	s.oscBase = st.OscBase
	return s, nil
}
