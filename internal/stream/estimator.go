package stream

import (
	"fmt"
	"math"
)

// OscillationEstimator is the first pipeline stage: it consumes one raw
// counter sample per Push and emits the pointwise Hölder exponent of the
// stream, estimated by regressing log window oscillation on log radius
// over a ladder of window radii. The estimate at center t needs samples
// up to t+maxR, so output lags input by Lag() = max(radii) samples.
//
// The stage owns one sliding-extrema tracker per radius and a reusable
// regression scratch; consumed oscillations are trimmed eagerly, so
// steady-state Push allocates nothing and memory stays O(sum of radii)
// regardless of stream length.
type OscillationEstimator struct {
	radii []int
	logR  []float64
	maxR  int
	seen  int // total samples consumed (indices are absolute)
	trk   []*slidingExtrema

	// The regressor x-axis (log radii) is fixed for the life of the
	// stage, so its mean and centered sum of squares are computed once;
	// each Push then only accumulates the cross term. The per-iteration
	// arithmetic matches stats.OLS exactly, so estimates are bit-identical
	// to the full regression (persisted pre-refactor states depend on it).
	logRMean, sxx float64
	scratchO      []float64 // log-oscillation scratch, reused every Push
}

// NewOscillationEstimator creates an estimator over the given radius
// ladder. At least two radii are required for the regression to be
// defined; callers choose the ladder policy (the aging monitor insists
// on >= 3 dyadic rungs, the offline trajectory code allows a degenerate
// fallback ladder).
func NewOscillationEstimator(radii []int) (*OscillationEstimator, error) {
	if len(radii) < 2 {
		return nil, fmt.Errorf("oscillation estimator: ladder %v too short: %w", radii, ErrBadConfig)
	}
	e := &OscillationEstimator{
		scratchO: make([]float64, 0, len(radii)),
	}
	for _, r := range radii {
		if r < 1 {
			return nil, fmt.Errorf("oscillation estimator: radius %d: %w", r, ErrBadConfig)
		}
		if r > e.maxR {
			e.maxR = r
		}
		e.radii = append(e.radii, r)
		e.logR = append(e.logR, math.Log(float64(r)))
		e.trk = append(e.trk, newSlidingExtrema(r))
	}
	sum := 0.0
	for _, lr := range e.logR {
		sum += lr
	}
	e.logRMean = sum / float64(len(e.logR))
	for _, lr := range e.logR {
		dx := lr - e.logRMean
		e.sxx += dx * dx
	}
	return e, nil
}

// Lag returns the structural delay, in raw samples, between a sample
// arriving and the Hölder estimate centered on it: the estimator needs
// max(radii) samples of future context.
func (e *OscillationEstimator) Lag() int { return e.maxR }

// Seen returns how many raw samples have been consumed.
func (e *OscillationEstimator) Seen() int { return e.seen }

// Push consumes one raw sample. Once enough context has accumulated it
// returns the Hölder estimate for center seen-1-Lag() and true; the
// first estimate (center Lag()) is emitted by the 2*Lag()+1-th sample.
func (e *OscillationEstimator) Push(x float64) (float64, bool) {
	idx := e.seen
	e.seen++
	for _, tr := range e.trk {
		tr.push(idx, x)
	}
	// The centered estimate at index t requires samples up to t+maxR, so
	// when sample n-1 arrives we can evaluate t = n-1-maxR.
	t := e.seen - 1 - e.maxR
	if t < e.maxR {
		return 0, false
	}
	alpha := e.alphaAt(t)
	// Oscillations at centers <= t are never read again.
	for _, tr := range e.trk {
		tr.trim(t + 1)
	}
	return alpha, true
}

// alphaAt computes the oscillation Hölder exponent at raw index t from
// the incrementally maintained window extrema. It is FitAlpha with the
// x-axis statistics hoisted out: only the y mean and the cross term are
// data-dependent, and the slope is all the caller needs.
func (e *OscillationEstimator) alphaAt(t int) float64 {
	logO := e.scratchO[:0]
	for _, tr := range e.trk {
		osc := tr.at(t)
		if osc <= 0 {
			return 1 // locally constant: maximally smooth
		}
		logO = append(logO, math.Log(osc))
	}
	if e.sxx == 0 {
		return 1 // degenerate ladder of identical radii
	}
	sum := 0.0
	for _, y := range logO {
		sum += y
	}
	my := sum / float64(len(logO))
	var sxy float64
	for i, y := range logO {
		sxy += (e.logR[i] - e.logRMean) * (y - my)
	}
	return ClampAlpha(sxy / e.sxx)
}

// OscillationEstimatorState is the persistable state of the stage.
type OscillationEstimatorState struct {
	Radii    []int
	Seen     int
	Trackers []ExtremaState
}

// State snapshots the stage.
func (e *OscillationEstimator) State() OscillationEstimatorState {
	st := OscillationEstimatorState{
		Radii: append([]int(nil), e.radii...),
		Seen:  e.seen,
	}
	for _, tr := range e.trk {
		st.Trackers = append(st.Trackers, tr.state())
	}
	return st
}

// RestoreOscillationEstimator rebuilds an estimator from a snapshot.
func RestoreOscillationEstimator(st OscillationEstimatorState) (*OscillationEstimator, error) {
	e, err := NewOscillationEstimator(st.Radii)
	if err != nil {
		return nil, err
	}
	if len(st.Trackers) != len(e.trk) || st.Seen < 0 {
		return nil, fmt.Errorf("oscillation estimator: %d tracker states for ladder %v: %w",
			len(st.Trackers), st.Radii, ErrBadState)
	}
	for i, ts := range st.Trackers {
		if ts.R != e.radii[i] {
			return nil, fmt.Errorf("oscillation estimator: tracker %d radius %d != %d: %w",
				i, ts.R, e.radii[i], ErrBadState)
		}
		tr, err := restoreExtrema(ts)
		if err != nil {
			return nil, fmt.Errorf("oscillation estimator: tracker %d: %w", i, err)
		}
		e.trk[i] = tr
	}
	e.seen = st.Seen
	return e, nil
}
