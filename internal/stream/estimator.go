package stream

import (
	"fmt"
	"math"
)

// OscillationEstimator is the first pipeline stage: it consumes one raw
// counter sample per Push and emits the pointwise Hölder exponent of the
// stream, estimated by regressing log window oscillation on log radius
// over a ladder of window radii. The estimate at center t needs samples
// up to t+maxR, so output lags input by Lag() = max(radii) samples.
//
// The stage owns one sliding-extrema tracker per radius and a reusable
// regression scratch; consumed oscillations are trimmed eagerly, so
// steady-state Push allocates nothing and memory stays O(sum of radii)
// regardless of stream length.
type OscillationEstimator struct {
	radii []int
	logR  []float64
	maxR  int
	seen  int // total samples consumed (indices are absolute)
	trk   []*slidingExtrema

	// The regressor x-axis (log radii) is fixed for the life of the
	// stage, so its mean and centered sum of squares are computed once;
	// each Push then only accumulates the cross term. The per-iteration
	// arithmetic matches stats.OLS exactly, so estimates are bit-identical
	// to the full regression (persisted pre-refactor states depend on it).
	logRMean, sxx float64
	scratchO      []float64 // log-oscillation scratch, reused every Push

	// Memo of the last oscillation vector regressed by PushColumns.
	// alphaAt is a pure function of the per-rung oscillations, and window
	// extrema persist across many consecutive centers on real counter
	// streams, so the batch kernel caches the logarithms per rung and the
	// final slope for the whole vector, keyed on exact float64 equality.
	// A cache hit replays bit-identical results by construction; the memo
	// is not persisted state and never alters what alphaAt would return.
	memoOsc   []float64
	memoLog   []float64
	memoAlpha float64
	memoOK    bool

	// rawTail retains the most recent raw samples (up to tailCap =
	// 4*maxR+2) so PushColumns can hand each tracker a contiguous view
	// spanning the batch plus enough history for block processing
	// (pushRangeBlocks needs the block before the first completed
	// window). Derived state: it is never persisted, and after a restore
	// the trackers fall back to sample-by-sample pushes until the tail
	// has refilled.
	rawTail    []float64
	tailCap    int
	rawScratch []float64

	// Per-batch emission scratch: alphaMemoCols caches each tracker's osc
	// slice header and base here so the per-center loop indexes flat
	// arrays instead of chasing tracker pointers, and marks the centers
	// where any rung's oscillation changed in emitChanged. Derived state.
	emitOsc     [][]float64
	emitBase    []int
	emitChanged []uint8
}

// NewOscillationEstimator creates an estimator over the given radius
// ladder. At least two radii are required for the regression to be
// defined; callers choose the ladder policy (the aging monitor insists
// on >= 3 dyadic rungs, the offline trajectory code allows a degenerate
// fallback ladder).
func NewOscillationEstimator(radii []int) (*OscillationEstimator, error) {
	if len(radii) < 2 {
		return nil, fmt.Errorf("oscillation estimator: ladder %v too short: %w", radii, ErrBadConfig)
	}
	e := &OscillationEstimator{
		scratchO: make([]float64, 0, len(radii)),
	}
	for _, r := range radii {
		if r < 1 {
			return nil, fmt.Errorf("oscillation estimator: radius %d: %w", r, ErrBadConfig)
		}
		if r > e.maxR {
			e.maxR = r
		}
		e.radii = append(e.radii, r)
		e.logR = append(e.logR, math.Log(float64(r)))
		e.trk = append(e.trk, newSlidingExtrema(r))
	}
	sum := 0.0
	for _, lr := range e.logR {
		sum += lr
	}
	e.logRMean = sum / float64(len(e.logR))
	for _, lr := range e.logR {
		dx := lr - e.logRMean
		e.sxx += dx * dx
	}
	e.memoOsc = make([]float64, len(e.radii))
	e.memoLog = make([]float64, len(e.radii))
	for i := range e.memoOsc {
		e.memoOsc[i] = -1 // oscillations are >= 0, so no vector matches yet
	}
	e.tailCap = 4*e.maxR + 2 // ≥ 2w for every rung's window w = 2r+1
	e.rawTail = make([]float64, 0, 2*e.tailCap)
	return e, nil
}

// Lag returns the structural delay, in raw samples, between a sample
// arriving and the Hölder estimate centered on it: the estimator needs
// max(radii) samples of future context.
func (e *OscillationEstimator) Lag() int { return e.maxR }

// Seen returns how many raw samples have been consumed.
func (e *OscillationEstimator) Seen() int { return e.seen }

// Push consumes one raw sample. Once enough context has accumulated it
// returns the Hölder estimate for center seen-1-Lag() and true; the
// first estimate (center Lag()) is emitted by the 2*Lag()+1-th sample.
func (e *OscillationEstimator) Push(x float64) (float64, bool) {
	idx := e.seen
	e.seen++
	e.pushTail(x)
	for _, tr := range e.trk {
		tr.push(idx, x)
	}
	// The centered estimate at index t requires samples up to t+maxR, so
	// when sample n-1 arrives we can evaluate t = n-1-maxR.
	t := e.seen - 1 - e.maxR
	if t < e.maxR {
		return 0, false
	}
	alpha := e.alphaAt(t)
	// Oscillations at centers <= t are never read again.
	for _, tr := range e.trk {
		tr.trim(t + 1)
	}
	return alpha, true
}

// PushColumns consumes a whole column of raw samples and appends the
// Hölder estimates it completes to out, returning the extended slice.
// It is the batch-first form of Push — the state after PushColumns(xs)
// is byte-identical to len(xs) calls of Push (asserted by the parity
// tests) — restructured for throughput:
//
//   - trackers consume the column rung-major (pushRange), keeping each
//     deque's cursors in registers across the batch;
//   - consumed oscillations are trimmed once at the end of the batch
//     instead of once per sample, turning n copy-downs into one (the
//     final osc/oscBase are the same either way);
//   - the log-oscillation regression is memoized on the exact
//     oscillation vector, so runs of unchanged window extrema — the
//     common case for real, quantized memory counters — skip the
//     math.Log calls entirely.
func (e *OscillationEstimator) PushColumns(xs []float64, out []float64) []float64 {
	if len(xs) == 0 {
		return out
	}
	idx0 := e.seen
	// Contiguous raw view [a0, idx0+len(xs)): retained tail + this batch.
	a0 := idx0 - len(e.rawTail)
	need := len(e.rawTail) + len(xs)
	if cap(e.rawScratch) < need {
		e.rawScratch = make([]float64, 0, need+e.tailCap)
	}
	a := append(append(e.rawScratch[:0], e.rawTail...), xs...)
	e.rawScratch = a[:0]
	for _, tr := range e.trk {
		if tr.vanHerkReady(a0, idx0, len(xs)) {
			tr.pushRangeBlocks(a, a0, idx0, len(xs))
		} else {
			tr.pushRange(idx0, xs)
		}
	}
	keep := len(a)
	if keep > e.tailCap {
		keep = e.tailCap
	}
	e.rawTail = append(e.rawTail[:0], a[len(a)-keep:]...)
	e.seen += len(xs)
	// Same emission rule as Push: sample n-1 completes center t = n-1-maxR,
	// which is evaluated once t >= maxR.
	tEnd := e.seen - 1 - e.maxR
	tStart := idx0 - e.maxR
	if tStart < e.maxR {
		tStart = e.maxR
	}
	if tEnd < tStart {
		return out
	}
	out = e.alphaMemoCols(tStart, tEnd, out)
	for _, tr := range e.trk {
		tr.trim(tEnd + 1)
	}
	return out
}

// alphaMemoCols appends alphaMemo(t) for every center in [tStart, tEnd]
// to out. It is the emission loop of PushColumns restructured around the
// memo's observation — the alpha changes only at centers where some
// rung's oscillation changes — in two passes: each rung's oscillation
// column is scanned sequentially once, flagging change centers, and the
// emission loop then replays the memoized alpha between flags and
// recomputes only at them (reloading every rung there, which is exactly
// the vector the per-center memo comparison would have seen). The
// recompute points, memo updates and arithmetic match alphaMemo
// step-for-step, so the emitted values — and the memo state left behind
// — are bit-identical.
func (e *OscillationEstimator) alphaMemoCols(tStart, tEnd int, out []float64) []float64 {
	oscs := e.emitOsc[:0]
	bases := e.emitBase[:0]
	for _, tr := range e.trk {
		oscs = append(oscs, tr.osc)
		bases = append(bases, tr.oscBase)
	}
	e.emitOsc, e.emitBase = oscs[:0], bases[:0]
	nT := tEnd - tStart + 1
	if cap(e.emitChanged) < nT {
		e.emitChanged = make([]uint8, nT+nT/4)
	}
	changed := e.emitChanged[:nT]
	for i := range changed {
		changed[i] = 0
	}
	if !e.memoOK {
		changed[0] = 1
	}
	memoOsc, memoLog := e.memoOsc, e.memoLog
	for i := range oscs {
		col := oscs[i][tStart-bases[i] : tEnd+1-bases[i]]
		prev := memoOsc[i]
		for t, v := range col {
			if v != prev {
				changed[t] = 1
				prev = v
			}
		}
	}
	alpha := e.memoAlpha
	for t, ch := range changed {
		if ch != 0 {
			for i := range oscs {
				osc := oscs[i][tStart+t-bases[i]]
				if osc != memoOsc[i] {
					memoOsc[i] = osc
					if osc > 0 {
						memoLog[i] = math.Log(osc)
					}
				}
			}
			alpha = e.memoSlope()
		}
		out = append(out, alpha)
	}
	return out
}

// memoSlope recomputes the regression slope from the memoized
// oscillation vector and re-arms the memo. Shared tail of alphaMemo and
// alphaMemoCols.
func (e *OscillationEstimator) memoSlope() float64 {
	alpha := 1.0 // locally constant / degenerate ladder: maximally smooth
	if e.sxx != 0 {
		ok := true
		for _, osc := range e.memoOsc {
			if osc <= 0 {
				ok = false
				break
			}
		}
		if ok {
			sum := 0.0
			for _, y := range e.memoLog {
				sum += y
			}
			my := sum / float64(len(e.memoLog))
			var sxy float64
			for i, y := range e.memoLog {
				sxy += (e.logR[i] - e.logRMean) * (y - my)
			}
			alpha = ClampAlpha(sxy / e.sxx)
		}
	}
	e.memoAlpha = alpha
	e.memoOK = true
	return alpha
}

// pushTail appends x to the raw-sample tail, keeping at least tailCap
// history with amortized O(1) copy-down (the backing array holds twice
// the cap).
func (e *OscillationEstimator) pushTail(x float64) {
	if len(e.rawTail) == cap(e.rawTail) {
		n := copy(e.rawTail, e.rawTail[len(e.rawTail)-e.tailCap:])
		e.rawTail = e.rawTail[:n]
	}
	e.rawTail = append(e.rawTail, x)
}

// alphaMemo is alphaAt with the pure-function memo described on the
// struct fields: identical oscillation vector in, identical bits out.
func (e *OscillationEstimator) alphaMemo(t int) float64 {
	same := e.memoOK
	for i, tr := range e.trk {
		osc := tr.at(t)
		if osc != e.memoOsc[i] {
			same = false
			e.memoOsc[i] = osc
			if osc > 0 {
				e.memoLog[i] = math.Log(osc)
			}
		}
	}
	if same {
		return e.memoAlpha
	}
	return e.memoSlope()
}

// alphaAt computes the oscillation Hölder exponent at raw index t from
// the incrementally maintained window extrema. It is FitAlpha with the
// x-axis statistics hoisted out: only the y mean and the cross term are
// data-dependent, and the slope is all the caller needs.
func (e *OscillationEstimator) alphaAt(t int) float64 {
	logO := e.scratchO[:0]
	for _, tr := range e.trk {
		osc := tr.at(t)
		if osc <= 0 {
			return 1 // locally constant: maximally smooth
		}
		logO = append(logO, math.Log(osc))
	}
	if e.sxx == 0 {
		return 1 // degenerate ladder of identical radii
	}
	sum := 0.0
	for _, y := range logO {
		sum += y
	}
	my := sum / float64(len(logO))
	var sxy float64
	for i, y := range logO {
		sxy += (e.logR[i] - e.logRMean) * (y - my)
	}
	return ClampAlpha(sxy / e.sxx)
}

// OscillationEstimatorState is the persistable state of the stage.
type OscillationEstimatorState struct {
	Radii    []int
	Seen     int
	Trackers []ExtremaState
}

// State snapshots the stage.
func (e *OscillationEstimator) State() OscillationEstimatorState {
	st := OscillationEstimatorState{
		Radii: append([]int(nil), e.radii...),
		Seen:  e.seen,
	}
	for _, tr := range e.trk {
		st.Trackers = append(st.Trackers, tr.state())
	}
	return st
}

// RestoreOscillationEstimator rebuilds an estimator from a snapshot.
func RestoreOscillationEstimator(st OscillationEstimatorState) (*OscillationEstimator, error) {
	e, err := NewOscillationEstimator(st.Radii)
	if err != nil {
		return nil, err
	}
	if len(st.Trackers) != len(e.trk) || st.Seen < 0 {
		return nil, fmt.Errorf("oscillation estimator: %d tracker states for ladder %v: %w",
			len(st.Trackers), st.Radii, ErrBadState)
	}
	for i, ts := range st.Trackers {
		if ts.R != e.radii[i] {
			return nil, fmt.Errorf("oscillation estimator: tracker %d radius %d != %d: %w",
				i, ts.R, e.radii[i], ErrBadState)
		}
		tr, err := restoreExtrema(ts)
		if err != nil {
			return nil, fmt.Errorf("oscillation estimator: tracker %d: %w", i, err)
		}
		e.trk[i] = tr
	}
	e.seen = st.Seen
	return e, nil
}
