// Package stream is the allocation-free streaming kernel of the aging
// detector: the per-sample pipeline the paper's method reduces to, cut
// into small composable stages. Each stage is a struct with a
// Push(x) (out, ok) method, performs zero heap allocations in steady
// state, and exposes a gob-encodable state mirror so long-running agents
// can snapshot and resume it.
//
// The pipeline, in order:
//
//		raw sample ──▶ OscillationEstimator ──▶ VolatilityWindow ──▶
//		              Standardizer ──▶ GatedDetector ──▶ jump alarms
//
//	  - OscillationEstimator turns the raw counter stream into the local
//	    Hölder exponent trajectory (log-log regression of window
//	    oscillation against a ladder of radii, maintained with monotonic
//	    ring deques).
//	  - VolatilityWindow tracks the moving standard deviation of that
//	    trajectory — the paper's "Hölder volatility".
//	  - Standardizer z-scores the volatility against a warmup baseline for
//	    detectors whose thresholds are defined in baseline-sigma units
//	    (CUSUM, Page–Hinkley); it is a pass-through otherwise.
//	  - GatedDetector runs a changepoint.Detector over the standardized
//	    stream with a refractory period after each alarm, so one physical
//	    change is not double counted.
//
// Both the online monitor (internal/aging.Monitor) and the offline
// trajectory estimator (internal/holder.Oscillation) are thin
// compositions of these stages, which makes their equivalence structural
// rather than test-enforced, and makes a new estimator (e.g. an online
// wavelet-leader stage) a drop-in replacement for the first stage.
package stream

import (
	"errors"
	"math"

	"agingmf/internal/stats"
)

// ErrBadConfig reports invalid stage parameters.
var ErrBadConfig = errors.New("stream: bad configuration")

// ErrBadState reports a state snapshot that cannot belong to the stage
// restoring it.
var ErrBadState = errors.New("stream: bad state")

// ClampAlpha restricts raw regression slopes to the meaningful Hölder
// range [0, 2]; estimates outside it are artefacts of degenerate windows.
func ClampAlpha(a float64) float64 {
	if math.IsNaN(a) {
		return 1
	}
	if a < 0 {
		return 0
	}
	if a > 2 {
		return 2
	}
	return a
}

// FitAlpha converts log-oscillation/log-radius points into a clamped
// Hölder estimate.
func FitAlpha(logR, logO []float64) float64 {
	fit, err := stats.OLS(logR, logO)
	if err != nil {
		return 1
	}
	return ClampAlpha(fit.Slope)
}
