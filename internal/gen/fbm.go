// Package gen generates synthetic signals with known fractal and
// multifractal properties. They serve two purposes in this repository:
// validating the Hölder/Hurst estimators against ground truth (experiment
// E1) and injecting genuinely self-similar load fluctuations into the
// workload generator so the simulated memory counters carry the structure
// the DSN 2003 paper measures on real machines.
package gen

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"agingmf/internal/dsp"
)

// ErrBadParameter is returned for out-of-range generator parameters.
var ErrBadParameter = errors.New("gen: bad parameter")

// validHurst reports whether h is a usable Hurst exponent.
func validHurst(h float64) bool { return h > 0 && h < 1 }

// fgnAutocov returns the autocovariance of fractional Gaussian noise with
// Hurst exponent h at lag k (unit variance).
func fgnAutocov(h float64, k int) float64 {
	fk := math.Abs(float64(k))
	h2 := 2 * h
	return 0.5 * (math.Pow(fk+1, h2) - 2*math.Pow(fk, h2) + math.Pow(math.Abs(fk-1), h2))
}

// FGNHosking generates n samples of unit-variance fractional Gaussian noise
// with Hurst exponent h using Hosking's exact recursive method (O(n^2)
// time, O(n) space). Deterministic given rng.
func FGNHosking(n int, h float64, rng *rand.Rand) ([]float64, error) {
	if n <= 0 {
		return nil, fmt.Errorf("fgn hosking n=%d: %w", n, ErrBadParameter)
	}
	if !validHurst(h) {
		return nil, fmt.Errorf("fgn hosking H=%v: %w (need 0<H<1)", h, ErrBadParameter)
	}
	out := make([]float64, n)
	phi := make([]float64, n)
	prevPhi := make([]float64, n)
	v := 1.0
	out[0] = rng.NormFloat64()
	for i := 1; i < n; i++ {
		// Durbin-Levinson recursion for the partial autocorrelations.
		phi[i-1] = fgnAutocov(h, i)
		for j := 0; j < i-1; j++ {
			phi[i-1] -= prevPhi[j] * fgnAutocov(h, i-1-j)
		}
		phi[i-1] /= v
		for j := 0; j < i-1; j++ {
			phi[j] = prevPhi[j] - phi[i-1]*prevPhi[i-2-j]
		}
		v *= 1 - phi[i-1]*phi[i-1]
		mean := 0.0
		for j := 0; j < i; j++ {
			mean += phi[j] * out[i-1-j]
		}
		out[i] = mean + math.Sqrt(v)*rng.NormFloat64()
		copy(prevPhi, phi[:i])
	}
	return out, nil
}

// FGNDaviesHarte generates n samples of unit-variance fractional Gaussian
// noise with Hurst exponent h by circulant embedding (Davies–Harte),
// running in O(n log n). n must be positive; internally the circulant is
// padded to a power of two.
func FGNDaviesHarte(n int, h float64, rng *rand.Rand) ([]float64, error) {
	if n <= 0 {
		return nil, fmt.Errorf("fgn davies-harte n=%d: %w", n, ErrBadParameter)
	}
	if !validHurst(h) {
		return nil, fmt.Errorf("fgn davies-harte H=%v: %w (need 0<H<1)", h, ErrBadParameter)
	}
	// Embed the covariance into a circulant of size 2m, m >= n a power of 2.
	m := 1
	for m < n {
		m <<= 1
	}
	size := 2 * m
	// First row of the circulant covariance.
	row := make([]complex128, size)
	for k := 0; k <= m; k++ {
		row[k] = complex(fgnAutocov(h, k), 0)
	}
	for k := m + 1; k < size; k++ {
		row[k] = row[size-k]
	}
	eig, err := dsp.FFT(row)
	if err != nil {
		return nil, fmt.Errorf("fgn davies-harte: eigenvalues: %w", err)
	}
	// Eigenvalues must be (numerically) non-negative for the embedding to
	// be valid; clamp tiny negatives caused by rounding.
	lam := make([]float64, size)
	for i, e := range eig {
		l := real(e)
		if l < 0 {
			if l < -1e-7 {
				return nil, fmt.Errorf("fgn davies-harte H=%v: negative circulant eigenvalue %v", h, l)
			}
			l = 0
		}
		lam[i] = l
	}
	// Synthesize complex Gaussian spectrum with the proper symmetry.
	w := make([]complex128, size)
	w[0] = complex(math.Sqrt(lam[0])*rng.NormFloat64(), 0)
	w[m] = complex(math.Sqrt(lam[m])*rng.NormFloat64(), 0)
	for k := 1; k < m; k++ {
		a := rng.NormFloat64()
		b := rng.NormFloat64()
		scale := math.Sqrt(lam[k] / 2)
		w[k] = complex(scale*a, scale*b)
		w[size-k] = complex(scale*a, -scale*b)
	}
	spec, err := dsp.FFT(w)
	if err != nil {
		return nil, fmt.Errorf("fgn davies-harte: synthesis: %w", err)
	}
	out := make([]float64, n)
	norm := 1 / math.Sqrt(float64(size))
	for i := 0; i < n; i++ {
		out[i] = real(spec[i]) * norm
	}
	return out, nil
}

// FBM generates n samples of fractional Brownian motion with Hurst
// exponent h (the cumulative sum of fractional Gaussian noise), starting
// at zero. Uses Davies–Harte synthesis.
func FBM(n int, h float64, rng *rand.Rand) ([]float64, error) {
	noise, err := FGNDaviesHarte(n, h, rng)
	if err != nil {
		return nil, fmt.Errorf("fbm: %w", err)
	}
	out := make([]float64, n)
	sum := 0.0
	for i, v := range noise {
		sum += v
		out[i] = sum
	}
	return out, nil
}

// RandomWalk generates a standard Gaussian random walk (H = 0.5 fBm up to
// scaling) with the given step standard deviation.
func RandomWalk(n int, stepStd float64, rng *rand.Rand) ([]float64, error) {
	if n <= 0 {
		return nil, fmt.Errorf("random walk n=%d: %w", n, ErrBadParameter)
	}
	if stepStd < 0 {
		return nil, fmt.Errorf("random walk stepStd=%v: %w", stepStd, ErrBadParameter)
	}
	out := make([]float64, n)
	sum := 0.0
	for i := range out {
		sum += stepStd * rng.NormFloat64()
		out[i] = sum
	}
	return out, nil
}
