package gen

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"agingmf/internal/dsp"
)

// Shuffle returns a random permutation of xs. Shuffling destroys all
// temporal correlations (and therefore all multifractality of temporal
// origin) while preserving the marginal distribution exactly — the
// standard surrogate for experiment E7.
func Shuffle(xs []float64, rng *rand.Rand) []float64 {
	out := append([]float64(nil), xs...)
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// PhaseRandomize returns a surrogate with the same power spectrum (hence
// the same linear correlations) as xs but randomized Fourier phases,
// destroying nonlinear structure. This isolates multifractality caused by
// the shape of the distribution and nonlinear correlations.
func PhaseRandomize(xs []float64, rng *rand.Rand) ([]float64, error) {
	n := len(xs)
	if n < 2 {
		return nil, fmt.Errorf("phase randomize n=%d: %w", n, ErrBadParameter)
	}
	spec, err := dsp.FFTReal(xs)
	if err != nil {
		return nil, fmt.Errorf("phase randomize: %w", err)
	}
	out := make([]complex128, n)
	out[0] = spec[0]
	half := n / 2
	for k := 1; k < half; k++ {
		phase := 2 * math.Pi * rng.Float64()
		mag := cmplx.Abs(spec[k])
		out[k] = cmplx.Rect(mag, phase)
		out[n-k] = cmplx.Conj(out[k])
	}
	if n%2 == 0 {
		// Nyquist bin must stay real to keep the signal real.
		out[half] = complex(cmplx.Abs(spec[half]), 0)
	} else {
		phase := 2 * math.Pi * rng.Float64()
		mag := cmplx.Abs(spec[half])
		out[half] = cmplx.Rect(mag, phase)
		out[n-half] = cmplx.Conj(out[half])
	}
	back, err := dsp.IFFT(out)
	if err != nil {
		return nil, fmt.Errorf("phase randomize: inverse: %w", err)
	}
	res := make([]float64, n)
	for i := range res {
		res[i] = real(back[i])
	}
	return res, nil
}
