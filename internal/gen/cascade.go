package gen

import (
	"fmt"
	"math"
	"math/rand"
)

// BinomialCascade generates a deterministic-length multiplicative binomial
// cascade measure of 2^levels cells. At every dyadic refinement the mass of
// a cell splits into fractions (m, 1-m) assigned to the left/right halves
// in random order. The result is the canonical multifractal measure: its
// singularity spectrum is the Legendre transform of
//
//	tau(q) = -log2(m^q + (1-m)^q).
//
// m must lie in (0, 0.5]; m = 0.5 degenerates to the uniform (monofractal)
// measure. Total mass is preserved exactly at every level.
func BinomialCascade(levels int, m float64, rng *rand.Rand) ([]float64, error) {
	if levels < 0 || levels > 30 {
		return nil, fmt.Errorf("binomial cascade levels=%d: %w (need 0..30)", levels, ErrBadParameter)
	}
	if m <= 0 || m > 0.5 {
		return nil, fmt.Errorf("binomial cascade m=%v: %w (need 0<m<=0.5)", m, ErrBadParameter)
	}
	mass := []float64{1}
	for l := 0; l < levels; l++ {
		next := make([]float64, 2*len(mass))
		for i, v := range mass {
			left := m
			if rng.Intn(2) == 0 {
				left = 1 - m
			}
			next[2*i] = v * left
			next[2*i+1] = v * (1 - left)
		}
		mass = next
	}
	return mass, nil
}

// BinomialCascadeTau returns the theoretical scaling exponent tau(q) of the
// binomial cascade with multiplier m.
func BinomialCascadeTau(m, q float64) float64 {
	return -math.Log2(math.Pow(m, q) + math.Pow(1-m, q))
}

// BinomialCascadeSpectrum returns the theoretical singularity-spectrum
// endpoints [alphaMin, alphaMax] of the binomial cascade with multiplier m:
// the Hölder exponents of the strongest and weakest singularities.
func BinomialCascadeSpectrum(m float64) (alphaMin, alphaMax float64) {
	a1 := -math.Log2(1 - m)
	a2 := -math.Log2(m)
	if a1 > a2 {
		a1, a2 = a2, a1
	}
	return a1, a2
}

// Weierstrass evaluates n samples over [0,1) of the Weierstrass function
//
//	W(t) = sum_{k=0}^{kmax} gamma^(-k*h) * sin(gamma^k * t + phase_k)
//
// which is continuous, nowhere differentiable, and has uniform pointwise
// Hölder exponent h everywhere. gamma > 1 controls lacunarity; random
// phases (from rng) decorrelate successive harmonics. kmax is chosen so
// the finest harmonic resolves at the sampling grid.
func Weierstrass(n int, h, gamma float64, rng *rand.Rand) ([]float64, error) {
	if n <= 0 {
		return nil, fmt.Errorf("weierstrass n=%d: %w", n, ErrBadParameter)
	}
	if h <= 0 || h >= 1 {
		return nil, fmt.Errorf("weierstrass h=%v: %w (need 0<h<1)", h, ErrBadParameter)
	}
	if gamma <= 1 {
		return nil, fmt.Errorf("weierstrass gamma=%v: %w (need gamma>1)", gamma, ErrBadParameter)
	}
	// Harmonics above the Nyquist scale of the grid contribute only
	// aliasing; stop once gamma^k exceeds ~n.
	kmax := int(math.Ceil(math.Log(float64(n)) / math.Log(gamma)))
	phases := make([]float64, kmax+1)
	for k := range phases {
		phases[k] = 2 * math.Pi * rng.Float64()
	}
	out := make([]float64, n)
	for i := range out {
		t := 2 * math.Pi * float64(i) / float64(n)
		sum := 0.0
		for k := 0; k <= kmax; k++ {
			gk := math.Pow(gamma, float64(k))
			sum += math.Pow(gk, -h) * math.Sin(gk*t+phases[k])
		}
		out[i] = sum
	}
	return out, nil
}

// LognormalCascadeNoise multiplies unit-variance Gaussian noise by a
// log-normal multiplicative cascade envelope, producing a signal whose
// increments are multifractal (a crude but standard model of bursty
// workload intensity). levels sets the cascade depth (output length
// 2^levels); sigma controls the multiplier spread and hence the
// multifractality strength (sigma=0 degenerates to plain Gaussian noise).
func LognormalCascadeNoise(levels int, sigma float64, rng *rand.Rand) ([]float64, error) {
	if levels < 0 || levels > 30 {
		return nil, fmt.Errorf("lognormal cascade levels=%d: %w (need 0..30)", levels, ErrBadParameter)
	}
	if sigma < 0 {
		return nil, fmt.Errorf("lognormal cascade sigma=%v: %w", sigma, ErrBadParameter)
	}
	env := []float64{1}
	for l := 0; l < levels; l++ {
		next := make([]float64, 2*len(env))
		for i, v := range env {
			// Mean-one log-normal multipliers keep expected mass constant.
			wl := math.Exp(sigma*rng.NormFloat64() - sigma*sigma/2)
			wr := math.Exp(sigma*rng.NormFloat64() - sigma*sigma/2)
			next[2*i] = v * wl
			next[2*i+1] = v * wr
		}
		env = next
	}
	out := make([]float64, len(env))
	for i := range out {
		out[i] = env[i] * rng.NormFloat64()
	}
	return out, nil
}
