package gen

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"agingmf/internal/stats"
)

func TestFGNAutocovariance(t *testing.T) {
	// Lag-0 autocovariance is 1 for all H; H=0.5 is white noise.
	for _, h := range []float64{0.2, 0.5, 0.8} {
		if got := fgnAutocov(h, 0); math.Abs(got-1) > 1e-12 {
			t.Errorf("fgnAutocov(H=%v, 0) = %v, want 1", h, got)
		}
	}
	if got := fgnAutocov(0.5, 1); math.Abs(got) > 1e-12 {
		t.Errorf("fgnAutocov(H=0.5, 1) = %v, want 0", got)
	}
	if got := fgnAutocov(0.8, 1); got <= 0 {
		t.Errorf("fgnAutocov(H=0.8, 1) = %v, want > 0 (persistence)", got)
	}
	if got := fgnAutocov(0.2, 1); got >= 0 {
		t.Errorf("fgnAutocov(H=0.2, 1) = %v, want < 0 (anti-persistence)", got)
	}
}

func TestFGNGeneratorsBasicStats(t *testing.T) {
	type generator struct {
		name string
		fn   func(int, float64, *rand.Rand) ([]float64, error)
		n    int
	}
	gens := []generator{
		{name: "hosking", fn: FGNHosking, n: 2000},
		{name: "davies-harte", fn: FGNDaviesHarte, n: 8192},
	}
	for _, g := range gens {
		for _, h := range []float64{0.3, 0.5, 0.7} {
			rng := rand.New(rand.NewSource(42))
			xs, err := g.fn(g.n, h, rng)
			if err != nil {
				t.Fatalf("%s H=%v: %v", g.name, h, err)
			}
			if len(xs) != g.n {
				t.Fatalf("%s H=%v: length %d", g.name, h, len(xs))
			}
			m := stats.Mean(xs)
			v := stats.Variance(xs)
			if math.Abs(m) > 0.15 {
				t.Errorf("%s H=%v: mean %v, want ~0", g.name, h, m)
			}
			if math.Abs(v-1) > 0.3 {
				t.Errorf("%s H=%v: variance %v, want ~1", g.name, h, v)
			}
		}
	}
}

func TestFGNLag1CorrelationSign(t *testing.T) {
	// Persistence (H>0.5) gives positive lag-1 autocorrelation; H<0.5 negative.
	rng := rand.New(rand.NewSource(7))
	for _, tt := range []struct {
		h        float64
		positive bool
	}{
		{h: 0.8, positive: true},
		{h: 0.2, positive: false},
	} {
		xs, err := FGNDaviesHarte(16384, tt.h, rng)
		if err != nil {
			t.Fatalf("FGN H=%v: %v", tt.h, err)
		}
		acf, err := stats.Autocorrelation(xs, 1)
		if err != nil {
			t.Fatalf("acf: %v", err)
		}
		if (acf[1] > 0) != tt.positive {
			t.Errorf("H=%v lag-1 ACF = %v, want positive=%v", tt.h, acf[1], tt.positive)
		}
		// Compare against the theoretical value.
		want := fgnAutocov(tt.h, 1)
		if math.Abs(acf[1]-want) > 0.05 {
			t.Errorf("H=%v lag-1 ACF = %v, theory %v", tt.h, acf[1], want)
		}
	}
}

func TestFGNVarianceScalingLaw(t *testing.T) {
	// Var of the aggregated fGn series at block m scales like m^(2H-2).
	rng := rand.New(rand.NewSource(99))
	h := 0.8
	xs, err := FGNDaviesHarte(1<<16, h, rng)
	if err != nil {
		t.Fatalf("FGN: %v", err)
	}
	var logM, logV []float64
	for _, m := range []int{1, 4, 16, 64} {
		nb := len(xs) / m
		agg := make([]float64, nb)
		for b := 0; b < nb; b++ {
			sum := 0.0
			for i := b * m; i < (b+1)*m; i++ {
				sum += xs[i]
			}
			agg[b] = sum / float64(m)
		}
		logM = append(logM, math.Log(float64(m)))
		logV = append(logV, math.Log(stats.Variance(agg)))
	}
	fit, err := stats.OLS(logM, logV)
	if err != nil {
		t.Fatalf("OLS: %v", err)
	}
	wantSlope := 2*h - 2
	if math.Abs(fit.Slope-wantSlope) > 0.25 {
		t.Errorf("aggregated-variance slope = %v, want ~%v", fit.Slope, wantSlope)
	}
}

func TestFGNErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, h := range []float64{0, 1, -0.5, 1.5} {
		if _, err := FGNHosking(10, h, rng); err == nil {
			t.Errorf("FGNHosking(H=%v) should fail", h)
		}
		if _, err := FGNDaviesHarte(10, h, rng); err == nil {
			t.Errorf("FGNDaviesHarte(H=%v) should fail", h)
		}
	}
	if _, err := FGNHosking(0, 0.5, rng); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := FGNDaviesHarte(-1, 0.5, rng); err == nil {
		t.Error("n<0 should fail")
	}
	if _, err := FBM(0, 0.5, rng); err == nil {
		t.Error("FBM n=0 should fail")
	}
}

func TestFBMStartsNearZeroAndDiffuses(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs, err := FBM(4096, 0.5, rng)
	if err != nil {
		t.Fatalf("FBM: %v", err)
	}
	// fBm variance grows like t^{2H}: late samples spread far beyond early.
	if math.Abs(xs[0]) > 5 {
		t.Errorf("fBm[0] = %v, want near 0", xs[0])
	}
	early := math.Abs(xs[10])
	lateMax := 0.0
	for _, v := range xs[2048:] {
		if a := math.Abs(v); a > lateMax {
			lateMax = a
		}
	}
	if lateMax <= early {
		t.Errorf("fBm did not diffuse: early %v, late max %v", early, lateMax)
	}
}

func TestRandomWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	xs, err := RandomWalk(1000, 2, rng)
	if err != nil {
		t.Fatalf("RandomWalk: %v", err)
	}
	if len(xs) != 1000 {
		t.Fatalf("length %d", len(xs))
	}
	// Steps should have std ~2.
	steps := make([]float64, len(xs)-1)
	for i := range steps {
		steps[i] = xs[i+1] - xs[i]
	}
	if s := stats.Std(steps); math.Abs(s-2) > 0.3 {
		t.Errorf("step std = %v, want ~2", s)
	}
	if _, err := RandomWalk(0, 1, rng); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := RandomWalk(10, -1, rng); err == nil {
		t.Error("negative std should fail")
	}
}

func TestBinomialCascadeMassConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, levels := range []int{0, 1, 5, 10} {
		mass, err := BinomialCascade(levels, 0.3, rng)
		if err != nil {
			t.Fatalf("cascade levels=%d: %v", levels, err)
		}
		if len(mass) != 1<<levels {
			t.Fatalf("levels=%d: %d cells, want %d", levels, len(mass), 1<<levels)
		}
		total := 0.0
		for _, v := range mass {
			if v < 0 {
				t.Fatalf("negative mass %v", v)
			}
			total += v
		}
		if math.Abs(total-1) > 1e-9 {
			t.Errorf("levels=%d: total mass %v, want 1", levels, total)
		}
	}
}

func TestBinomialCascadeExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	levels := 12
	m := 0.25
	mass, err := BinomialCascade(levels, m, rng)
	if err != nil {
		t.Fatalf("cascade: %v", err)
	}
	sorted := append([]float64(nil), mass...)
	sort.Float64s(sorted)
	// Smallest cell mass is m^levels, largest is (1-m)^levels.
	wantMin := math.Pow(m, float64(levels))
	wantMax := math.Pow(1-m, float64(levels))
	if sorted[0] < wantMin-1e-15 {
		t.Errorf("min mass %v below theoretical %v", sorted[0], wantMin)
	}
	if sorted[len(sorted)-1] > wantMax+1e-15 {
		t.Errorf("max mass %v above theoretical %v", sorted[len(sorted)-1], wantMax)
	}
	aMin, aMax := BinomialCascadeSpectrum(m)
	if aMin >= aMax {
		t.Errorf("spectrum endpoints %v >= %v", aMin, aMax)
	}
	// alphaMin = -log2(1-m) = 0.415..., alphaMax = -log2(m) = 2.
	if math.Abs(aMax-2) > 1e-12 {
		t.Errorf("alphaMax = %v, want 2", aMax)
	}
}

func TestBinomialCascadeTau(t *testing.T) {
	// tau(0) = -1 and tau(1) = 0 for any conservative cascade.
	for _, m := range []float64{0.2, 0.35, 0.5} {
		if got := BinomialCascadeTau(m, 0); math.Abs(got-(-1)) > 1e-12 {
			t.Errorf("tau(0) = %v, want -1", got)
		}
		if got := BinomialCascadeTau(m, 1); math.Abs(got) > 1e-12 {
			t.Errorf("tau(1) = %v, want 0", got)
		}
	}
	// Uniform cascade is monofractal: tau is linear, tau(2) = 1.
	if got := BinomialCascadeTau(0.5, 2); math.Abs(got-1) > 1e-12 {
		t.Errorf("uniform tau(2) = %v, want 1", got)
	}
}

func TestBinomialCascadeErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	if _, err := BinomialCascade(-1, 0.3, rng); err == nil {
		t.Error("negative levels should fail")
	}
	if _, err := BinomialCascade(31, 0.3, rng); err == nil {
		t.Error("huge levels should fail")
	}
	for _, m := range []float64{0, -0.1, 0.6, 1} {
		if _, err := BinomialCascade(3, m, rng); err == nil {
			t.Errorf("m=%v should fail", m)
		}
	}
}

func TestWeierstrassBoundedAndRough(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	xs, err := Weierstrass(4096, 0.5, 1.7, rng)
	if err != nil {
		t.Fatalf("Weierstrass: %v", err)
	}
	// Bounded by the geometric sum of amplitudes.
	bound := 0.0
	for k := 0; k < 64; k++ {
		bound += math.Pow(1.7, -0.5*float64(k))
	}
	for i, v := range xs {
		if math.Abs(v) > bound {
			t.Fatalf("W[%d] = %v exceeds bound %v", i, v, bound)
		}
	}
	// Roughness: smaller h means relatively larger high-frequency content.
	rough, err := Weierstrass(4096, 0.3, 1.7, rand.New(rand.NewSource(21)))
	if err != nil {
		t.Fatalf("Weierstrass: %v", err)
	}
	hf := func(ys []float64) float64 {
		sum := 0.0
		for i := 1; i < len(ys); i++ {
			d := ys[i] - ys[i-1]
			sum += d * d
		}
		return sum / stats.Variance(ys)
	}
	if hf(rough) <= hf(xs) {
		t.Errorf("h=0.3 relative increment energy %v <= h=0.5 %v", hf(rough), hf(xs))
	}
}

func TestWeierstrassErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	if _, err := Weierstrass(0, 0.5, 2, rng); err == nil {
		t.Error("n=0 should fail")
	}
	for _, h := range []float64{0, 1} {
		if _, err := Weierstrass(10, h, 2, rng); err == nil {
			t.Errorf("h=%v should fail", h)
		}
	}
	if _, err := Weierstrass(10, 0.5, 1, rng); err == nil {
		t.Error("gamma=1 should fail")
	}
}

func TestLognormalCascadeNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	xs, err := LognormalCascadeNoise(10, 0.4, rng)
	if err != nil {
		t.Fatalf("LognormalCascadeNoise: %v", err)
	}
	if len(xs) != 1024 {
		t.Fatalf("length %d, want 1024", len(xs))
	}
	// sigma=0 degenerates to plain N(0,1) noise.
	plain, err := LognormalCascadeNoise(10, 0, rand.New(rand.NewSource(31)))
	if err != nil {
		t.Fatalf("sigma=0: %v", err)
	}
	if k := stats.Kurtosis(plain); math.Abs(k) > 0.8 {
		t.Errorf("sigma=0 kurtosis = %v, want ~0", k)
	}
	// Cascade-modulated noise is heavy-tailed: higher kurtosis.
	if stats.Kurtosis(xs) <= stats.Kurtosis(plain) {
		t.Errorf("cascade kurtosis %v <= plain %v", stats.Kurtosis(xs), stats.Kurtosis(plain))
	}
	if _, err := LognormalCascadeNoise(-1, 0.4, rng); err == nil {
		t.Error("negative levels should fail")
	}
	if _, err := LognormalCascadeNoise(5, -1, rng); err == nil {
		t.Error("negative sigma should fail")
	}
}

func TestShufflePreservesMarginal(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	sh := Shuffle(xs, rng)
	if len(sh) != len(xs) {
		t.Fatalf("length %d", len(sh))
	}
	a := append([]float64(nil), xs...)
	b := append([]float64(nil), sh...)
	sort.Float64s(a)
	sort.Float64s(b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("marginal changed: %v vs %v", a, b)
		}
	}
	// Original must be untouched.
	if xs[0] != 1 || xs[7] != 8 {
		t.Error("Shuffle mutated its input")
	}
}

func TestPhaseRandomizePreservesSpectrum(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	xs := make([]float64, 256)
	for i := range xs {
		xs[i] = math.Sin(2*math.Pi*5*float64(i)/256) + 0.5*rng.NormFloat64()
	}
	sur, err := PhaseRandomize(xs, rng)
	if err != nil {
		t.Fatalf("PhaseRandomize: %v", err)
	}
	if len(sur) != len(xs) {
		t.Fatalf("length %d", len(sur))
	}
	// Energy must be preserved (Parseval + magnitude preservation).
	var eIn, eOut float64
	for i := range xs {
		eIn += xs[i] * xs[i]
		eOut += sur[i] * sur[i]
	}
	if math.Abs(eIn-eOut) > 1e-6*eIn {
		t.Errorf("energy in=%v out=%v", eIn, eOut)
	}
	// The surrogate must differ from the original (phases randomized).
	same := true
	for i := range xs {
		if math.Abs(xs[i]-sur[i]) > 1e-9 {
			same = false
			break
		}
	}
	if same {
		t.Error("surrogate identical to original")
	}
	if _, err := PhaseRandomize([]float64{1}, rng); err == nil {
		t.Error("n<2 should fail")
	}
}

func TestPhaseRandomizeOddLength(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	xs := make([]float64, 255)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	sur, err := PhaseRandomize(xs, rng)
	if err != nil {
		t.Fatalf("PhaseRandomize odd: %v", err)
	}
	var eIn, eOut float64
	for i := range xs {
		eIn += xs[i] * xs[i]
		eOut += sur[i] * sur[i]
	}
	if math.Abs(eIn-eOut) > 1e-6*eIn {
		t.Errorf("odd-length energy in=%v out=%v", eIn, eOut)
	}
}

func TestGeneratorsDeterministicGivenSeed(t *testing.T) {
	a, err := FGNDaviesHarte(128, 0.7, rand.New(rand.NewSource(77)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := FGNDaviesHarte(128, 0.7, rand.New(rand.NewSource(77)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("FGNDaviesHarte not deterministic for fixed seed")
		}
	}
}
