package gen

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBinomialCascadeConservationQuick(t *testing.T) {
	// Mass conservation must hold for every multiplier and depth.
	f := func(rawM float64, rawLevels uint8) bool {
		m := 0.05 + math.Abs(math.Mod(rawM, 0.45)) // m in (0.05, 0.5)
		if math.IsNaN(m) {
			return true
		}
		levels := int(rawLevels % 13)
		mass, err := BinomialCascade(levels, m, rand.New(rand.NewSource(int64(rawLevels))))
		if err != nil {
			return false
		}
		if len(mass) != 1<<levels {
			return false
		}
		total := 0.0
		minWant := math.Pow(m, float64(levels))
		maxWant := math.Pow(1-m, float64(levels))
		for _, v := range mass {
			if v < minWant-1e-12 || v > maxWant+1e-12 {
				return false
			}
			total += v
		}
		return math.Abs(total-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestShuffleIsPermutationQuick(t *testing.T) {
	f := func(seed int64, raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		sh := Shuffle(raw, rand.New(rand.NewSource(seed)))
		if len(sh) != len(raw) {
			return false
		}
		// Multiset equality via sums of several transforms is fragile
		// with NaN; compare sorted copies elementwise using bit patterns.
		a := append([]float64(nil), raw...)
		b := append([]float64(nil), sh...)
		sortBits(a)
		sortBits(b)
		for i := range a {
			if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// sortBits sorts floats by their IEEE bit pattern (total order, NaN-safe).
func sortBits(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && math.Float64bits(xs[j]) < math.Float64bits(xs[j-1]); j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func TestFGNUnitVarianceAcrossHQuick(t *testing.T) {
	// Davies-Harte output is (asymptotically) unit variance for every H.
	f := func(rawH float64) bool {
		h := 0.15 + math.Abs(math.Mod(rawH, 0.7))
		if math.IsNaN(h) {
			return true
		}
		xs, err := FGNDaviesHarte(4096, h, rand.New(rand.NewSource(int64(h*1e6))))
		if err != nil {
			return false
		}
		sum, sumSq := 0.0, 0.0
		for _, v := range xs {
			sum += v
			sumSq += v * v
		}
		n := float64(len(xs))
		mean := sum / n
		variance := sumSq/n - mean*mean
		// Long-memory sample variance is noisy; a generous band still
		// catches normalization bugs (factor-of-2 errors etc).
		return variance > 0.5 && variance < 1.7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
