package agingmf_test

import (
	"fmt"
	"testing"

	"agingmf"
	"agingmf/internal/experiment"
)

// benchExperiment runs a registered experiment end to end — one benchmark
// per reconstructed table/figure of the paper's evaluation, as required by
// the reproduction protocol. Quick mode keeps the per-iteration cost at
// campaign scale rather than full-paper scale; cmd/experiments (without
// -quick) regenerates the full-size artifacts.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiment.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		// A fresh seed per iteration defeats the campaign memoizer so the
		// benchmark measures real work.
		rep, err := e.Run(experiment.RunConfig{Seed: int64(i + 1), Quick: true})
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if len(rep.Tables) == 0 {
			b.Fatalf("%s: empty report", id)
		}
	}
}

// BenchmarkE1HolderEstimation reproduces the estimator-validation table.
func BenchmarkE1HolderEstimation(b *testing.B) { benchExperiment(b, "E1") }

// BenchmarkE2RunToCrash reproduces the raw counter trajectory figures.
func BenchmarkE2RunToCrash(b *testing.B) { benchExperiment(b, "E2") }

// BenchmarkE3HolderTrajectory reproduces the Hölder trajectory figures.
func BenchmarkE3HolderTrajectory(b *testing.B) { benchExperiment(b, "E3") }

// BenchmarkE4VolatilityJumps reproduces the volatility/jump figure.
func BenchmarkE4VolatilityJumps(b *testing.B) { benchExperiment(b, "E4") }

// BenchmarkE5Campaign reproduces the jump/crash chronology table.
func BenchmarkE5Campaign(b *testing.B) { benchExperiment(b, "E5") }

// BenchmarkE6Spectrum reproduces the spectrum-widening figure.
func BenchmarkE6Spectrum(b *testing.B) { benchExperiment(b, "E6") }

// BenchmarkE7Surrogate reproduces the surrogate-comparison figure.
func BenchmarkE7Surrogate(b *testing.B) { benchExperiment(b, "E7") }

// BenchmarkE8Detectors reproduces the detector-comparison table.
func BenchmarkE8Detectors(b *testing.B) { benchExperiment(b, "E8") }

// BenchmarkE9Rejuvenation reproduces the rejuvenation pay-off table.
func BenchmarkE9Rejuvenation(b *testing.B) { benchExperiment(b, "E9") }

// BenchmarkE10Sensitivity runs the detector/window ablation (extension).
func BenchmarkE10Sensitivity(b *testing.B) { benchExperiment(b, "E10") }

// BenchmarkE11FaultInjection runs the fault-injection latency experiment
// (extension).
func BenchmarkE11FaultInjection(b *testing.B) { benchExperiment(b, "E11") }

// BenchmarkE12WorkloadValidation runs the workload self-similarity
// validation (extension).
func BenchmarkE12WorkloadValidation(b *testing.B) { benchExperiment(b, "E12") }

// --- micro-benchmarks of the hot paths behind the experiments ---

// BenchmarkMonitorAdd measures the per-sample cost of the online monitor,
// the number that determines production monitoring overhead.
func BenchmarkMonitorAdd(b *testing.B) {
	mon, err := agingmf.NewMonitor(agingmf.DefaultMonitorConfig())
	if err != nil {
		b.Fatal(err)
	}
	xs, err := agingmf.FBM(1<<16, 0.6, agingmf.NewRand(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mon.Add(xs[i%len(xs)])
	}
}

// BenchmarkMonitorAddBatch measures the batched entry point at several
// batch sizes, normalized to ns/sample against BenchmarkMonitorAdd. The
// per-sample kernel work is identical (batching is a wire/queue
// optimization); this pins down the remaining per-call overhead.
func BenchmarkMonitorAddBatch(b *testing.B) {
	for _, size := range []int{16, 256} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			mon, err := agingmf.NewMonitor(agingmf.DefaultMonitorConfig())
			if err != nil {
				b.Fatal(err)
			}
			xs, err := agingmf.FBM(1<<16, 0.6, agingmf.NewRand(1))
			if err != nil {
				b.Fatal(err)
			}
			off := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if off+size > len(xs) {
					off = 0
				}
				mon.AddBatch(xs[off : off+size])
				off += size
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*size), "ns/sample")
		})
	}
}

// BenchmarkMonitorAddColumns measures the columnar kernel chain — the
// batch-first path binary wire frames take — at the frame sizes the
// binary protocol ships, normalized to ns/sample against
// BenchmarkMonitorAdd and BenchmarkMonitorAddBatch. Unlike AddBatch,
// which loops the per-sample pipeline, AddColumns runs stage-at-a-time
// kernels (block extrema, memoized regression), so this is the number
// the ISSUE's end-to-end throughput target rests on.
func BenchmarkMonitorAddColumns(b *testing.B) {
	for _, size := range []int{256, 4096} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			mon, err := agingmf.NewMonitor(agingmf.DefaultMonitorConfig())
			if err != nil {
				b.Fatal(err)
			}
			xs, err := agingmf.FBM(1<<16, 0.6, agingmf.NewRand(1))
			if err != nil {
				b.Fatal(err)
			}
			off := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if off+size > len(xs) {
					off = 0
				}
				mon.AddColumns(xs[off : off+size])
				off += size
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*size), "ns/sample")
		})
	}
}

// benchMonitorAdd feeds a pre-synthesised fBm series to a fresh monitor.
func benchMonitorAdd(b *testing.B, reg *agingmf.Registry) {
	b.Helper()
	mon, err := agingmf.NewMonitor(agingmf.DefaultMonitorConfig())
	if err != nil {
		b.Fatal(err)
	}
	mon.Instrument(reg)
	xs, err := agingmf.FBM(1<<16, 0.6, agingmf.NewRand(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mon.Add(xs[i%len(xs)])
	}
}

// BenchmarkMonitorAddUninstrumented is Add with no registry attached: the
// telemetry guard must keep this within noise (<2%) of the pre-telemetry
// BenchmarkMonitorAdd baseline.
func BenchmarkMonitorAddUninstrumented(b *testing.B) { benchMonitorAdd(b, nil) }

// BenchmarkMonitorAddInstrumented is Add with live counters, gauges and
// the latency histogram — the price of turning telemetry on.
func BenchmarkMonitorAddInstrumented(b *testing.B) {
	benchMonitorAdd(b, agingmf.NewRegistry())
}

// BenchmarkMachineStep measures one simulator tick under a mixed process
// population.
func BenchmarkMachineStep(b *testing.B) {
	mcfg := agingmf.DefaultMachineConfig()
	mcfg.SwapPages = 1 << 24 // effectively unbounded: no crash mid-benchmark
	m, err := agingmf.NewMachine(mcfg, agingmf.NewRand(2))
	if err != nil {
		b.Fatal(err)
	}
	specs := []agingmf.ProcSpec{
		{Name: "leaky", BaseWorkingSet: 512, ChurnPages: 64, LeakPagesPerTick: 0.5},
		{Name: "bursty", BaseWorkingSet: 256, ChurnPages: 128, BurstOnProb: 0.05, BurstOffProb: 0.2, BurstMultiplier: 4},
		{Name: "steady", BaseWorkingSet: 1024, ChurnPages: 32},
	}
	for _, s := range specs {
		if _, err := m.Spawn(s); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMFDFA measures a full multifractal analysis of a 16Ki-sample
// series.
func BenchmarkMFDFA(b *testing.B) {
	xs, err := agingmf.LognormalCascadeNoise(14, 0.4, agingmf.NewRand(3))
	if err != nil {
		b.Fatal(err)
	}
	cfg := agingmf.DefaultMFDFAConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := agingmf.MFDFA(xs, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFGNDaviesHarte measures fGn synthesis (ablation partner of the
// O(n^2) Hosking method below).
func BenchmarkFGNDaviesHarte(b *testing.B) {
	rng := agingmf.NewRand(4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := agingmf.FGNDaviesHarte(1<<14, 0.7, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFGNHosking is the exact O(n^2) synthesis on a smaller n for
// comparison with Davies-Harte.
func BenchmarkFGNHosking(b *testing.B) {
	rng := agingmf.NewRand(5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := agingmf.FGNHosking(1<<11, 0.7, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOscillationTrajectory measures the batch Hölder estimator.
func BenchmarkOscillationTrajectory(b *testing.B) {
	xs, err := agingmf.FBM(1<<14, 0.5, agingmf.NewRand(6))
	if err != nil {
		b.Fatal(err)
	}
	s := agingmf.SeriesFromValues("bench", xs)
	cfg := agingmf.DefaultHolderConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := agingmf.OscillationTrajectory(s, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHurstDFA measures the monofractal baseline estimator.
func BenchmarkHurstDFA(b *testing.B) {
	xs, err := agingmf.FGNDaviesHarte(1<<14, 0.7, agingmf.NewRand(7))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := agingmf.DFA(xs, 1); err != nil {
			b.Fatal(err)
		}
	}
}
