// Package agingmf is a Go reproduction of "Software Aging and
// Multifractality of Memory Resources" (Shereshevsky, Cukic, Crowell,
// Gandikota, Liu — DSN 2003): online detection of software aging from the
// multifractal structure of operating-system memory counters.
//
// The package re-exports the user-facing API of the internal packages:
//
//   - the aging Monitor (the paper's contribution): stream a memory
//     counter in, get Hölder-volatility jump alarms and aging phases out;
//   - the analysis toolkit it is built on: pointwise Hölder estimation,
//     Hurst estimators, MF-DFA multifractal spectra, change detectors;
//   - the simulated substrate standing in for the paper's instrumented
//     Windows workstations: a page-level memory-subsystem simulator, a
//     heavy-tailed stress workload, and a counter collector;
//   - prior-work baselines (trend extrapolation, windowed Hurst) and
//     rejuvenation-policy evaluation.
//
// Quickstart:
//
//	machine, _ := agingmf.NewMachine(agingmf.DefaultMachineConfig(), rng)
//	driver, _ := agingmf.NewDriver(machine, agingmf.DefaultWorkload(), nil, rng2)
//	trace, _ := agingmf.Collect(machine, driver, agingmf.DefaultCollect())
//	result, _ := agingmf.Analyze(trace.FreeMemory, agingmf.DefaultMonitorConfig())
//	fmt.Println(result.FinalPhase, len(result.Jumps))
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reconstructed evaluation (runnable via cmd/experiments).
package agingmf
