package agingmf_test

import (
	"testing"

	"agingmf"
)

// Ablation benchmarks for the design choices called out in DESIGN.md §5:
// each pair lets `go test -bench` quantify the cost side of a design
// trade whose quality side is covered by the tests and experiments.

// BenchmarkWaveletLeaderTrajectory is the ablation partner of
// BenchmarkOscillationTrajectory (estimator choice for the Hölder
// trajectory).
func BenchmarkWaveletLeaderTrajectory(b *testing.B) {
	xs, err := agingmf.FBM(1<<14, 0.5, agingmf.NewRand(11))
	if err != nil {
		b.Fatal(err)
	}
	s := agingmf.SeriesFromValues("bench", xs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := agingmf.WaveletLeaderTrajectory(s, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMFDFAOrder2 is the ablation partner of BenchmarkMFDFA
// (detrending order 1 vs 2).
func BenchmarkMFDFAOrder2(b *testing.B) {
	xs, err := agingmf.LognormalCascadeNoise(14, 0.4, agingmf.NewRand(12))
	if err != nil {
		b.Fatal(err)
	}
	cfg := agingmf.DefaultMFDFAConfig()
	cfg.Order = 2
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := agingmf.MFDFA(xs, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStructureFunction benches the positive-moment alternative to
// MF-DFA.
func BenchmarkStructureFunction(b *testing.B) {
	xs, err := agingmf.FBM(1<<14, 0.6, agingmf.NewRand(13))
	if err != nil {
		b.Fatal(err)
	}
	qs := []float64{0.5, 1, 2, 3, 4, 5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := agingmf.StructureFunction(xs, qs); err != nil {
			b.Fatal(err)
		}
	}
}

// benchMonitorDetector measures the online monitor under each jump
// detector (Shewhart vs CUSUM vs Page–Hinkley).
func benchMonitorDetector(b *testing.B, kind agingmf.DetectorKind) {
	b.Helper()
	cfg := agingmf.DefaultMonitorConfig()
	cfg.Detector = kind
	mon, err := agingmf.NewMonitor(cfg)
	if err != nil {
		b.Fatal(err)
	}
	xs, err := agingmf.FBM(1<<16, 0.6, agingmf.NewRand(14))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mon.Add(xs[i%len(xs)])
	}
}

// BenchmarkMonitorAddCUSUM is the CUSUM ablation of BenchmarkMonitorAdd.
func BenchmarkMonitorAddCUSUM(b *testing.B) { benchMonitorDetector(b, agingmf.DetectCUSUM) }

// BenchmarkMonitorAddPageHinkley is the Page–Hinkley ablation.
func BenchmarkMonitorAddPageHinkley(b *testing.B) { benchMonitorDetector(b, agingmf.DetectPageHinkley) }

// BenchmarkMonitorAddBounded measures the bounded-memory monitor — the
// configuration a production agent would run indefinitely.
func BenchmarkMonitorAddBounded(b *testing.B) {
	cfg := agingmf.DefaultMonitorConfig()
	cfg.HistoryLimit = 1024
	mon, err := agingmf.NewMonitor(cfg)
	if err != nil {
		b.Fatal(err)
	}
	xs, err := agingmf.FBM(1<<16, 0.6, agingmf.NewRand(18))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mon.Add(xs[i%len(xs)])
	}
}

// BenchmarkHiguchi benches the Higuchi dimension estimator (cross-check
// of the Hurst family).
func BenchmarkHiguchi(b *testing.B) {
	xs, err := agingmf.FBM(1<<14, 0.5, agingmf.NewRand(15))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := agingmf.Higuchi(xs, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHurstPeriodogram benches the spectral Hurst estimator.
func BenchmarkHurstPeriodogram(b *testing.B) {
	xs, err := agingmf.FGNDaviesHarte(1<<14, 0.7, agingmf.NewRand(16))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := agingmf.HurstPeriodogram(xs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCrashPredictorAdd measures the hybrid predictor's per-sample
// cost (dual monitor + deferred trend fits).
func BenchmarkCrashPredictorAdd(b *testing.B) {
	p, err := agingmf.NewCrashPredictor(agingmf.DefaultPredictorConfig(1 << 30))
	if err != nil {
		b.Fatal(err)
	}
	free, err := agingmf.FBM(1<<16, 0.6, agingmf.NewRand(17))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Add(free[i%len(free)], float64(i))
	}
}
