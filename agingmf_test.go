package agingmf_test

import (
	"bytes"
	"testing"

	"agingmf"
)

// TestPublicAPIEndToEnd drives the whole pipeline through the facade the
// way a downstream user would: simulate a machine to crash, collect the
// counters, analyze them, and compare against a baseline detector.
func TestPublicAPIEndToEnd(t *testing.T) {
	mcfg := agingmf.DefaultMachineConfig()
	mcfg.RAMPages = 16384
	mcfg.SwapPages = 6144
	machine, err := agingmf.NewMachine(mcfg, agingmf.NewRand(7))
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	wcfg := agingmf.DefaultWorkload()
	wcfg.Server.LeakPagesPerTick = 4
	driver, err := agingmf.NewDriver(machine, wcfg, nil, agingmf.NewRand(8))
	if err != nil {
		t.Fatalf("NewDriver: %v", err)
	}
	ccfg := agingmf.DefaultCollect()
	ccfg.MaxTicks = 30000
	trace, err := agingmf.Collect(machine, driver, ccfg)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if trace.Crash == agingmf.CrashNone {
		t.Fatal("machine did not crash under the leaky workload")
	}

	monCfg := agingmf.DefaultMonitorConfig()
	monCfg.VolatilityWindow = 128
	monCfg.DetectorWarmup = 512
	monCfg.Refractory = 128
	res, err := agingmf.Analyze(trace.FreeMemory, monCfg)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if res.Holder.Len() == 0 || res.Volatility.Len() == 0 {
		t.Fatal("analysis produced empty series")
	}

	// Baseline comparison through the facade.
	tcfg := agingmf.DefaultTrendConfig()
	tcfg.Window = 512
	det, err := agingmf.NewTrendDetector(tcfg)
	if err != nil {
		t.Fatalf("NewTrendDetector: %v", err)
	}
	warned := false
	for _, v := range trace.FreeMemory.Values {
		if _, fired := det.Add(v); fired {
			warned = true
		}
	}
	if !warned {
		t.Error("trend baseline never warned on a run-to-crash trace")
	}

	// CSV round trip through the facade.
	var buf bytes.Buffer
	if err := agingmf.WriteTraceCSV(&buf, trace); err != nil {
		t.Fatalf("WriteTraceCSV: %v", err)
	}
	cols, err := agingmf.ReadSeriesCSV(&buf)
	if err != nil {
		t.Fatalf("ReadSeriesCSV: %v", err)
	}
	if len(cols) != 4 || cols[0].Len() != trace.FreeMemory.Len() {
		t.Errorf("CSV round trip: %d columns, %d samples", len(cols), cols[0].Len())
	}
}

func TestPublicAPIOnlineMonitor(t *testing.T) {
	mon, err := agingmf.NewMonitor(agingmf.DefaultMonitorConfig())
	if err != nil {
		t.Fatalf("NewMonitor: %v", err)
	}
	if mon.Phase() != agingmf.PhaseHealthy {
		t.Errorf("initial phase = %v", mon.Phase())
	}
	xs, err := agingmf.FBM(4096, 0.6, agingmf.NewRand(1))
	if err != nil {
		t.Fatalf("FBM: %v", err)
	}
	for _, v := range xs {
		mon.Add(v)
	}
	if mon.SamplesSeen() != len(xs) {
		t.Errorf("samples seen = %d", mon.SamplesSeen())
	}
}

func TestPublicAPIMultifractalToolkit(t *testing.T) {
	noise, err := agingmf.LognormalCascadeNoise(12, 0.4, agingmf.NewRand(2))
	if err != nil {
		t.Fatalf("LognormalCascadeNoise: %v", err)
	}
	res, err := agingmf.MFDFA(noise, agingmf.DefaultMFDFAConfig())
	if err != nil {
		t.Fatalf("MFDFA: %v", err)
	}
	if res.Spectrum.Width() <= 0 {
		t.Errorf("spectrum width = %v", res.Spectrum.Width())
	}
	est, err := agingmf.DFA(noise, 1)
	if err != nil {
		t.Fatalf("DFA: %v", err)
	}
	if est.H <= 0 || est.H >= 1.5 {
		t.Errorf("DFA H = %v", est.H)
	}
}

func TestPublicAPIRejuvenation(t *testing.T) {
	model := agingmf.HuangModel{
		RateDegrade: 0.01, RateFail: 0.02, RateRepair: 0.5,
		RateRejuv: 0.05, RateRestart: 5,
	}
	ss, err := model.Solve()
	if err != nil {
		t.Fatalf("HuangModel.Solve: %v", err)
	}
	if a := ss.Availability(); a <= 0 || a >= 1 {
		t.Errorf("availability = %v", a)
	}
	if _, err := agingmf.NewPeriodicPolicy(1000); err != nil {
		t.Errorf("NewPeriodicPolicy: %v", err)
	}
}
