module agingmf

go 1.22
