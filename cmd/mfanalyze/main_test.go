package main

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"agingmf"
)

// syntheticCSV renders a two-column CSV with a sine and a noisy walk.
func syntheticCSV(t *testing.T, n int) string {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	smooth := make([]float64, n)
	rough := make([]float64, n)
	level := 0.0
	for i := 0; i < n; i++ {
		smooth[i] = math.Sin(2 * math.Pi * float64(i) / 64)
		level += rng.NormFloat64()
		rough[i] = level
	}
	a, err := agingmf.NewSeries("smooth", time.Unix(0, 0).UTC(), time.Second, smooth)
	if err != nil {
		t.Fatal(err)
	}
	b, err := agingmf.NewSeries("rough", time.Unix(0, 0).UTC(), time.Second, rough)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := agingmf.WriteSeriesCSV(&buf, a, b); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestRunAnalyzesDefaultColumn(t *testing.T) {
	in := strings.NewReader(syntheticCSV(t, 4096))
	var out bytes.Buffer
	if err := run(nil, in, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	text := out.String()
	for _, want := range []string{`series "smooth"`, "DFA-1 exponent", "MF-DFA h(q)", "aging phase"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestRunSelectsColumn(t *testing.T) {
	in := strings.NewReader(syntheticCSV(t, 2048))
	var out bytes.Buffer
	if err := run([]string{"-column", "rough"}, in, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), `series "rough"`) {
		t.Errorf("wrong column analyzed:\n%s", out.String())
	}
}

func TestRunUnknownColumn(t *testing.T) {
	in := strings.NewReader(syntheticCSV(t, 256))
	var out bytes.Buffer
	err := run([]string{"-column", "nope"}, in, &out)
	if err == nil {
		t.Fatal("unknown column should fail")
	}
	if !strings.Contains(err.Error(), "smooth") {
		t.Errorf("error should list available columns: %v", err)
	}
}

func TestRunShortSeriesDegradesGracefully(t *testing.T) {
	in := strings.NewReader(syntheticCSV(t, 128))
	var out bytes.Buffer
	if err := run(nil, in, &out); err != nil {
		t.Fatalf("run on short input: %v", err)
	}
	if !strings.Contains(out.String(), "aging analysis skipped") {
		t.Errorf("short series should skip the aging analysis:\n%s", out.String())
	}
}

func TestRunBadInput(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, strings.NewReader("not,a,csv"), &out); err == nil {
		t.Error("malformed input should fail")
	}
	if err := run([]string{"-file", "/nonexistent/x.csv"}, nil, &out); err == nil {
		t.Error("missing file should fail")
	}
	if err := run([]string{"-zzz"}, nil, &out); err == nil {
		t.Error("unknown flag should fail")
	}
}
