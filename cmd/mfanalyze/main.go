// Command mfanalyze runs the offline multifractal aging analysis on any
// counter CSV (as produced by stressgen, or any file with a "timestamp"
// column followed by value columns): global Hurst estimates, MF-DFA
// generalized Hurst exponents and spectrum, and the Hölder-volatility
// jump report of the aging monitor. The Hölder trajectory and the jump
// report both run on the internal/stream kernel the online daemon uses,
// so offline analysis and live detection agree sample for sample.
//
// Usage:
//
//	mfanalyze [-column NAME] [-file FILE]    (default: stdin, first column)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"agingmf"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mfanalyze:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("mfanalyze", flag.ContinueOnError)
	var (
		file   = fs.String("file", "", "input CSV (default stdin)")
		column = fs.String("column", "", "column to analyze (default: first)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	in := stdin
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	columns, err := agingmf.ReadSeriesCSV(in)
	if err != nil {
		return err
	}
	s := columns[0]
	if *column != "" {
		found := false
		for _, c := range columns {
			if c.Name == *column {
				s = c
				found = true
				break
			}
		}
		if !found {
			names := make([]string, len(columns))
			for i, c := range columns {
				names[i] = c.Name
			}
			return fmt.Errorf("column %q not found; have %v", *column, names)
		}
	}
	fmt.Fprintf(stdout, "series %q: %d samples, step %v\n", s.Name, s.Len(), s.Step)
	if sum, err := s.Summarize(); err == nil {
		fmt.Fprintf(stdout, "summary: %v\n", sum)
	}

	// Global scaling estimates on the increments.
	diff, err := s.Diff()
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
	if est, err := agingmf.DFA(diff.Values, 1); err == nil {
		fmt.Fprintf(tw, "DFA-1 exponent\t%.4f\t(R2 %.3f)\n", est.H, est.R2)
	}
	if est, err := agingmf.HurstRS(diff.Values); err == nil {
		fmt.Fprintf(tw, "R/S Hurst\t%.4f\t(R2 %.3f)\n", est.H, est.R2)
	}
	if est, err := agingmf.HurstPeriodogram(diff.Values); err == nil {
		fmt.Fprintf(tw, "periodogram Hurst\t%.4f\t(R2 %.3f)\n", est.H, est.R2)
	}
	if est, err := agingmf.Higuchi(s.Values, 0); err == nil {
		fmt.Fprintf(tw, "Higuchi dimension\t%.4f\t(R2 %.3f)\n", est.H, est.R2)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	// Multifractal spectrum.
	if res, err := agingmf.MFDFA(diff.Values, agingmf.DefaultMFDFAConfig()); err == nil {
		fmt.Fprintf(stdout, "\nMF-DFA h(q) (spectrum width %.4f):\n", res.Spectrum.Width())
		tw = tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "q\th(q)\ttau(q)")
		for i, q := range res.Qs {
			fmt.Fprintf(tw, "%.1f\t%.4f\t%.4f\n", q, res.Hq[i], res.Tau[i])
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	} else {
		fmt.Fprintf(stdout, "MF-DFA skipped: %v\n", err)
	}

	// Aging monitor report.
	res, err := agingmf.Analyze(s, agingmf.DefaultMonitorConfig())
	if err != nil {
		fmt.Fprintf(stdout, "aging analysis skipped: %v\n", err)
		return nil
	}
	fmt.Fprintf(stdout, "\naging phase: %v (%d volatility jumps)\n", res.FinalPhase, len(res.Jumps))
	for i, j := range res.Jumps {
		fmt.Fprintf(stdout, "  jump %d at sample %d (time %v), volatility %.4f\n",
			i+1, j.SampleIndex, s.TimeAt(j.SampleIndex), j.Volatility)
	}
	return nil
}
