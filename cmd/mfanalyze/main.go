// Command mfanalyze runs the offline multifractal aging analysis on any
// counter CSV (as produced by stressgen, or any file with a "timestamp"
// column followed by value columns): global Hurst estimates, MF-DFA
// generalized Hurst exponents and spectrum, and the Hölder-volatility
// jump report of the aging monitor. The Hölder trajectory and the jump
// report both run on the internal/stream kernel the online daemon uses,
// so offline analysis and live detection agree sample for sample.
//
// SIGINT/SIGTERM interrupt the analysis gracefully between stages (the
// results already printed stand); a second signal force-exits.
//
// Usage:
//
//	mfanalyze [-column NAME] [-file FILE]    (default: stdin, first column)
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"agingmf"
	"agingmf/internal/runtime"
)

// options is the parsed flag surface of one mfanalyze run.
type options struct {
	file   string
	column string
}

// newFlagSet declares the mfanalyze flag surface — names and defaults
// are part of the command's compatibility contract (pinned by the
// flag-surface test).
func newFlagSet(opt *options) *flag.FlagSet {
	fs := flag.NewFlagSet("mfanalyze", flag.ContinueOnError)
	fs.StringVar(&opt.file, "file", "", "input CSV (default stdin)")
	fs.StringVar(&opt.column, "column", "", "column to analyze (default: first)")
	return fs
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mfanalyze:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	var opt options
	if err := newFlagSet(&opt).Parse(args); err != nil {
		return err
	}

	// A signal interrupts the analysis at the next stage boundary (and
	// aborts a blocked stdin read); partial results already printed
	// stand. A second signal force-exits.
	ctx, stop := runtime.NotifyContext(context.Background(), runtime.SignalOptions{})
	defer stop()
	interrupted := func() bool {
		if sig, ok := runtime.Signal(ctx); ok {
			fmt.Fprintf(stdout, "interrupted: received %v, stopping analysis\n", sig)
			return true
		}
		return false
	}

	var in io.Reader = runtime.ContextReader{Ctx: ctx, R: stdin}
	if opt.file != "" {
		f, err := os.Open(opt.file)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	columns, err := agingmf.ReadSeriesCSV(in)
	if err != nil {
		if interrupted() {
			return nil
		}
		return err
	}
	s := columns[0]
	if opt.column != "" {
		found := false
		for _, c := range columns {
			if c.Name == opt.column {
				s = c
				found = true
				break
			}
		}
		if !found {
			names := make([]string, len(columns))
			for i, c := range columns {
				names[i] = c.Name
			}
			return fmt.Errorf("column %q not found; have %v", opt.column, names)
		}
	}
	fmt.Fprintf(stdout, "series %q: %d samples, step %v\n", s.Name, s.Len(), s.Step)
	if sum, err := s.Summarize(); err == nil {
		fmt.Fprintf(stdout, "summary: %v\n", sum)
	}

	// Global scaling estimates on the increments.
	diff, err := s.Diff()
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
	if est, err := agingmf.DFA(diff.Values, 1); err == nil {
		fmt.Fprintf(tw, "DFA-1 exponent\t%.4f\t(R2 %.3f)\n", est.H, est.R2)
	}
	if est, err := agingmf.HurstRS(diff.Values); err == nil {
		fmt.Fprintf(tw, "R/S Hurst\t%.4f\t(R2 %.3f)\n", est.H, est.R2)
	}
	if est, err := agingmf.HurstPeriodogram(diff.Values); err == nil {
		fmt.Fprintf(tw, "periodogram Hurst\t%.4f\t(R2 %.3f)\n", est.H, est.R2)
	}
	if est, err := agingmf.Higuchi(s.Values, 0); err == nil {
		fmt.Fprintf(tw, "Higuchi dimension\t%.4f\t(R2 %.3f)\n", est.H, est.R2)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if interrupted() {
		return nil
	}

	// Multifractal spectrum.
	if res, err := agingmf.MFDFA(diff.Values, agingmf.DefaultMFDFAConfig()); err == nil {
		fmt.Fprintf(stdout, "\nMF-DFA h(q) (spectrum width %.4f):\n", res.Spectrum.Width())
		tw = tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "q\th(q)\ttau(q)")
		for i, q := range res.Qs {
			fmt.Fprintf(tw, "%.1f\t%.4f\t%.4f\n", q, res.Hq[i], res.Tau[i])
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	} else {
		fmt.Fprintf(stdout, "MF-DFA skipped: %v\n", err)
	}
	if interrupted() {
		return nil
	}

	// Aging monitor report.
	res, err := agingmf.Analyze(s, agingmf.DefaultMonitorConfig())
	if err != nil {
		fmt.Fprintf(stdout, "aging analysis skipped: %v\n", err)
		return nil
	}
	fmt.Fprintf(stdout, "\naging phase: %v (%d volatility jumps)\n", res.FinalPhase, len(res.Jumps))
	for i, j := range res.Jumps {
		fmt.Fprintf(stdout, "  jump %d at sample %d (time %v), volatility %.4f\n",
			i+1, j.SampleIndex, s.TimeAt(j.SampleIndex), j.Volatility)
	}
	return nil
}
