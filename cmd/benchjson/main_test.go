package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: agingmf
cpu: AMD EPYC 7J13 64-Core Processor
BenchmarkMonitorAdd-8   	  754396	      1592 ns/op	      12 B/op	       0 allocs/op
PASS
ok  	agingmf	1.374s
goos: linux
goarch: amd64
pkg: agingmf/internal/ingest
BenchmarkIngestTraceOverhead/off-8         	     100	     91042 ns/op	        355.6 ns/sample
BenchmarkIngestTraceOverhead/sampled=1024-8	     100	     90100 ns/op	        352.0 ns/sample
PASS
ok  	agingmf/internal/ingest	0.412s
`

func TestRunConvertsBenchOutput(t *testing.T) {
	var out strings.Builder
	if err := run(strings.NewReader(sampleOutput), &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(out.String()), &snap); err != nil {
		t.Fatalf("output not JSON: %v\n%s", err, out.String())
	}
	if snap.Date == "" || snap.Go == "" || snap.GOOS != "linux" || snap.GOARCH != "amd64" {
		t.Errorf("bad envelope: %+v", snap)
	}
	if snap.CPU != "AMD EPYC 7J13 64-Core Processor" {
		t.Errorf("CPU = %q", snap.CPU)
	}
	if len(snap.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(snap.Benchmarks))
	}
	b := snap.Benchmarks[0]
	if b.Name != "BenchmarkMonitorAdd" || b.Package != "agingmf" || b.Iterations != 754396 {
		t.Errorf("first benchmark = %+v", b)
	}
	if b.Metrics["ns/op"] != 1592 || b.Metrics["B/op"] != 12 || b.Metrics["allocs/op"] != 0 {
		t.Errorf("first metrics = %v", b.Metrics)
	}
	sub := snap.Benchmarks[1]
	if sub.Name != "BenchmarkIngestTraceOverhead/off" || sub.Package != "agingmf/internal/ingest" {
		t.Errorf("sub-benchmark = %+v", sub)
	}
	if sub.Metrics["ns/sample"] != 355.6 {
		t.Errorf("custom metric = %v", sub.Metrics)
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	var out strings.Builder
	if err := run(strings.NewReader("PASS\nok  \tagingmf\t0.1s\n"), &out); err == nil {
		t.Error("no result lines accepted silently")
	}
}

func TestParseResultMalformed(t *testing.T) {
	for _, line := range []string{
		"BenchmarkX-8",
		"BenchmarkX-8 notanumber 12 ns/op",
		"BenchmarkX-8 100 twelve ns/op",
	} {
		if _, err := parseResult(line, ""); err == nil {
			t.Errorf("%q parsed without error", line)
		}
	}
}

func TestParseResultKeepsUnsuffixedName(t *testing.T) {
	b, err := parseResult("BenchmarkSolo 100 5 ns/op", "p")
	if err != nil {
		t.Fatalf("parseResult: %v", err)
	}
	if b.Name != "BenchmarkSolo" {
		t.Errorf("name = %q", b.Name)
	}
}
