// Command benchjson converts `go test -bench -benchmem` output on stdin
// into a machine-readable JSON snapshot on stdout, so benchmark numbers
// can be committed and diffed across changes instead of living in
// scrollback. It understands the standard text format: `pkg:`,
// `goos:`/`goarch:`/`cpu:` headers and `BenchmarkName-P  N  X ns/op ...`
// result lines; everything else (PASS, ok, test log noise) is ignored.
//
// Usage:
//
//	go test -run XXX -bench . -benchmem ./... | benchjson > BENCH_$(date +%F).json
//
// The `make bench-json` target runs the curated hot-path subset.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the benchmark name with the -P GOMAXPROCS suffix stripped
	// (sub-benchmark slashes preserved).
	Name string `json:"name"`
	// Package is the import path from the preceding pkg: header ("" when
	// the input carried none, e.g. a single-package run).
	Package string `json:"package"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit -> value for every "value unit" pair on the line
	// (ns/op, B/op, allocs/op, plus any b.ReportMetric extras).
	Metrics map[string]float64 `json:"metrics"`
}

// Snapshot is the output document.
type Snapshot struct {
	Date       string      `json:"date"`
	Go         string      `json:"go"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	if err := run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(stdin io.Reader, stdout io.Writer) error {
	snap, err := parse(stdin)
	if err != nil {
		return err
	}
	if len(snap.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark result lines on stdin (pipe `go test -bench` output in)")
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// parse reads the text protocol. Parsing is strict only on lines that
// claim to be benchmark results: a Benchmark... line that does not parse
// is an error (silently dropping results would corrupt the snapshot),
// while all surrounding chatter is skipped.
func parse(r io.Reader) (Snapshot, error) {
	snap := Snapshot{
		Date:   time.Now().UTC().Format("2006-01-02"),
		Go:     runtime.Version(),
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
	}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "goos: "):
			snap.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			snap.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			snap.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseResult(line, pkg)
			if err != nil {
				return snap, err
			}
			snap.Benchmarks = append(snap.Benchmarks, b)
		}
	}
	return snap, sc.Err()
}

// parseResult decodes one result line:
//
//	BenchmarkShardRouter-8   754396   1592 ns/op   0 B/op   0 allocs/op
func parseResult(line, pkg string) (Benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 || len(fields)%2 != 0 {
		return Benchmark{}, fmt.Errorf("malformed result line: %q", line)
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("iteration count in %q: %w", line, err)
	}
	b := Benchmark{Name: name, Package: pkg, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("metric value in %q: %w", line, err)
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, nil
}
