// Command stressgen plays the role of the paper's data-collection rig: it
// drives a simulated machine to failure under the synthetic stress
// workload and writes the sampled memory counters as CSV (the input
// format of mfanalyze).
//
// SIGINT/SIGTERM end the collection gracefully: the partial trace is
// still written, terminated by a "# truncated: ..." comment line (which
// the CSV readers skip), so an interrupted run keeps its data. A second
// signal force-exits a stuck drain.
//
// With -events the rig appends structured JSONL progress records
// (run_start, crash, run_done, ...) to a file, "-" meaning stdout —
// handy when a fleet of stressgen invocations runs under a supervisor.
//
// Usage:
//
//	stressgen [-seed N] [-ram-mib N] [-swap-mib N] [-leak PAGES]
//	          [-max-ticks N] [-sample-every N] [-out FILE] [-events FILE]
//	          [-wire csv|text|binary] [-wire-source ID] [-wire-batch N]
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"agingmf"
	"agingmf/internal/ingest"
	"agingmf/internal/runtime"
	"agingmf/internal/source"
)

// options is the parsed flag surface of one stressgen run.
type options struct {
	seed       int64
	ramMiB     int
	swapMiB    int
	leak       float64
	maxTicks   int
	every      int
	out        string
	events     string
	wire       string
	wireSource string
	wireBatch  int
}

// newFlagSet declares the stressgen flag surface — names and defaults
// are part of the command's compatibility contract (pinned by the
// flag-surface test).
func newFlagSet(opt *options) *flag.FlagSet {
	fs := flag.NewFlagSet("stressgen", flag.ContinueOnError)
	fs.Int64Var(&opt.seed, "seed", 1, "random seed")
	fs.IntVar(&opt.ramMiB, "ram-mib", 64, "physical memory in MiB")
	fs.IntVar(&opt.swapMiB, "swap-mib", 24, "swap space in MiB")
	fs.Float64Var(&opt.leak, "leak", 3.5, "server leak rate in pages/tick")
	fs.IntVar(&opt.maxTicks, "max-ticks", 60000, "simulation horizon in ticks")
	fs.IntVar(&opt.every, "sample-every", 1, "sample the counters every N ticks")
	fs.StringVar(&opt.out, "out", "", "output CSV file (default stdout)")
	fs.StringVar(&opt.events, "events", "", `append JSONL progress events to this file ("-" = stdout, empty disables)`)
	fs.StringVar(&opt.wire, "wire", "csv", `output format: "csv" (mfanalyze input), "text" (fleet batch lines) or "binary" (columnar frames), the latter two ready to pipe into agingd/agingmon`)
	fs.StringVar(&opt.wireSource, "wire-source", "stressgen", "source id stamped on -wire text/binary output")
	fs.IntVar(&opt.wireBatch, "wire-batch", 256, "samples per -wire text line / binary frame")
	return fs
}

// writeWire emits the recorded trace in one of the fleet wire protocols
// instead of CSV: batched text lines (ingest.FormatBatch) or binary
// columnar frames (source.AppendFrame), opt.wireBatch samples per unit,
// stamped with opt.wireSource. Either output pipes straight into
// agingmon -stdin or an agingd listener.
func writeWire(w io.Writer, snk *source.TraceSink, opt options) error {
	free, swap := snk.Columns()
	bw := bufio.NewWriter(w)
	var (
		pairs [][2]float64
		frame []byte
	)
	for off := 0; off < len(free); off += opt.wireBatch {
		end := min(off+opt.wireBatch, len(free))
		if opt.wire == "text" {
			pairs = pairs[:0]
			for i := off; i < end; i++ {
				pairs = append(pairs, [2]float64{free[i], swap[i]})
			}
			if _, err := bw.WriteString(ingest.FormatBatch(ingest.Batch{Source: opt.wireSource, Pairs: pairs})); err != nil {
				return err
			}
			if err := bw.WriteByte('\n'); err != nil {
				return err
			}
			continue
		}
		cb := source.ColumnarBatch{Source: opt.wireSource, Free: free[off:end], Swap: swap[off:end]}
		var err error
		frame, err = source.AppendFrame(frame[:0], &cb)
		if err != nil {
			return err
		}
		if _, err := bw.Write(frame); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "stressgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	var opt options
	if err := newFlagSet(&opt).Parse(args); err != nil {
		return err
	}
	if opt.every < 1 {
		return fmt.Errorf("sample every %d ticks: %w", opt.every, source.ErrBadConfig)
	}
	switch opt.wire {
	case "csv", "text", "binary":
	default:
		return fmt.Errorf("wire format %q (want csv, text or binary): %w", opt.wire, source.ErrBadConfig)
	}
	if opt.wireBatch < 1 {
		return fmt.Errorf("wire batch %d: %w", opt.wireBatch, source.ErrBadConfig)
	}

	ev, closeEvents, err := runtime.OpenEvents(opt.events)
	if err != nil {
		return err
	}
	defer closeEvents()
	ev.Info("run_start", agingmf.EventFields{
		"seed": opt.seed, "ram_mib": opt.ramMiB, "swap_mib": opt.swapMiB,
		"leak": opt.leak, "max_ticks": opt.maxTicks,
	})

	mcfg := agingmf.DefaultMachineConfig()
	mcfg.RAMPages = opt.ramMiB << 20 / mcfg.PageSize
	mcfg.SwapPages = opt.swapMiB << 20 / mcfg.PageSize
	wcfg := agingmf.DefaultWorkload()
	wcfg.Server.LeakPagesPerTick = opt.leak
	src, err := source.NewSim(source.SimConfig{
		Seed: opt.seed, Machine: mcfg, Workload: wcfg,
		MaxTicks: opt.maxTicks, SampleEvery: opt.every, Events: ev,
	})
	if err != nil {
		return err
	}
	snk := source.NewTraceSink(mcfg.TickDuration*time.Duration(opt.every), opt.every)

	// SIGINT/SIGTERM truncate the collection gracefully: the loop stops
	// between samples and the partial trace is still written below, with
	// a truncation marker so downstream tooling can tell it apart from a
	// natural end. A second signal force-exits a stuck drain.
	ctx, stop := runtime.NotifyContext(context.Background(), runtime.SignalOptions{})
	defer stop()

	var truncatedBy os.Signal
	for {
		it, err := src.Next(ctx)
		if err == io.EOF {
			break
		}
		if err != nil {
			if sig, ok := runtime.Signal(ctx); ok {
				truncatedBy = sig
				break
			}
			return err
		}
		if err := snk.Write(it); err != nil {
			return err
		}
		if it.Crash != agingmf.CrashNone {
			break // run-to-failure: the crash tick ends the collection
		}
	}

	w := stdout
	if opt.out != "" {
		f, err := os.Create(opt.out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch opt.wire {
	case "csv":
		if err := snk.WriteCSV(w); err != nil {
			return err
		}
	default:
		if err := writeWire(w, snk, opt); err != nil {
			return err
		}
	}
	if truncatedBy != nil {
		// The CSV readers and the text wire parser both skip '#' comment
		// lines; a binary frame stream has no comment form, so the marker
		// survives only as the structured event.
		if opt.wire != "binary" {
			fmt.Fprintf(w, "# truncated: received %v after %d samples\n", truncatedBy, snk.Len())
		}
		ev.Warn("run_truncated", agingmf.EventFields{
			"signal": truncatedBy.String(), "samples": snk.Len(),
		})
	}
	fmt.Fprintf(os.Stderr, "stressgen: %d samples, crash=%v at tick %d\n",
		snk.Len(), snk.Crash(), snk.CrashTick())
	ev.Info("run_done", agingmf.EventFields{
		"seed":       opt.seed,
		"samples":    snk.Len(),
		"crash":      snk.Crash().String(),
		"crash_tick": snk.CrashTick(),
	})
	return ev.Err()
}
