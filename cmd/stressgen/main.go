// Command stressgen plays the role of the paper's data-collection rig: it
// drives a simulated machine to failure under the synthetic stress
// workload and writes the sampled memory counters as CSV (the input
// format of mfanalyze).
//
// Usage:
//
//	stressgen [-seed N] [-ram-mib N] [-swap-mib N] [-leak PAGES]
//	          [-max-ticks N] [-sample-every N] [-out FILE]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"agingmf"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "stressgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("stressgen", flag.ContinueOnError)
	var (
		seed     = fs.Int64("seed", 1, "random seed")
		ramMiB   = fs.Int("ram-mib", 64, "physical memory in MiB")
		swapMiB  = fs.Int("swap-mib", 24, "swap space in MiB")
		leak     = fs.Float64("leak", 3.5, "server leak rate in pages/tick")
		maxTicks = fs.Int("max-ticks", 60000, "simulation horizon in ticks")
		every    = fs.Int("sample-every", 1, "sample the counters every N ticks")
		out      = fs.String("out", "", "output CSV file (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	mcfg := agingmf.DefaultMachineConfig()
	mcfg.RAMPages = *ramMiB << 20 / mcfg.PageSize
	mcfg.SwapPages = *swapMiB << 20 / mcfg.PageSize
	machine, err := agingmf.NewMachine(mcfg, agingmf.NewRand(*seed))
	if err != nil {
		return err
	}
	wcfg := agingmf.DefaultWorkload()
	wcfg.Server.LeakPagesPerTick = *leak
	driver, err := agingmf.NewDriver(machine, wcfg, nil, agingmf.NewRand(*seed+1))
	if err != nil {
		return err
	}
	trace, err := agingmf.Collect(machine, driver, agingmf.CollectConfig{
		TicksPerSample: *every,
		MaxTicks:       *maxTicks,
		StopOnCrash:    true,
	})
	if err != nil {
		return err
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := agingmf.WriteTraceCSV(w, trace); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "stressgen: %d samples, crash=%v at tick %d\n",
		trace.Len(), trace.Crash, trace.CrashTick())
	return nil
}
