// Command stressgen plays the role of the paper's data-collection rig: it
// drives a simulated machine to failure under the synthetic stress
// workload and writes the sampled memory counters as CSV (the input
// format of mfanalyze).
//
// With -events the rig appends structured JSONL progress records
// (run_start, crash, run_done, ...) to a file, "-" meaning stdout —
// handy when a fleet of stressgen invocations runs under a supervisor.
//
// Usage:
//
//	stressgen [-seed N] [-ram-mib N] [-swap-mib N] [-leak PAGES]
//	          [-max-ticks N] [-sample-every N] [-out FILE] [-events FILE]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"agingmf"
)

// openEvents builds the optional JSONL event sink; the returned closer
// is always safe to call.
func openEvents(path string) (*agingmf.Events, func(), error) {
	switch path {
	case "":
		return nil, func() {}, nil
	case "-":
		return agingmf.NewEvents(os.Stdout, agingmf.LevelInfo), func() {}, nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, func() {}, fmt.Errorf("open events file: %w", err)
	}
	return agingmf.NewEvents(f, agingmf.LevelInfo), func() { f.Close() }, nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "stressgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("stressgen", flag.ContinueOnError)
	var (
		seed     = fs.Int64("seed", 1, "random seed")
		ramMiB   = fs.Int("ram-mib", 64, "physical memory in MiB")
		swapMiB  = fs.Int("swap-mib", 24, "swap space in MiB")
		leak     = fs.Float64("leak", 3.5, "server leak rate in pages/tick")
		maxTicks = fs.Int("max-ticks", 60000, "simulation horizon in ticks")
		every    = fs.Int("sample-every", 1, "sample the counters every N ticks")
		out      = fs.String("out", "", "output CSV file (default stdout)")
		evPath   = fs.String("events", "", `append JSONL progress events to this file ("-" = stdout, empty disables)`)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	ev, closeEvents, err := openEvents(*evPath)
	if err != nil {
		return err
	}
	defer closeEvents()
	ev.Info("run_start", agingmf.EventFields{
		"seed": *seed, "ram_mib": *ramMiB, "swap_mib": *swapMiB,
		"leak": *leak, "max_ticks": *maxTicks,
	})

	mcfg := agingmf.DefaultMachineConfig()
	mcfg.RAMPages = *ramMiB << 20 / mcfg.PageSize
	mcfg.SwapPages = *swapMiB << 20 / mcfg.PageSize
	machine, err := agingmf.NewMachine(mcfg, agingmf.NewRand(*seed))
	if err != nil {
		return err
	}
	machine.Instrument(nil, ev)
	wcfg := agingmf.DefaultWorkload()
	wcfg.Server.LeakPagesPerTick = *leak
	driver, err := agingmf.NewDriver(machine, wcfg, nil, agingmf.NewRand(*seed+1))
	if err != nil {
		return err
	}
	trace, err := agingmf.Collect(machine, driver, agingmf.CollectConfig{
		TicksPerSample: *every,
		MaxTicks:       *maxTicks,
		StopOnCrash:    true,
	})
	if err != nil {
		return err
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := agingmf.WriteTraceCSV(w, trace); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "stressgen: %d samples, crash=%v at tick %d\n",
		trace.Len(), trace.Crash, trace.CrashTick())
	ev.Info("run_done", agingmf.EventFields{
		"seed":       *seed,
		"samples":    trace.Len(),
		"crash":      trace.Crash.String(),
		"crash_tick": trace.CrashTick(),
	})
	return ev.Err()
}
