package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"agingmf"
	"agingmf/internal/ingest"
	"agingmf/internal/source"
)

func TestRunWritesParsableCSV(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-seed", "3", "-max-ticks", "500"}, &buf)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	cols, err := agingmf.ReadSeriesCSV(&buf)
	if err != nil {
		t.Fatalf("output not parsable: %v", err)
	}
	if len(cols) != 4 {
		t.Fatalf("columns = %d, want 4", len(cols))
	}
	wantNames := []string{"free_memory_bytes", "used_swap_bytes", "swap_traffic_pages", "processes"}
	for i, want := range wantNames {
		if cols[i].Name != want {
			t.Errorf("column %d = %q, want %q", i, cols[i].Name, want)
		}
	}
	if cols[0].Len() < 400 {
		t.Errorf("samples = %d", cols[0].Len())
	}
}

func TestRunWritesToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.csv")
	var buf bytes.Buffer
	if err := run([]string{"-max-ticks", "200", "-out", path}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read output: %v", err)
	}
	if !strings.HasPrefix(string(data), "timestamp,") {
		t.Errorf("file does not start with CSV header: %.60s", data)
	}
	if buf.Len() != 0 {
		t.Error("stdout written despite -out")
	}
}

func TestRunSampleDecimation(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-max-ticks", "400", "-sample-every", "10"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	cols, err := agingmf.ReadSeriesCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n := cols[0].Len(); n < 35 || n > 45 {
		t.Errorf("decimated samples = %d, want ~40", n)
	}
}

func TestRunBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-nope"}, &buf); err == nil {
		t.Error("unknown flag should fail")
	}
	if err := run([]string{"-sample-every", "0", "-max-ticks", "10"}, &buf); err == nil {
		t.Error("zero sampling interval should fail")
	}
}

func TestRunEventsJSONL(t *testing.T) {
	evPath := filepath.Join(t.TempDir(), "events.jsonl")
	var buf bytes.Buffer
	// A big leak on a small machine crashes within the horizon, so the
	// stream carries run_start, crash and run_done.
	if err := run([]string{"-seed", "1", "-ram-mib", "8", "-swap-mib", "4",
		"-leak", "64", "-max-ticks", "60000", "-events", evPath}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(evPath)
	if err != nil {
		t.Fatalf("read events: %v", err)
	}
	types := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("event line not JSON: %q: %v", line, err)
		}
		types[rec["event"].(string)] = true
	}
	for _, want := range []string{"run_start", "crash", "run_done"} {
		if !types[want] {
			t.Errorf("no %q event (saw %v)", want, types)
		}
	}
}

func TestRunEventsOpenFailure(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-events", t.TempDir() + "/no/such/e.jsonl", "-max-ticks", "10"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "open events file") {
		t.Errorf("unopenable events path not reported, got: %v", err)
	}
}

// TestRunWireFormats runs the same collection in both wire formats and
// cross-checks them sample for sample: the text lines parse with the
// fleet batch parser, the binary frames decode with the frame decoder,
// and the two decoded streams are bit-identical (both protocols are
// lossless). This is the generator-side differential counterpart of the
// ingest-side frame fuzzing.
func TestRunWireFormats(t *testing.T) {
	var text, bin bytes.Buffer
	if err := run([]string{"-seed", "5", "-max-ticks", "700", "-wire", "text", "-wire-batch", "64", "-wire-source", "rig-1"}, &text); err != nil {
		t.Fatalf("run -wire text: %v", err)
	}
	if err := run([]string{"-seed", "5", "-max-ticks", "700", "-wire", "binary", "-wire-batch", "64", "-wire-source", "rig-1"}, &bin); err != nil {
		t.Fatalf("run -wire binary: %v", err)
	}

	var fromText [][2]float64
	for _, line := range strings.Split(strings.TrimSpace(text.String()), "\n") {
		b, err := ingest.ParseBatch(line)
		if err != nil {
			t.Fatalf("text line does not parse: %v\n%.80s", err, line)
		}
		if b.Source != "rig-1" {
			t.Fatalf("text batch source = %q", b.Source)
		}
		if len(b.Pairs) > 64 {
			t.Fatalf("text batch of %d samples exceeds -wire-batch", len(b.Pairs))
		}
		fromText = append(fromText, b.Pairs...)
	}

	var fromBin [][2]float64
	src := source.NewFrames(bytes.NewReader(bin.Bytes()), 0)
	defer src.Close()
	for {
		it, err := src.Next(context.Background())
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("binary frame does not decode: %v", err)
		}
		if it.Source != "rig-1" {
			t.Fatalf("frame source = %q", it.Source)
		}
		fromBin = append(fromBin, it.Pairs...)
	}

	if len(fromText) == 0 || len(fromText) != len(fromBin) {
		t.Fatalf("decoded %d text vs %d binary samples", len(fromText), len(fromBin))
	}
	for i := range fromText {
		if fromText[i] != fromBin[i] {
			t.Fatalf("sample %d: text %v != binary %v", i, fromText[i], fromBin[i])
		}
	}
}
