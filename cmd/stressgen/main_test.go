package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"agingmf"
)

func TestRunWritesParsableCSV(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-seed", "3", "-max-ticks", "500"}, &buf)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	cols, err := agingmf.ReadSeriesCSV(&buf)
	if err != nil {
		t.Fatalf("output not parsable: %v", err)
	}
	if len(cols) != 4 {
		t.Fatalf("columns = %d, want 4", len(cols))
	}
	wantNames := []string{"free_memory_bytes", "used_swap_bytes", "swap_traffic_pages", "processes"}
	for i, want := range wantNames {
		if cols[i].Name != want {
			t.Errorf("column %d = %q, want %q", i, cols[i].Name, want)
		}
	}
	if cols[0].Len() < 400 {
		t.Errorf("samples = %d", cols[0].Len())
	}
}

func TestRunWritesToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.csv")
	var buf bytes.Buffer
	if err := run([]string{"-max-ticks", "200", "-out", path}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read output: %v", err)
	}
	if !strings.HasPrefix(string(data), "timestamp,") {
		t.Errorf("file does not start with CSV header: %.60s", data)
	}
	if buf.Len() != 0 {
		t.Error("stdout written despite -out")
	}
}

func TestRunSampleDecimation(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-max-ticks", "400", "-sample-every", "10"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	cols, err := agingmf.ReadSeriesCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n := cols[0].Len(); n < 35 || n > 45 {
		t.Errorf("decimated samples = %d, want ~40", n)
	}
}

func TestRunBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-nope"}, &buf); err == nil {
		t.Error("unknown flag should fail")
	}
	if err := run([]string{"-sample-every", "0", "-max-ticks", "10"}, &buf); err == nil {
		t.Error("zero sampling interval should fail")
	}
}

func TestRunEventsJSONL(t *testing.T) {
	evPath := filepath.Join(t.TempDir(), "events.jsonl")
	var buf bytes.Buffer
	// A big leak on a small machine crashes within the horizon, so the
	// stream carries run_start, crash and run_done.
	if err := run([]string{"-seed", "1", "-ram-mib", "8", "-swap-mib", "4",
		"-leak", "64", "-max-ticks", "60000", "-events", evPath}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(evPath)
	if err != nil {
		t.Fatalf("read events: %v", err)
	}
	types := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("event line not JSON: %q: %v", line, err)
		}
		types[rec["event"].(string)] = true
	}
	for _, want := range []string{"run_start", "crash", "run_done"} {
		if !types[want] {
			t.Errorf("no %q event (saw %v)", want, types)
		}
	}
}

func TestRunEventsOpenFailure(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-events", t.TempDir() + "/no/such/e.jsonl", "-max-ticks", "10"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "open events file") {
		t.Errorf("unopenable events path not reported, got: %v", err)
	}
}
