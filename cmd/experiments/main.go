// Command experiments regenerates the reconstructed tables and figures of
// the DSN 2003 evaluation plus the extension experiments (see
// EXPERIMENTS.md). Without flags it runs all of them at full scale; -run
// selects one, -quick shrinks the campaigns for a fast pass, -format
// switches between text, markdown and csv output. -shootout is shorthand
// for -run E13, the detector shootout: every detector of the pluggable
// suite (holder, entropy, adaptive) replays the same run-to-crash and
// healthy-control campaigns and is scored on warning lead time versus
// false alarms (committed example: SHOOTOUT.md). -rejuv is shorthand for
// -run E14, the closed-loop rejuvenation campaign: fleets aging through
// leak, fragmentation and churn channels under no intervention, the
// control-plane Rejuvenator and a clairvoyant oracle, scored on
// availability (committed example: REJUVENATION.md).
//
// With -events each experiment's start and completion is appended as a
// JSONL record to a file ("-" = stdout) — campaign progress tracking for
// long full-scale regenerations.
//
// Usage:
//
//	experiments [-run E5] [-seed N] [-quick] [-shootout] [-rejuv] [-list]
//	            [-events FILE] [-format text|markdown|csv]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"agingmf/internal/experiment"
	"agingmf/internal/obs"
	"agingmf/internal/runtime"
)

// options is the parsed flag surface of one experiments run.
type options struct {
	id       string
	seed     int64
	quick    bool
	shootout bool
	rejuv    bool
	list     bool
	format   string
	events   string
}

// newFlagSet declares the experiments flag surface — names and defaults
// are part of the command's compatibility contract (pinned by the
// flag-surface test).
func newFlagSet(opt *options) *flag.FlagSet {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.StringVar(&opt.id, "run", "", "run a single experiment (E1..E14)")
	fs.Int64Var(&opt.seed, "seed", 1, "campaign seed")
	fs.BoolVar(&opt.quick, "quick", false, "small campaigns for a fast pass")
	fs.BoolVar(&opt.shootout, "shootout", false, "run the detector shootout (shorthand for -run E13)")
	fs.BoolVar(&opt.rejuv, "rejuv", false, "run the closed-loop rejuvenation campaign (shorthand for -run E14)")
	fs.BoolVar(&opt.list, "list", false, "list experiments and exit")
	fs.StringVar(&opt.format, "format", "text", "output format: text, markdown or csv")
	fs.StringVar(&opt.events, "events", "", `append JSONL progress events to this file ("-" = stdout, empty disables)`)
	return fs
}

func main() {
	// SIGINT/SIGTERM end the regeneration between experiments: the one in
	// flight finishes and renders, the rest are skipped and reported. A
	// second signal force-exits.
	ctx, stop := runtime.NotifyContext(context.Background(), runtime.SignalOptions{})
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	if ctx == nil {
		ctx = context.Background()
	}
	var opt options
	if err := newFlagSet(&opt).Parse(args); err != nil {
		return err
	}
	ev, closeEvents, err := runtime.OpenEvents(opt.events)
	if err != nil {
		return err
	}
	defer closeEvents()
	if opt.list {
		for _, e := range experiment.All() {
			fmt.Fprintf(stdout, "%-4s %s\n", e.ID, e.Title)
		}
		return nil
	}
	cfg := experiment.RunConfig{Seed: opt.seed, Quick: opt.quick}
	if opt.shootout {
		if opt.id != "" && opt.id != "E13" {
			return fmt.Errorf("-shootout conflicts with -run %s", opt.id)
		}
		opt.id = "E13"
	}
	if opt.rejuv {
		if opt.id != "" && opt.id != "E14" {
			return fmt.Errorf("-rejuv conflicts with -run %s", opt.id)
		}
		opt.id = "E14"
	}
	todo := experiment.All()
	if opt.id != "" {
		e, err := experiment.ByID(opt.id)
		if err != nil {
			return err
		}
		todo = []experiment.Experiment{e}
	}
	render := func(rep experiment.Report) error {
		switch opt.format {
		case "text":
			return rep.Render(stdout)
		case "markdown":
			return rep.RenderMarkdown(stdout)
		case "csv":
			return rep.WriteTablesCSV(stdout)
		default:
			return fmt.Errorf("unknown format %q (want text, markdown or csv)", opt.format)
		}
	}
	for n, e := range todo {
		if ctx.Err() != nil {
			skipped := len(todo) - n
			ev.Warn("campaign_interrupted", obs.Fields{"skipped": skipped})
			fmt.Fprintf(stdout, "\ninterrupted: %d experiment(s) skipped\n", skipped)
			break
		}
		if opt.format == "text" {
			fmt.Fprintf(stdout, "\n######## %s — %s ########\n", e.ID, e.Title)
		}
		ev.Info("experiment_start", obs.Fields{
			"id": e.ID, "title": e.Title, "seed": opt.seed, "quick": opt.quick,
		})
		start := time.Now()
		rep, err := e.Run(cfg)
		if err != nil {
			ev.Error("experiment_done", obs.Fields{
				"id": e.ID, "elapsed_ms": time.Since(start).Milliseconds(),
				"error": err.Error(),
			})
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		ev.Info("experiment_done", obs.Fields{
			"id": e.ID, "elapsed_ms": time.Since(start).Milliseconds(),
		})
		if err := render(rep); err != nil {
			return err
		}
	}
	return ev.Err()
}
