// Command experiments regenerates the reconstructed tables and figures of
// the DSN 2003 evaluation plus the extension experiments (see
// EXPERIMENTS.md). Without flags it runs all twelve at full scale; -run
// selects one, -quick shrinks the campaigns for a fast pass, -format
// switches between text, markdown and csv output.
//
// With -events each experiment's start and completion is appended as a
// JSONL record to a file ("-" = stdout) — campaign progress tracking for
// long full-scale regenerations.
//
// Usage:
//
//	experiments [-run E5] [-seed N] [-quick] [-list] [-events FILE]
//	            [-format text|markdown|csv]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"agingmf/internal/experiment"
	"agingmf/internal/obs"
)

// openEvents builds the optional JSONL event sink; the returned closer
// is always safe to call.
func openEvents(path string) (*obs.Events, func(), error) {
	switch path {
	case "":
		return nil, func() {}, nil
	case "-":
		return obs.NewEvents(os.Stdout, obs.LevelInfo), func() {}, nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, func() {}, fmt.Errorf("open events file: %w", err)
	}
	return obs.NewEvents(f, obs.LevelInfo), func() { f.Close() }, nil
}

func main() {
	// SIGINT/SIGTERM end the regeneration between experiments: the one in
	// flight finishes and renders, the rest are skipped and reported.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	if ctx == nil {
		ctx = context.Background()
	}
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		id     = fs.String("run", "", "run a single experiment (E1..E12)")
		seed   = fs.Int64("seed", 1, "campaign seed")
		quick  = fs.Bool("quick", false, "small campaigns for a fast pass")
		list   = fs.Bool("list", false, "list experiments and exit")
		format = fs.String("format", "text", "output format: text, markdown or csv")
		evPath = fs.String("events", "", `append JSONL progress events to this file ("-" = stdout, empty disables)`)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ev, closeEvents, err := openEvents(*evPath)
	if err != nil {
		return err
	}
	defer closeEvents()
	if *list {
		for _, e := range experiment.All() {
			fmt.Fprintf(stdout, "%-4s %s\n", e.ID, e.Title)
		}
		return nil
	}
	cfg := experiment.RunConfig{Seed: *seed, Quick: *quick}
	todo := experiment.All()
	if *id != "" {
		e, err := experiment.ByID(*id)
		if err != nil {
			return err
		}
		todo = []experiment.Experiment{e}
	}
	render := func(rep experiment.Report) error {
		switch *format {
		case "text":
			return rep.Render(stdout)
		case "markdown":
			return rep.RenderMarkdown(stdout)
		case "csv":
			return rep.WriteTablesCSV(stdout)
		default:
			return fmt.Errorf("unknown format %q (want text, markdown or csv)", *format)
		}
	}
	for n, e := range todo {
		if ctx.Err() != nil {
			skipped := len(todo) - n
			ev.Warn("campaign_interrupted", obs.Fields{"skipped": skipped})
			fmt.Fprintf(stdout, "\ninterrupted: %d experiment(s) skipped\n", skipped)
			break
		}
		if *format == "text" {
			fmt.Fprintf(stdout, "\n######## %s — %s ########\n", e.ID, e.Title)
		}
		ev.Info("experiment_start", obs.Fields{
			"id": e.ID, "title": e.Title, "seed": *seed, "quick": *quick,
		})
		start := time.Now()
		rep, err := e.Run(cfg)
		if err != nil {
			ev.Error("experiment_done", obs.Fields{
				"id": e.ID, "elapsed_ms": time.Since(start).Milliseconds(),
				"error": err.Error(),
			})
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		ev.Info("experiment_done", obs.Fields{
			"id": e.ID, "elapsed_ms": time.Since(start).Milliseconds(),
		})
		if err := render(rep); err != nil {
			return err
		}
	}
	return ev.Err()
}
