// Command experiments regenerates the reconstructed tables and figures of
// the DSN 2003 evaluation plus the extension experiments (see
// EXPERIMENTS.md). Without flags it runs all twelve at full scale; -run
// selects one, -quick shrinks the campaigns for a fast pass, -format
// switches between text, markdown and csv output.
//
// Usage:
//
//	experiments [-run E5] [-seed N] [-quick] [-list] [-format text|markdown|csv]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"agingmf/internal/experiment"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		id     = fs.String("run", "", "run a single experiment (E1..E12)")
		seed   = fs.Int64("seed", 1, "campaign seed")
		quick  = fs.Bool("quick", false, "small campaigns for a fast pass")
		list   = fs.Bool("list", false, "list experiments and exit")
		format = fs.String("format", "text", "output format: text, markdown or csv")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, e := range experiment.All() {
			fmt.Fprintf(stdout, "%-4s %s\n", e.ID, e.Title)
		}
		return nil
	}
	cfg := experiment.RunConfig{Seed: *seed, Quick: *quick}
	todo := experiment.All()
	if *id != "" {
		e, err := experiment.ByID(*id)
		if err != nil {
			return err
		}
		todo = []experiment.Experiment{e}
	}
	render := func(rep experiment.Report) error {
		switch *format {
		case "text":
			return rep.Render(stdout)
		case "markdown":
			return rep.RenderMarkdown(stdout)
		case "csv":
			return rep.WriteTablesCSV(stdout)
		default:
			return fmt.Errorf("unknown format %q (want text, markdown or csv)", *format)
		}
	}
	for _, e := range todo {
		if *format == "text" {
			fmt.Fprintf(stdout, "\n######## %s — %s ########\n", e.ID, e.Title)
		}
		rep, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if err := render(rep); err != nil {
			return err
		}
	}
	return nil
}
