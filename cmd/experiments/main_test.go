package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatalf("run -list: %v", err)
	}
	text := out.String()
	for _, id := range []string{"E1", "E5", "E9"} {
		if !strings.Contains(text, id) {
			t.Errorf("list missing %s:\n%s", id, text)
		}
	}
}

func TestRunSingleExperimentQuick(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-run", "E1", "-quick"}, &out); err != nil {
		t.Fatalf("run -run E1: %v", err)
	}
	text := out.String()
	if !strings.Contains(text, "E1") || !strings.Contains(text, "oscillation") {
		t.Errorf("E1 output incomplete:\n%.400s", text)
	}
	if strings.Contains(text, "E2") {
		t.Error("-run E1 also ran E2")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-run", "E99"}, &out); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestRunBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-wat"}, &out); err == nil {
		t.Error("unknown flag should fail")
	}
}
