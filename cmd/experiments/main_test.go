package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-list"}, &out); err != nil {
		t.Fatalf("run -list: %v", err)
	}
	text := out.String()
	for _, id := range []string{"E1", "E5", "E9"} {
		if !strings.Contains(text, id) {
			t.Errorf("list missing %s:\n%s", id, text)
		}
	}
}

func TestRunSingleExperimentQuick(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-run", "E1", "-quick"}, &out); err != nil {
		t.Fatalf("run -run E1: %v", err)
	}
	text := out.String()
	if !strings.Contains(text, "E1") || !strings.Contains(text, "oscillation") {
		t.Errorf("E1 output incomplete:\n%.400s", text)
	}
	if strings.Contains(text, "E2") {
		t.Error("-run E1 also ran E2")
	}
}

func TestRunShootoutConflictsWithRun(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-shootout", "-run", "E1"}, &out); err == nil {
		t.Error("-shootout with a different -run should fail")
	}
	// -shootout with an explicit -run E13 is redundant but not a
	// conflict; the flag itself is exercised end-to-end by the CI smoke
	// step (a full quick campaign is too heavy for the unit suite).
}

func TestRunRejuvConflictsWithRun(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-rejuv", "-run", "E1"}, &out); err == nil {
		t.Error("-rejuv with a different -run should fail")
	}
	// As with -shootout, the happy path is the CI rejuvenation smoke step.
}

func TestRunUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-run", "E99"}, &out); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestRunBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-wat"}, &out); err == nil {
		t.Error("unknown flag should fail")
	}
}

func TestRunEventsJSONL(t *testing.T) {
	evPath := filepath.Join(t.TempDir(), "events.jsonl")
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-run", "E1", "-quick", "-events", evPath}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(evPath)
	if err != nil {
		t.Fatalf("read events: %v", err)
	}
	var starts, dones int
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("event line not JSON: %q: %v", line, err)
		}
		switch rec["event"] {
		case "experiment_start":
			starts++
			if rec["id"] != "E1" {
				t.Errorf("experiment_start id = %v, want E1", rec["id"])
			}
		case "experiment_done":
			dones++
			if _, ok := rec["elapsed_ms"].(float64); !ok {
				t.Errorf("experiment_done missing elapsed_ms: %v", rec)
			}
		}
	}
	if starts != 1 || dones != 1 {
		t.Errorf("events: %d starts, %d dones, want 1/1", starts, dones)
	}
}

func TestRunInterruptedSkipsRemaining(t *testing.T) {
	// A cancelled context (the SIGINT path) must end the campaign
	// gracefully, reporting the skipped experiments instead of erroring.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out bytes.Buffer
	if err := run(ctx, []string{"-quick"}, &out); err != nil {
		t.Fatalf("interrupted run: %v", err)
	}
	if !strings.Contains(out.String(), "experiment(s) skipped") {
		t.Errorf("skip not reported:\n%s", out.String())
	}
}
