package main

import (
	"testing"

	"agingmf/internal/runtime"
)

// TestFlagSurface pins the command's flag names and defaults: they are
// part of the CLI compatibility contract, and a rename or default change
// here must be a conscious, test-visible decision.
func TestFlagSurface(t *testing.T) {
	var opt options
	got := runtime.FlagDefaults(newFlagSet(&opt))
	want := map[string]string{
		"seed":                  "1",
		"ram-mib":               "64",
		"swap-mib":              "24",
		"leak":                  "3.5",
		"max-ticks":             "60000",
		"history-limit":         "4096",
		"sim":                   "true",
		"stdin":                 "false",
		"state":                 "",
		"metrics-addr":          "",
		"pprof":                 "false",
		"events":                "",
		"tick-every":            "0s",
		"max-bad-samples":       "100",
		"stall-timeout":         "0s",
		"trace-sample":          "0",
		"flight-recorder-depth": "64",
		"rejuv-policy":          "",
	}
	for name, def := range want {
		gotDef, ok := got[name]
		if !ok {
			t.Errorf("flag -%s is missing", name)
			continue
		}
		if gotDef != def {
			t.Errorf("flag -%s default %q, want %q", name, gotDef, def)
		}
	}
	for name := range got {
		if _, ok := want[name]; !ok {
			t.Errorf("unexpected flag -%s (default %q): extend the surface table deliberately", name, got[name])
		}
	}
}
