package main

import (
	"fmt"
	"io"
	"os"

	"agingmf"
	"agingmf/internal/ingest"
	"agingmf/internal/runtime"
)

// loadOrNewMonitor restores the monitor from the snapshot manager's path
// if a readable snapshot exists there, or builds a fresh one (an
// unreadable path falls back to fresh, exactly like a cold start — the
// save at exit reports any real persistence problem). A snapshot that
// reads but does not decode is quarantined to <path>.corrupt rather than
// wedging the monitor in a crash loop, and the run starts fresh.
func loadOrNewMonitor(sm *runtime.SnapshotManager, limit int, stdout io.Writer) (*agingmf.DualMonitor, error) {
	if blob, err := sm.Restore(); err == nil && blob != nil {
		mon, err := agingmf.RestoreDualMonitor(blob)
		if err == nil {
			fmt.Fprintf(stdout, "restored monitor state: %d samples seen, phase %v\n",
				mon.SamplesSeen(), mon.Phase())
			return mon, nil
		}
		if qpath, qerr := runtime.Quarantine(sm.Path); qerr == nil {
			fmt.Fprintf(stdout, "corrupt snapshot %s quarantined to %s (%v); starting fresh\n",
				sm.Path, qpath, err)
		} else {
			fmt.Fprintf(stdout, "corrupt snapshot %s (%v; quarantine failed: %v); starting fresh\n",
				sm.Path, err, qerr)
		}
	}
	monCfg := agingmf.DefaultMonitorConfig()
	monCfg.HistoryLimit = limit
	return agingmf.NewDualMonitor(monCfg)
}

// saveMonitor stops any periodic snapshot loop and persists the monitor
// when a state file is configured.
func saveMonitor(sm *runtime.SnapshotManager) error {
	if err := sm.StopAndFlush(); err != nil {
		return fmt.Errorf("save state: %w", err)
	}
	return nil
}

// reportJump prints one jump and mirrors it into the event stream.
func reportJump(stdout io.Writer, ev *agingmf.Events, clock string, at int, j agingmf.DualJump) {
	fmt.Fprintf(stdout, "%s %6d  jump on %v (volatility %.4f, score %.2f)\n",
		clock, at, j.Counter, j.Jump.Volatility, j.Jump.Score)
	ev.Warn("jump", agingmf.EventFields{
		"counter":    j.Counter.String(),
		"sample":     j.Jump.SampleIndex,
		"volatility": j.Jump.Volatility,
		"score":      j.Jump.Score,
	})
}

// reportPhase prints a phase transition and mirrors it into the event
// stream.
func reportPhase(stdout io.Writer, ev *agingmf.Events, clock string, at int, from, to agingmf.Phase, extra string) {
	fmt.Fprintf(stdout, "%s %6d  phase: %v -> %v%s\n", clock, at, from, to, extra)
	ev.Warn("phase_change", agingmf.EventFields{
		"sample": at,
		"from":   from.String(),
		"to":     to.String(),
	})
}

// reportSignal notes a termination signal on both channels.
func reportSignal(stdout io.Writer, ev *agingmf.Events, sig os.Signal, clock string, at int) {
	fmt.Fprintf(stdout, "%s %6d  received %v: draining and saving state\n", clock, at, sig)
	ev.Warn("signal", agingmf.EventFields{"signal": sig.String(), "sample": at})
}

// parseSamples parses one stdin line through the shared fleet wire
// parsers (the same ingest.ParseItem the transport source uses):
// "free,swap", "free swap", "timestamp free swap", or a "batch;..." run
// of pairs, each optionally prefixed/tagged "source=ID". The source and
// timestamp fields are accepted and ignored — agingmon monitors a single
// stream; cmd/agingd is the multi-source daemon — so a producer script
// written for one binary feeds the other unchanged. Non-finite values
// are rejected: a NaN smuggled into the monitor would silently poison
// every downstream statistic.
func parseSamples(line string) ([][2]float64, error) {
	it, err := ingest.ParseItem(line)
	if err != nil {
		return nil, err
	}
	return it.Pairs, nil
}

// truncateForEvent bounds attacker- or corruption-controlled line content
// before it lands in an event record.
func truncateForEvent(line string) string {
	const max = 64
	if len(line) > max {
		return line[:max] + "..."
	}
	return line
}
