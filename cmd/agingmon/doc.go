// Command agingmon attaches the multifractal aging monitor to memory
// counters online and prints aging events (volatility jumps, phase
// changes) as they happen.
//
// By default it monitors a simulated machine under the stress workload
// (the live-demo counterpart of the batch experiments). With -stdin it
// instead reads counter samples from standard input, one line per
// sample, in any fleet wire form — "free_bytes,swap_bytes",
// "free swap", "timestamp free swap", or a batched
// "batch;free swap;free swap;..." line, each optionally prefixed
// "source=ID " (source and timestamp are accepted and ignored here;
// cmd/agingd is the multi-source daemon). A stream of binary columnar
// frames (`stressgen -wire binary`, or anything else speaking the frame
// protocol in internal/source) is detected automatically from its first
// byte — the frame magic can never open a text line — and decoded the
// same way. Pipe a real system's counters in:
//
//	while true; do
//	  awk '/MemAvailable/{f=$2*1024} /SwapTotal/{t=$2*1024} /SwapFree/{s=$2*1024}
//	       END{printf "%d,%d\n", f, t-s}' /proc/meminfo
//	  sleep 1
//	done | agingmon -stdin
//
// The monitor is built to survive degraded inputs — the same systems it
// watches for aging also feed it: malformed stdin samples are skipped and
// counted (fatal only past -max-bad-samples), SIGINT/SIGTERM drain
// gracefully and save -state before exiting (a second signal force-exits
// a stuck drain), and -stall-timeout arms a watchdog that flips /healthz
// to 503 "stalled" when the sample stream dries up.
//
// The monitor pipeline is itself observable: -metrics-addr serves a
// Prometheus /metrics endpoint (plus /healthz and, with -pprof,
// net/http/pprof) while the run is live, and -events appends structured
// JSONL records (jump, phase_change, crash, bad_sample, stalled, ...) to
// a file, "-" meaning stdout. -trace-sample 1/N additionally samples
// pipeline stage spans (source.next, the stream stages, detect) onto
// GET /api/trace/export in Chrome/Perfetto JSON and into the
// agingmf_pipeline_stage_seconds histograms, and -flight-recorder-depth
// keeps the last N annotated samples on GET /api/trace/{source} (the
// source label is "sim" or "stream" to match the mode) — both endpoints
// ride the -metrics-addr listener.
//
// Usage:
//
//	agingmon [-seed N] [-ram-mib N] [-swap-mib N] [-leak PAGES]
//	         [-max-ticks N] [-history-limit N] [-sim | -stdin]
//	         [-state FILE] [-metrics-addr HOST:PORT] [-pprof]
//	         [-events FILE] [-tick-every DURATION]
//	         [-max-bad-samples N] [-stall-timeout DURATION]
//	         [-trace-sample 1/N] [-flight-recorder-depth N]
package main
