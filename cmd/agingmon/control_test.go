package main

import (
	"bytes"
	"strings"
	"testing"
)

// The closed loop end-to-end: a run long enough to age past onset, with
// a phase-triggered policy, must reboot the simulated machine at least
// once and say so — and must never reach a crash it would have hit
// policy-off (TestRunToCrashPrintsEvents crashes these exact settings).
func TestRunSimClosedLoopRejuvenation(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-seed", "1", "-max-ticks", "20000",
		"-rejuv-policy", "phase:aging-onset:800"}, nil, &buf)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "REJUVENATE") {
		t.Errorf("no policy restart in output:\n%s", out)
	}
	if !strings.Contains(out, "rejuvenations:") {
		t.Errorf("no rejuvenation summary in output:\n%s", out)
	}
	if strings.Contains(out, "CRASH") {
		t.Errorf("machine crashed despite proactive rejuvenation:\n%s", out)
	}
}

func TestRunBadRejuvPolicy(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-max-ticks", "10", "-rejuv-policy", "phase:bogus"}, nil, &buf); err == nil {
		t.Error("bad -rejuv-policy should fail")
	}
}
