package main

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"agingmf/internal/source"
)

func TestRunToCrashPrintsEvents(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-seed", "1", "-max-ticks", "20000"}, nil, &buf)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"machine:", "CRASH", "final phase:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "jump on") {
		t.Errorf("no jump events printed:\n%s", out)
	}
}

func TestRunShortHorizonNoCrash(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-max-ticks", "100"}, nil, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	if strings.Contains(buf.String(), "CRASH") {
		t.Error("crash within 100 ticks is implausible")
	}
}

func TestRunBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-bogus"}, nil, &buf); err == nil {
		t.Error("unknown flag should fail")
	}
	if err := run([]string{"-ram-mib", "0", "-max-ticks", "10"}, nil, &buf); err == nil {
		t.Error("zero RAM should fail machine validation")
	}
}

func TestRunStdinMode(t *testing.T) {
	// A calm stream then a rough regime: the monitor must report a phase
	// change and the final summary.
	var in strings.Builder
	in.WriteString("# comment line\n\n")
	level := 1e9
	for i := 0; i < 3000; i++ {
		level -= 1e4
		fmt.Fprintf(&in, "%.0f,0\n", level)
	}
	for i := 0; i < 3000; i++ {
		if (i/32)%2 == 0 {
			level -= 1e4
		} else {
			level -= 1e4
			fmt.Fprintf(&in, "%.0f,%d\n", level+5e7*float64(i%7), i*1000)
			continue
		}
		fmt.Fprintf(&in, "%.0f,%d\n", level, i*1000)
	}
	var out bytes.Buffer
	if err := run([]string{"-stdin"}, strings.NewReader(in.String()), &out); err != nil {
		t.Fatalf("run -stdin: %v", err)
	}
	if !strings.Contains(out.String(), "final phase:") {
		t.Errorf("missing summary:\n%.200s", out.String())
	}
	if !strings.Contains(out.String(), "6000 samples") {
		t.Errorf("sample count wrong:\n%s", lastLine(out.String()))
	}
}

// TestRunStdinBatchLines feeds the same stream split into batch; lines:
// the monitor must count every sample inside the batches, and a
// corrupted batch must be skipped whole, not half-ingested.
func TestRunStdinBatchLines(t *testing.T) {
	var in strings.Builder
	level := 1e9
	for i := 0; i < 40; i++ { // 40 lines x 5 samples
		in.WriteString("batch")
		for k := 0; k < 5; k++ {
			level -= 1e4
			fmt.Fprintf(&in, ";%.0f 0", level)
		}
		in.WriteString("\n")
	}
	in.WriteString("batch;1 2;NaN 0\n") // rejected whole
	var out bytes.Buffer
	if err := run([]string{"-stdin"}, strings.NewReader(in.String()), &out); err != nil {
		t.Fatalf("run -stdin with batches: %v", err)
	}
	if !strings.Contains(out.String(), "200 samples") {
		t.Errorf("batched samples lost:\n%s", lastLine(out.String()))
	}
	if !strings.Contains(out.String(), "1 bad skipped") {
		t.Errorf("bad batch not counted:\n%s", lastLine(out.String()))
	}
}

func TestRunStdinMalformedStrictMode(t *testing.T) {
	// -max-bad-samples 0 restores the old fail-fast behaviour: the first
	// malformed line aborts the run.
	var out bytes.Buffer
	if err := run([]string{"-stdin", "-max-bad-samples", "0"}, strings.NewReader("1,2,3\n"), &out); err == nil {
		t.Error("three fields should fail in strict mode")
	}
	if err := run([]string{"-stdin", "-max-bad-samples", "0"}, strings.NewReader("abc,1\n"), &out); err == nil {
		t.Error("non-numeric free should fail in strict mode")
	}
	if err := run([]string{"-stdin", "-max-bad-samples", "0"}, strings.NewReader("1,xyz\n"), &out); err == nil {
		t.Error("non-numeric swap should fail in strict mode")
	}
}

func TestRunStdinSkipsMalformedByDefault(t *testing.T) {
	// One bad line inside a good stream must not kill the monitor: it is
	// skipped, counted, and reported in the summary.
	var in strings.Builder
	level := 1e9
	for i := 0; i < 100; i++ {
		level -= 1e4
		fmt.Fprintf(&in, "%.0f,0\n", level)
		if i == 50 {
			in.WriteString("garbage line\n")
			in.WriteString("NaN,0\n")
		}
	}
	var out bytes.Buffer
	if err := run([]string{"-stdin"}, strings.NewReader(in.String()), &out); err != nil {
		t.Fatalf("run with recoverable bad samples: %v", err)
	}
	if !strings.Contains(out.String(), "100 samples") {
		t.Errorf("good samples lost:\n%s", lastLine(out.String()))
	}
	if !strings.Contains(out.String(), "2 bad skipped") {
		t.Errorf("bad samples not counted:\n%s", lastLine(out.String()))
	}
}

func TestRunStdinBadSampleBudgetExhausted(t *testing.T) {
	var in strings.Builder
	for i := 0; i < 10; i++ {
		in.WriteString("junk\n")
	}
	var out bytes.Buffer
	err := run([]string{"-stdin", "-max-bad-samples", "3"}, strings.NewReader(in.String()), &out)
	if err == nil || !strings.Contains(err.Error(), "max-bad-samples") {
		t.Fatalf("err = %v, want budget exhaustion", err)
	}
	// Unlimited tolerance: the same stream drains cleanly.
	out.Reset()
	if err := run([]string{"-stdin", "-max-bad-samples", "-1"}, strings.NewReader(in.String()), &out); err != nil {
		t.Fatalf("unlimited tolerance still failed: %v", err)
	}
	if !strings.Contains(out.String(), "10 bad skipped") {
		t.Errorf("summary missing skip count:\n%s", lastLine(out.String()))
	}
}

func lastLine(s string) string {
	lines := strings.Split(strings.TrimSpace(s), "\n")
	return lines[len(lines)-1]
}

func TestRunStatePersistsAcrossInvocations(t *testing.T) {
	state := t.TempDir() + "/mon.state"
	var out1 bytes.Buffer
	// First session: calm stream only, saved at exit.
	var in1 strings.Builder
	level := 1e9
	for i := 0; i < 2500; i++ {
		level -= 1e4
		fmt.Fprintf(&in1, "%.0f,0\n", level)
	}
	if err := run([]string{"-stdin", "-state", state}, strings.NewReader(in1.String()), &out1); err != nil {
		t.Fatalf("first run: %v", err)
	}
	// Second session: restored state must report the carried-over samples.
	var out2 bytes.Buffer
	if err := run([]string{"-stdin", "-state", state}, strings.NewReader("1,0\n2,0\n"), &out2); err != nil {
		t.Fatalf("second run: %v", err)
	}
	if !strings.Contains(out2.String(), "restored monitor state: 2500 samples") {
		t.Errorf("state not restored:\n%s", out2.String())
	}
}

// TestRunStdinBinaryFrames pipes binary columnar frames into -stdin: the
// one peeked magic byte must flip the decoder to the frame protocol, and
// every framed sample must reach the monitor (same count a text stream
// of the same trace would report).
func TestRunStdinBinaryFrames(t *testing.T) {
	var wire bytes.Buffer
	level := 1e9
	var frame []byte
	for f := 0; f < 40; f++ { // 40 frames x 50 samples
		cb := source.ColumnarBatch{Source: "rig"}
		for k := 0; k < 50; k++ {
			level -= 1e4
			cb.Free = append(cb.Free, level)
			cb.Swap = append(cb.Swap, float64(k*1000))
		}
		var err error
		frame, err = source.AppendFrame(frame[:0], &cb)
		if err != nil {
			t.Fatalf("encode frame %d: %v", f, err)
		}
		wire.Write(frame)
	}
	var out bytes.Buffer
	if err := run([]string{"-stdin"}, bytes.NewReader(wire.Bytes()), &out); err != nil {
		t.Fatalf("run -stdin on frames: %v", err)
	}
	if !strings.Contains(out.String(), "2000 samples") {
		t.Errorf("framed samples lost:\n%s", lastLine(out.String()))
	}
	if !strings.Contains(out.String(), "0 bad skipped") {
		t.Errorf("frames misparsed:\n%s", lastLine(out.String()))
	}
}

// TestRunStdinBinaryCorruptFrame flips payload bytes in one mid-stream
// frame: the CRC must reject that frame whole as one bad sample unit
// while every surrounding frame still lands.
func TestRunStdinBinaryCorruptFrame(t *testing.T) {
	var wire bytes.Buffer
	level := 1e9
	var frame []byte
	corruptAt := -1
	for f := 0; f < 10; f++ {
		cb := source.ColumnarBatch{Source: "rig"}
		for k := 0; k < 20; k++ {
			level -= 1e4
			cb.Free = append(cb.Free, level)
			cb.Swap = append(cb.Swap, 0)
		}
		var err error
		frame, err = source.AppendFrame(frame[:0], &cb)
		if err != nil {
			t.Fatalf("encode frame %d: %v", f, err)
		}
		if f == 5 {
			corruptAt = wire.Len() + len(frame) - 6 // inside the last column
		}
		wire.Write(frame)
	}
	raw := wire.Bytes()
	raw[corruptAt] ^= 0xFF
	var out bytes.Buffer
	if err := run([]string{"-stdin"}, bytes.NewReader(raw), &out); err != nil {
		t.Fatalf("run -stdin on corrupted frames: %v", err)
	}
	if !strings.Contains(out.String(), "180 samples") {
		t.Errorf("surviving frames lost:\n%s", lastLine(out.String()))
	}
	if !strings.Contains(out.String(), "1 bad skipped") {
		t.Errorf("corrupt frame not counted:\n%s", lastLine(out.String()))
	}
}
