package main

import (
	"encoding/json"
	"fmt"
	"net/http"

	"agingmf"
	"agingmf/internal/runtime"
)

// controlPlane is agingmon's slice of the fleet control plane: every
// monitor verdict is published as a canonical alert on a bus (served at
// GET /api/alerts on the telemetry listener) and, with -rejuv-policy,
// fed into a rejuvenation controller. The controller is driven
// synchronously — Handle on the monitoring goroutine, never Start —
// because in sim mode the actuator reboots the simulated machine, which
// is confined to that goroutine.
type controlPlane struct {
	bus *agingmf.AlertBus
	rej *agingmf.Rejuvenator
	src string
	act agingmf.Actuator
}

// newControlPlane builds the bus, parses -rejuv-policy and mounts the
// API endpoints. The actuator defaults to a dry-run logger; sim mode
// swaps in the machine's reboot before the first sample flows.
func newControlPlane(opt options, tel *runtime.Telemetry, src string) (*controlPlane, error) {
	cp := &controlPlane{
		bus: agingmf.NewAlertBus(256),
		src: src,
		act: &agingmf.DryRunActuator{Events: tel.Events},
	}
	factory, err := agingmf.ParseRejuvenationPolicy(opt.rejuvPolicy)
	if err != nil {
		return nil, fmt.Errorf("-rejuv-policy: %w", err)
	}
	if factory != nil {
		// The bus is publish-only here (the rejuvenate alerts land in the
		// /api/alerts ring); alerts reach the controller via Handle.
		cp.rej, err = agingmf.NewRejuvenator(agingmf.RejuvenatorConfig{
			Bus:      cp.bus,
			Actuator: agingmf.ActuatorFunc(func(s string) error { return cp.act.Rejuvenate(s) }),
			Policy:   factory,
			Events:   tel.Events,
			Obs:      tel.Reg,
		})
		if err != nil {
			return nil, fmt.Errorf("-rejuv-policy: %w", err)
		}
	}
	tel.Mount("GET /api/alerts", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"total":  cp.bus.Total(),
			"alerts": cp.bus.Recent(100),
		})
	}))
	tel.Mount("GET /api/rejuv", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if cp.rej == nil {
			http.Error(w, "rejuvenation disabled (no -rejuv-policy)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(cp.rej.Status())
	}))
	return cp, nil
}

// setActuator rebinds what a rejuvenation decision executes.
func (cp *controlPlane) setActuator(a agingmf.Actuator) { cp.act = a }

// publish records the alert and drives the controller synchronously.
func (cp *controlPlane) publish(a agingmf.Alert) {
	cp.bus.Publish(a)
	if cp.rej != nil {
		cp.rej.Handle(a)
	}
}

// jump publishes one detector alarm.
func (cp *controlPlane) jump(j agingmf.DualJump) {
	cp.publish(agingmf.Alert{
		Source:     cp.src,
		Kind:       agingmf.AlertKindJump,
		Detector:   "holder",
		Counter:    j.Counter.String(),
		Sample:     j.Jump.SampleIndex,
		Volatility: j.Jump.Volatility,
		Score:      j.Jump.Score,
	})
}

// phase publishes one phase transition.
func (cp *controlPlane) phase(sample int, from, to agingmf.Phase) {
	cp.publish(agingmf.PhaseChangeAlert(cp.src, sample, from, to))
}

// rejuvenations reports how many restarts the controller actuated.
func (cp *controlPlane) rejuvenations() int {
	if cp.rej == nil {
		return 0
	}
	return cp.rej.Total()
}
