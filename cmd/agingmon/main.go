// Command agingmon attaches the multifractal aging monitor to memory
// counters online and prints aging events (volatility jumps, phase
// changes) as they happen.
//
// By default it monitors a simulated machine under the stress workload
// (the live-demo counterpart of the batch experiments). With -stdin it
// instead reads counter samples from standard input, one line per
// sample, in any fleet wire form — "free_bytes,swap_bytes",
// "free swap", "timestamp free swap", or a batched
// "batch;free swap;free swap;..." line, each optionally prefixed
// "source=ID " (source and timestamp are accepted and ignored here;
// cmd/agingd is the multi-source daemon) — pipe a real system's
// counters in:
//
//	while true; do
//	  awk '/MemAvailable/{f=$2*1024} /SwapTotal/{t=$2*1024} /SwapFree/{s=$2*1024}
//	       END{printf "%d,%d\n", f, t-s}' /proc/meminfo
//	  sleep 1
//	done | agingmon -stdin
//
// The monitor is built to survive degraded inputs — the same systems it
// watches for aging also feed it: malformed stdin samples are skipped and
// counted (fatal only past -max-bad-samples), SIGINT/SIGTERM drain
// gracefully and save -state before exiting, and -stall-timeout arms a
// watchdog that flips /healthz to 503 "stalled" when the sample stream
// dries up.
//
// The monitor pipeline is itself observable: -metrics-addr serves a
// Prometheus /metrics endpoint (plus /healthz and, with -pprof,
// net/http/pprof) while the run is live, and -events appends structured
// JSONL records (jump, phase_change, crash, bad_sample, stalled, ...) to
// a file, "-" meaning stdout.
//
// Usage:
//
//	agingmon [-seed N] [-ram-mib N] [-swap-mib N] [-leak PAGES]
//	         [-max-ticks N] [-history-limit N] [-sim | -stdin]
//	         [-state FILE] [-metrics-addr HOST:PORT] [-pprof]
//	         [-events FILE] [-tick-every DURATION]
//	         [-max-bad-samples N] [-stall-timeout DURATION]
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"agingmf"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "agingmon:", err)
		os.Exit(1)
	}
}

// telemetry bundles the optional observability wiring of one run.
type telemetry struct {
	reg    *agingmf.Registry
	events *agingmf.Events

	srv        *http.Server
	eventsFile *os.File
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("agingmon", flag.ContinueOnError)
	var (
		seed         = fs.Int64("seed", 1, "random seed")
		ramMiB       = fs.Int("ram-mib", 64, "physical memory in MiB")
		swapMiB      = fs.Int("swap-mib", 24, "swap space in MiB")
		leak         = fs.Float64("leak", 3.5, "server leak rate in pages/tick")
		maxTicks     = fs.Int("max-ticks", 60000, "simulation horizon in ticks")
		limit        = fs.Int("history-limit", 4096, "monitor history bound (0 = unlimited)")
		simMode      = fs.Bool("sim", true, "monitor the built-in simulated machine (the default; -stdin overrides)")
		fromStdin    = fs.Bool("stdin", false, `read "free_bytes,swap_bytes" samples from stdin instead of simulating`)
		stateFile    = fs.String("state", "", "restore monitor state from this file at start, save on exit")
		metricsAddr  = fs.String("metrics-addr", "", "serve /metrics and /healthz on this address while running (e.g. :9177; empty disables)")
		pprofFlag    = fs.Bool("pprof", false, "also serve net/http/pprof under /debug/pprof/ (needs -metrics-addr)")
		eventsPath   = fs.String("events", "", `append structured JSONL events to this file ("-" = stdout, empty disables)`)
		tickEvery    = fs.Duration("tick-every", 0, "pace simulation ticks in wall time (0 = as fast as possible)")
		maxBad       = fs.Int("max-bad-samples", 100, "tolerate this many malformed stdin samples before aborting (0 = abort on the first, negative = unlimited)")
		stallTimeout = fs.Duration("stall-timeout", 0, `declare the stream "stalled" (503 on /healthz, stalled event) when no sample arrives within this long (0 disables)`)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	_ = *simMode // sim is the default mode; the flag exists to state it explicitly

	tel := &telemetry{}
	defer tel.shutdown()
	if err := tel.openEvents(*eventsPath); err != nil {
		return err
	}
	if *metricsAddr != "" {
		tel.reg = agingmf.NewRegistry()
	}
	// The watchdog turns a dried-up sample stream into an observable
	// condition instead of a silent hang: /healthz flips to 503 and a
	// stalled event fires. A zero timeout yields the nil (disabled)
	// watchdog, so the wiring below is unconditional.
	wd := agingmf.NewWatchdog(*stallTimeout, agingmf.NewResilienceMetrics(tel.reg), func(gap time.Duration) {
		tel.events.Warn("stalled", agingmf.EventFields{"gap_ms": gap.Milliseconds()})
	})
	defer wd.Stop()
	if err := tel.serveMetrics(*metricsAddr, *pprofFlag, wd.Healthy, stdout); err != nil {
		return err
	}

	mon, err := loadOrNewMonitor(*stateFile, *limit, stdout)
	if err != nil {
		return err
	}
	mon.Instrument(tel.reg)

	// SIGINT/SIGTERM drain gracefully: the monitor loops observe the
	// channel, stop feeding samples, and fall through to the state save
	// below — an interrupted session keeps its warmup.
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)

	if *fromStdin {
		err = monitorStream(stdin, stdout, mon, tel, wd, sigc, *maxBad)
	} else {
		err = monitorSimulation(stdout, mon, tel, wd, sigc, *seed, *ramMiB, *swapMiB, *leak, *maxTicks, *tickEvery)
	}
	// The monitor state is saved on every exit path — including the
	// interrupt/error/signal ones — so a malformed sample, a failed run or
	// a SIGTERM does not silently discard hours of warmup. All failures
	// are reported; any alone makes the exit non-zero.
	return errors.Join(err, saveMonitor(*stateFile, mon), tel.events.Err())
}

// openEvents opens the JSONL event sink.
func (tel *telemetry) openEvents(eventsPath string) error {
	switch eventsPath {
	case "":
	case "-":
		tel.events = agingmf.NewEvents(os.Stdout, agingmf.LevelInfo)
	default:
		f, err := os.OpenFile(eventsPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("open events file: %w", err)
		}
		tel.eventsFile = f
		tel.events = agingmf.NewEvents(f, agingmf.LevelInfo)
	}
	return nil
}

// serveMetrics starts the metrics listener; health feeds /healthz.
func (tel *telemetry) serveMetrics(metricsAddr string, enablePprof bool, health func() error, stdout io.Writer) error {
	if metricsAddr == "" {
		return nil
	}
	ln, err := net.Listen("tcp", metricsAddr)
	if err != nil {
		return fmt.Errorf("metrics listener: %w", err)
	}
	tel.srv = &http.Server{Handler: agingmf.NewObsHandler(tel.reg, agingmf.ObsHandlerConfig{
		EnablePprof: enablePprof,
		Health:      health,
	})}
	go func() { _ = tel.srv.Serve(ln) }()
	fmt.Fprintf(stdout, "metrics: http://%s/metrics\n", ln.Addr())
	return nil
}

// shutdown stops the metrics server and closes the event sink.
func (tel *telemetry) shutdown() {
	if tel.srv != nil {
		_ = tel.srv.Close()
		tel.srv = nil
	}
	if tel.eventsFile != nil {
		_ = tel.eventsFile.Close()
		tel.eventsFile = nil
	}
}

// loadOrNewMonitor restores the monitor from stateFile if it exists, or
// builds a fresh one.
func loadOrNewMonitor(stateFile string, limit int, stdout io.Writer) (*agingmf.DualMonitor, error) {
	if stateFile != "" {
		if blob, err := os.ReadFile(stateFile); err == nil {
			mon, err := agingmf.RestoreDualMonitor(blob)
			if err != nil {
				return nil, fmt.Errorf("restore %s: %w", stateFile, err)
			}
			fmt.Fprintf(stdout, "restored monitor state: %d samples seen, phase %v\n",
				mon.SamplesSeen(), mon.Phase())
			return mon, nil
		}
	}
	monCfg := agingmf.DefaultMonitorConfig()
	monCfg.HistoryLimit = limit
	return agingmf.NewDualMonitor(monCfg)
}

// saveMonitor persists the monitor when a state file is configured.
func saveMonitor(stateFile string, mon *agingmf.DualMonitor) error {
	if stateFile == "" || mon == nil {
		return nil
	}
	blob, err := mon.SaveState()
	if err != nil {
		return fmt.Errorf("save state: %w", err)
	}
	if err := os.WriteFile(stateFile, blob, 0o600); err != nil {
		return fmt.Errorf("save state: %w", err)
	}
	return nil
}

// reportJump prints one jump and mirrors it into the event stream.
func reportJump(stdout io.Writer, ev *agingmf.Events, clock string, at int, j agingmf.DualJump) {
	fmt.Fprintf(stdout, "%s %6d  jump on %v (volatility %.4f, score %.2f)\n",
		clock, at, j.Counter, j.Jump.Volatility, j.Jump.Score)
	ev.Warn("jump", agingmf.EventFields{
		"counter":    j.Counter.String(),
		"sample":     j.Jump.SampleIndex,
		"volatility": j.Jump.Volatility,
		"score":      j.Jump.Score,
	})
}

// reportPhase prints a phase transition and mirrors it into the event
// stream. It returns the new phase.
func reportPhase(stdout io.Writer, ev *agingmf.Events, clock string, at int, from, to agingmf.Phase, extra string) agingmf.Phase {
	fmt.Fprintf(stdout, "%s %6d  phase: %v -> %v%s\n", clock, at, from, to, extra)
	ev.Warn("phase_change", agingmf.EventFields{
		"sample": at,
		"from":   from.String(),
		"to":     to.String(),
	})
	return to
}

// reportSignal notes a termination signal on both channels.
func reportSignal(stdout io.Writer, ev *agingmf.Events, sig os.Signal, clock string, at int) {
	fmt.Fprintf(stdout, "%s %6d  received %v: draining and saving state\n", clock, at, sig)
	ev.Warn("signal", agingmf.EventFields{"signal": sig.String(), "sample": at})
}

// parseSamples parses one stdin line through the shared fleet wire
// parsers (agingmf.ParseIngestLine / ParseIngestBatch): "free,swap",
// "free swap", "timestamp free swap", or a "batch;..." run of pairs,
// each optionally prefixed/tagged "source=ID". The source and timestamp
// fields are accepted and ignored — agingmon monitors a single stream;
// cmd/agingd is the multi-source daemon — so a producer script written
// for one binary feeds the other unchanged. Non-finite values are
// rejected: a NaN smuggled into the monitor would silently poison every
// downstream statistic.
func parseSamples(line string) ([][2]float64, error) {
	if agingmf.IsIngestBatchLine(line) {
		b, err := agingmf.ParseIngestBatch(line)
		if err != nil {
			return nil, err
		}
		return b.Pairs, nil
	}
	s, err := agingmf.ParseIngestLine(line)
	if err != nil {
		return nil, err
	}
	return [][2]float64{{s.Free, s.Swap}}, nil
}

// truncateForEvent bounds attacker- or corruption-controlled line content
// before it lands in an event record.
func truncateForEvent(line string) string {
	const max = 64
	if len(line) > max {
		return line[:max] + "..."
	}
	return line
}

// monitorStream feeds counter samples from a CSV-ish stream into the
// monitor, printing events as they fire. Blank lines and lines starting
// with '#' are skipped. Malformed lines are counted and skipped (event
// bad_sample, counter agingmf_monitor_bad_samples_total) — fatal only
// once more than maxBad of them arrive (negative = unlimited). A signal
// drains the stream gracefully.
func monitorStream(stdin io.Reader, stdout io.Writer, mon *agingmf.DualMonitor, tel *telemetry, wd *agingmf.Watchdog, sigc <-chan os.Signal, maxBad int) error {
	badSamples := tel.reg.Counter("agingmf_monitor_bad_samples_total",
		"Malformed stdin samples skipped by the monitor.")
	// The scanner runs on its own goroutine so the select below can react
	// to signals while a read blocks. The done channel unblocks the
	// sender if the consumer leaves first; a scanner blocked inside an
	// open-but-idle stdin read can only be collected at process exit.
	lines := make(chan string)
	scanErr := make(chan error, 1)
	done := make(chan struct{})
	defer close(done)
	go func() {
		defer close(lines)
		scanner := bufio.NewScanner(stdin)
		for scanner.Scan() {
			select {
			case lines <- scanner.Text():
			case <-done:
				return
			}
		}
		scanErr <- scanner.Err()
	}()

	lastPhase := mon.Phase()
	sample, bad := 0, 0
	for {
		select {
		case sig := <-sigc:
			reportSignal(stdout, tel.events, sig, "sample", sample)
			return nil
		case line, ok := <-lines:
			if !ok {
				select {
				case err := <-scanErr:
					if err != nil {
						return fmt.Errorf("read stdin: %w", err)
					}
				default:
				}
				fmt.Fprintf(stdout, "final phase: %v after %d samples (%d jumps, %d bad skipped)\n",
					lastPhase, sample, len(mon.Jumps()), bad)
				return nil
			}
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			pairs, err := parseSamples(line)
			if err != nil {
				bad++
				badSamples.Inc()
				tel.events.Warn("bad_sample", agingmf.EventFields{
					"sample": sample,
					"line":   truncateForEvent(line),
					"error":  err.Error(),
				})
				if maxBad >= 0 && bad > maxBad {
					return fmt.Errorf("sample %d: %q: %w (%d malformed samples exceed -max-bad-samples=%d)",
						sample, truncateForEvent(line), err, bad, maxBad)
				}
				continue
			}
			if wd.Pet() {
				tel.events.Info("resumed", agingmf.EventFields{"sample": sample})
			}
			for _, j := range mon.AddBatch(pairs) {
				reportJump(stdout, tel.events, "sample", j.Jump.SampleIndex, j)
			}
			if phase := mon.Phase(); phase != lastPhase {
				lastPhase = reportPhase(stdout, tel.events, "sample", sample+len(pairs)-1, lastPhase, phase, "")
			}
			sample += len(pairs)
		}
	}
}

// monitorSimulation runs the built-in simulated machine under stress.
func monitorSimulation(stdout io.Writer, mon *agingmf.DualMonitor, tel *telemetry, wd *agingmf.Watchdog, sigc <-chan os.Signal, seed int64, ramMiB, swapMiB int, leak float64, maxTicks int, tickEvery time.Duration) error {
	mcfg := agingmf.DefaultMachineConfig()
	mcfg.RAMPages = ramMiB << 20 / mcfg.PageSize
	mcfg.SwapPages = swapMiB << 20 / mcfg.PageSize
	machine, err := agingmf.NewMachine(mcfg, agingmf.NewRand(seed))
	if err != nil {
		return err
	}
	machine.Instrument(tel.reg, tel.events)
	wcfg := agingmf.DefaultWorkload()
	wcfg.Server.LeakPagesPerTick = leak
	driver, err := agingmf.NewDriver(machine, wcfg, nil, agingmf.NewRand(seed+1))
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "machine: %d MiB RAM, %d MiB swap, leak %.2f pages/tick, seed %d\n",
		ramMiB, swapMiB, leak, seed)
	lastPhase := mon.Phase()
loop:
	for tick := 0; tick < maxTicks; tick++ {
		select {
		case sig := <-sigc:
			reportSignal(stdout, tel.events, sig, "tick", tick)
			break loop
		default:
		}
		counters, err := driver.Step()
		if kind, at := machine.Crashed(); kind != agingmf.CrashNone {
			// The machine emits the structured crash event itself.
			fmt.Fprintf(stdout, "tick %6d  CRASH (%v)\n", at, kind)
			break
		}
		if err != nil {
			return err
		}
		wd.Pet()
		for _, j := range mon.Add(counters.FreeMemoryBytes, counters.UsedSwapBytes) {
			reportJump(stdout, tel.events, "tick", tick, j)
		}
		if phase := mon.Phase(); phase != lastPhase {
			extra := fmt.Sprintf(" (free %.1f MiB, swap %.1f MiB)",
				counters.FreeMemoryBytes/(1<<20), counters.UsedSwapBytes/(1<<20))
			lastPhase = reportPhase(stdout, tel.events, "tick", tick, lastPhase, phase, extra)
		}
		if tickEvery > 0 {
			time.Sleep(tickEvery)
		}
	}
	fmt.Fprintf(stdout, "final phase: %v (%d jumps across both counters)\n",
		lastPhase, len(mon.Jumps()))
	return nil
}
