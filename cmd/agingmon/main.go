package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"agingmf"
	"agingmf/internal/ingest"
	"agingmf/internal/runtime"
	"agingmf/internal/source"
	"agingmf/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "agingmon:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	var opt options
	if err := newFlagSet(&opt).Parse(args); err != nil {
		return err
	}
	_ = opt.sim // sim is the default mode; the flag exists to state it explicitly

	tel, err := runtime.NewTelemetry(opt.metricsAddr, opt.pprof, opt.events)
	if err != nil {
		return err
	}
	defer tel.Close()
	// The watchdog turns a dried-up sample stream into an observable
	// condition instead of a silent hang: /healthz flips to 503 and a
	// stalled event fires. A zero timeout yields the nil (disabled)
	// watchdog, so the wiring below is unconditional.
	wd := agingmf.NewWatchdog(opt.stallTimeout, agingmf.NewResilienceMetrics(tel.Reg), func(gap time.Duration) {
		tel.Events.Warn("stalled", agingmf.EventFields{"gap_ms": gap.Milliseconds()})
	})
	defer wd.Stop()

	// Pipeline tracing mirrors agingd's: sampled source.next/stream/detect
	// spans on /api/trace/export, and a flight recorder of the last N
	// annotated samples on /api/trace/{source}. agingmon monitors a single
	// stream, so the one recorder lives under the mode's label.
	every, err := agingmf.ParseTraceSampleRate(opt.traceSample)
	if err != nil {
		return fmt.Errorf("-trace-sample: %w", err)
	}
	tr := trace.New(trace.Config{SampleEvery: every, Obs: tel.Reg})
	fr := trace.NewFlightRecorder(opt.flightDepth)
	srcLabel := "sim"
	if opt.stdin {
		srcLabel = "stream"
	}
	mountTrace(tel, tr, fr, srcLabel)
	// The control plane publishes every verdict as a canonical alert
	// (GET /api/alerts) and, with -rejuv-policy, closes the loop: in sim
	// mode decisions reboot the simulated machine, on a stream they are
	// logged dry-run. Endpoints mount before Serve.
	cp, err := newControlPlane(opt, tel, srcLabel)
	if err != nil {
		return err
	}
	if err := tel.Serve(wd.Healthy, stdout); err != nil {
		return err
	}

	sm := &runtime.SnapshotManager{Path: opt.state}
	mon, err := loadOrNewMonitor(sm, opt.limit, stdout)
	if err != nil {
		return err
	}
	sm.State = mon.SaveState
	mon.Instrument(tel.Reg)

	// SIGINT/SIGTERM drain gracefully: the monitor pipelines observe the
	// context, stop feeding samples, and fall through to the state save
	// below — an interrupted session keeps its warmup. A second signal
	// force-exits a stuck drain.
	ctx, stop := runtime.NotifyContext(context.Background(), runtime.SignalOptions{})
	defer stop()

	if opt.stdin {
		err = monitorStream(ctx, stdin, stdout, mon, tel, wd, tr, fr, cp, opt.maxBad)
	} else {
		err = monitorSimulation(ctx, stdout, mon, tel, wd, tr, fr, cp, opt)
	}
	// The monitor state is saved on every exit path — including the
	// interrupt/error/signal ones — so a malformed sample, a failed run or
	// a SIGTERM does not silently discard hours of warmup. All failures
	// are reported; any alone makes the exit non-zero.
	return errors.Join(err, saveMonitor(sm), tel.Events.Err())
}

// mountTrace registers the trace endpoints on the telemetry listener
// (harmless no-ops without -metrics-addr). The export endpoint serves
// even a nil tracer — WriteChromeTrace emits an empty event list — so
// curl against a tracing-off daemon answers instead of 404ing.
func mountTrace(tel *runtime.Telemetry, tr *trace.Tracer, fr *trace.FlightRecorder, srcLabel string) {
	tel.Mount("GET /api/trace/export", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = tr.WriteChromeTrace(w)
	}))
	tel.Mount("GET /api/trace/{source}", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if fr == nil || r.PathValue("source") != srcLabel {
			http.Error(w, "unknown source", http.StatusNotFound)
			return
		}
		recs := fr.Snapshot()
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"source":  srcLabel,
			"depth":   len(recs),
			"records": recs,
		})
	}))
}

// nextTraced draws the item's trace sequence, runs one Next call under a
// sampled source.next span, and returns the sequence so the sink's
// stream/detect spans ride the same sampled unit.
func nextTraced(ctx context.Context, tr *trace.Tracer, label string, next func(context.Context) (source.Item, error)) (source.Item, uint64, error) {
	seq := tr.Sample()
	if seq == 0 {
		it, err := next(ctx)
		return it, 0, err
	}
	start := time.Now()
	it, err := next(ctx)
	tr.Record(trace.StageSourceNext, label, 0, seq, start, time.Since(start))
	return it, seq, err
}

// stdinSource is the common shape of the two stdin decoders (text lines
// and binary frames).
type stdinSource interface {
	Next(context.Context) (source.Item, error)
	Close() error
}

// newStdinSource sniffs the wire protocol on r and returns the matching
// decoder. The columnar frame magic 0xA9 is > 0x7f, so it can never open
// a text sample line (ASCII) — one peeked byte decides: binary frames
// when it is the magic, CSV-ish text lines otherwise (including the
// cannot-peek case, which the line reader reports in its own terms).
// Frames are bounded like the TCP listener's default line bound.
func newStdinSource(r io.Reader) stdinSource {
	br := bufio.NewReader(r)
	if b, err := br.Peek(1); err == nil && b[0] == source.FrameMagic0 {
		return source.NewFrames(br, 64<<10)
	}
	return ingest.NewLineSource(br)
}

// monitorStream feeds counter samples from stdin into the monitor,
// printing events as they fire. The wire protocol is auto-detected per
// newStdinSource: binary columnar frames or CSV-ish text lines (blank
// lines and lines starting with '#' are skipped). Malformed samples are
// counted and skipped (event bad_sample, counter
// agingmf_monitor_bad_samples_total) — fatal only once more than maxBad
// of them arrive (negative = unlimited). A signal drains the stream
// gracefully.
func monitorStream(ctx context.Context, stdin io.Reader, stdout io.Writer, mon *agingmf.DualMonitor, tel *runtime.Telemetry, wd *agingmf.Watchdog, tr *trace.Tracer, fr *trace.FlightRecorder, cp *controlPlane, maxBad int) error {
	badSamples := tel.Reg.Counter("agingmf_monitor_bad_samples_total",
		"Malformed stdin samples skipped by the monitor.")
	src := newStdinSource(stdin)
	defer src.Close()
	sample, bad := 0, 0
	snk := source.NewMonitorSink(mon, source.MonitorSinkConfig{
		Watchdog: wd,
		Tracer:   tr,
		Recorder: fr,
		Source:   "stream",
		OnResume: func(at int) {
			tel.Events.Info("resumed", agingmf.EventFields{"sample": at})
		},
		OnJumps: func(_ int, jumps []agingmf.DualJump) {
			for _, j := range jumps {
				reportJump(stdout, tel.Events, "sample", j.Jump.SampleIndex, j)
				cp.jump(j)
			}
		},
		OnPhase: func(last int, from, to agingmf.Phase, _ source.Item) {
			reportPhase(stdout, tel.Events, "sample", last, from, to, "")
			cp.phase(last, from, to)
		},
	})
	for {
		it, seq, err := nextTraced(ctx, tr, "stream", src.Next)
		var ble *source.BadLineError
		switch {
		case err == nil:
			_ = snk.WriteSampled(it, seq)
			sample += len(it.Pairs)
		case errors.As(err, &ble):
			bad++
			badSamples.Inc()
			tel.Events.Warn("bad_sample", agingmf.EventFields{
				"sample": sample,
				"line":   truncateForEvent(ble.Line),
				"error":  ble.Err.Error(),
			})
			if maxBad >= 0 && bad > maxBad {
				return fmt.Errorf("sample %d: %q: %w (%d malformed samples exceed -max-bad-samples=%d)",
					sample, truncateForEvent(ble.Line), ble.Err, bad, maxBad)
			}
		case err == io.EOF:
			fmt.Fprintf(stdout, "final phase: %v after %d samples (%d jumps, %d bad skipped)\n",
				mon.Phase(), sample, len(mon.Jumps()), bad)
			return nil
		default:
			if sig, ok := runtime.Signal(ctx); ok {
				reportSignal(stdout, tel.Events, sig, "sample", sample)
				return nil
			}
			return fmt.Errorf("read stdin: %w", err)
		}
	}
}

// monitorSimulation runs the built-in simulated machine under stress.
func monitorSimulation(ctx context.Context, stdout io.Writer, mon *agingmf.DualMonitor, tel *runtime.Telemetry, wd *agingmf.Watchdog, tr *trace.Tracer, fr *trace.FlightRecorder, cp *controlPlane, opt options) error {
	mcfg := agingmf.DefaultMachineConfig()
	mcfg.RAMPages = opt.ramMiB << 20 / mcfg.PageSize
	mcfg.SwapPages = opt.swapMiB << 20 / mcfg.PageSize
	machine, err := agingmf.NewMachine(mcfg, agingmf.NewRand(opt.seed))
	if err != nil {
		return err
	}
	machine.Instrument(tel.Reg, tel.Events)
	wcfg := agingmf.DefaultWorkload()
	wcfg.Server.LeakPagesPerTick = opt.leak
	driver, err := agingmf.NewDriver(machine, wcfg, nil, agingmf.NewRand(opt.seed+1))
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "machine: %d MiB RAM, %d MiB swap, leak %.2f pages/tick, seed %d\n",
		opt.ramMiB, opt.swapMiB, opt.leak, opt.seed)

	src := source.NewSimFromParts(machine, driver, opt.maxTicks, 1)
	// Close the loop: a rejuvenation decision reboots the simulated
	// machine. The actuation happens inside cp.publish, i.e. on this
	// goroutine — the machine is not safe for concurrent use.
	cp.setActuator(agingmf.ActuatorFunc(func(string) error {
		machine.Rejuvenate("")
		fmt.Fprintf(stdout, "tick %6d  REJUVENATE (policy restart #%d)\n",
			src.Ticks(), machine.Reboots())
		return nil
	}))
	snk := source.NewMonitorSink(mon, source.MonitorSinkConfig{
		Watchdog: wd,
		Tracer:   tr,
		Recorder: fr,
		Source:   "sim",
		OnJumps: func(_ int, jumps []agingmf.DualJump) {
			for _, j := range jumps {
				reportJump(stdout, tel.Events, "tick", src.Ticks()-1, j)
				cp.jump(j)
			}
		},
		OnPhase: func(last int, from, to agingmf.Phase, it source.Item) {
			extra := fmt.Sprintf(" (free %.1f MiB, swap %.1f MiB)",
				it.Counters[0].FreeMemoryBytes/(1<<20), it.Counters[0].UsedSwapBytes/(1<<20))
			reportPhase(stdout, tel.Events, "tick", src.Ticks()-1, from, to, extra)
			cp.phase(last, from, to)
		},
	})
	for src != nil { // nil when maxTicks < 1: nothing to monitor
		src.TickEvery = opt.tickEvery
		it, seq, err := nextTraced(ctx, tr, "sim", src.Next)
		if err == io.EOF {
			break
		}
		if err != nil {
			if sig, ok := runtime.Signal(ctx); ok {
				reportSignal(stdout, tel.Events, sig, "tick", src.Ticks())
				break
			}
			return err
		}
		if it.Crash != agingmf.CrashNone {
			// The machine emits the structured crash event itself; its
			// terminal counters are not fed to the monitor.
			fmt.Fprintf(stdout, "tick %6d  CRASH (%v)\n", it.CrashTick, it.Crash)
			break
		}
		_ = snk.WriteSampled(it, seq)
	}
	if n := cp.rejuvenations(); n > 0 {
		fmt.Fprintf(stdout, "rejuvenations: %d policy restarts\n", n)
	}
	fmt.Fprintf(stdout, "final phase: %v (%d jumps across both counters)\n",
		mon.Phase(), len(mon.Jumps()))
	return nil
}
