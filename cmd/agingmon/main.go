// Command agingmon attaches the multifractal aging monitor to memory
// counters online and prints aging events (volatility jumps, phase
// changes) as they happen.
//
// By default it monitors a simulated machine under the stress workload
// (the live-demo counterpart of the batch experiments). With -stdin it
// instead reads "free_bytes,swap_bytes" lines from standard input, one
// per sample — pipe a real system's counters in:
//
//	while true; do
//	  awk '/MemAvailable/{f=$2*1024} /SwapTotal/{t=$2*1024} /SwapFree/{s=$2*1024}
//	       END{printf "%d,%d\n", f, t-s}' /proc/meminfo
//	  sleep 1
//	done | agingmon -stdin
//
// Usage:
//
//	agingmon [-seed N] [-ram-mib N] [-swap-mib N] [-leak PAGES]
//	         [-max-ticks N] [-history-limit N] [-stdin]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"agingmf"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "agingmon:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("agingmon", flag.ContinueOnError)
	var (
		seed      = fs.Int64("seed", 1, "random seed")
		ramMiB    = fs.Int("ram-mib", 64, "physical memory in MiB")
		swapMiB   = fs.Int("swap-mib", 24, "swap space in MiB")
		leak      = fs.Float64("leak", 3.5, "server leak rate in pages/tick")
		maxTicks  = fs.Int("max-ticks", 60000, "simulation horizon in ticks")
		limit     = fs.Int("history-limit", 4096, "monitor history bound (0 = unlimited)")
		fromStdin = fs.Bool("stdin", false, `read "free_bytes,swap_bytes" samples from stdin instead of simulating`)
		stateFile = fs.String("state", "", "restore monitor state from this file at start, save on exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	mon, err := loadOrNewMonitor(*stateFile, *limit, stdout)
	if err != nil {
		return err
	}
	if *fromStdin {
		err = monitorStream(stdin, stdout, mon)
	} else {
		err = monitorSimulation(stdout, mon, *seed, *ramMiB, *swapMiB, *leak, *maxTicks)
	}
	if err != nil {
		return err
	}
	return saveMonitor(*stateFile, mon)
}

// loadOrNewMonitor restores the monitor from stateFile if it exists, or
// builds a fresh one.
func loadOrNewMonitor(stateFile string, limit int, stdout io.Writer) (*agingmf.DualMonitor, error) {
	if stateFile != "" {
		if blob, err := os.ReadFile(stateFile); err == nil {
			mon, err := agingmf.RestoreDualMonitor(blob)
			if err != nil {
				return nil, fmt.Errorf("restore %s: %w", stateFile, err)
			}
			fmt.Fprintf(stdout, "restored monitor state: %d samples seen, phase %v\n",
				mon.SamplesSeen(), mon.Phase())
			return mon, nil
		}
	}
	monCfg := agingmf.DefaultMonitorConfig()
	monCfg.HistoryLimit = limit
	return agingmf.NewDualMonitor(monCfg)
}

// saveMonitor persists the monitor when a state file is configured.
func saveMonitor(stateFile string, mon *agingmf.DualMonitor) error {
	if stateFile == "" {
		return nil
	}
	blob, err := mon.SaveState()
	if err != nil {
		return fmt.Errorf("save state: %w", err)
	}
	if err := os.WriteFile(stateFile, blob, 0o600); err != nil {
		return fmt.Errorf("save state: %w", err)
	}
	return nil
}

// monitorStream feeds counter samples from a CSV-ish stream into the
// monitor, printing events as they fire. Blank lines and lines starting
// with '#' are skipped.
func monitorStream(stdin io.Reader, stdout io.Writer, mon *agingmf.DualMonitor) error {
	scanner := bufio.NewScanner(stdin)
	lastPhase := agingmf.PhaseHealthy
	sample := 0
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) != 2 {
			return fmt.Errorf("sample %d: want \"free,swap\", got %q", sample, line)
		}
		free, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		if err != nil {
			return fmt.Errorf("sample %d: free: %w", sample, err)
		}
		swap, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil {
			return fmt.Errorf("sample %d: swap: %w", sample, err)
		}
		for _, j := range mon.Add(free, swap) {
			fmt.Fprintf(stdout, "sample %6d  jump on %v (volatility %.4f, score %.2f)\n",
				sample, j.Counter, j.Jump.Volatility, j.Jump.Score)
		}
		if phase := mon.Phase(); phase != lastPhase {
			fmt.Fprintf(stdout, "sample %6d  phase: %v -> %v\n", sample, lastPhase, phase)
			lastPhase = phase
		}
		sample++
	}
	if err := scanner.Err(); err != nil {
		return fmt.Errorf("read stdin: %w", err)
	}
	fmt.Fprintf(stdout, "final phase: %v after %d samples (%d jumps)\n",
		lastPhase, sample, len(mon.Jumps()))
	return nil
}

// monitorSimulation runs the built-in simulated machine under stress.
func monitorSimulation(stdout io.Writer, mon *agingmf.DualMonitor, seed int64, ramMiB, swapMiB int, leak float64, maxTicks int) error {
	mcfg := agingmf.DefaultMachineConfig()
	mcfg.RAMPages = ramMiB << 20 / mcfg.PageSize
	mcfg.SwapPages = swapMiB << 20 / mcfg.PageSize
	machine, err := agingmf.NewMachine(mcfg, agingmf.NewRand(seed))
	if err != nil {
		return err
	}
	wcfg := agingmf.DefaultWorkload()
	wcfg.Server.LeakPagesPerTick = leak
	driver, err := agingmf.NewDriver(machine, wcfg, nil, agingmf.NewRand(seed+1))
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "machine: %d MiB RAM, %d MiB swap, leak %.2f pages/tick, seed %d\n",
		ramMiB, swapMiB, leak, seed)
	lastPhase := agingmf.PhaseHealthy
	for tick := 0; tick < maxTicks; tick++ {
		counters, err := driver.Step()
		if kind, at := machine.Crashed(); kind != agingmf.CrashNone {
			fmt.Fprintf(stdout, "tick %6d  CRASH (%v)\n", at, kind)
			break
		}
		if err != nil {
			return err
		}
		for _, j := range mon.Add(counters.FreeMemoryBytes, counters.UsedSwapBytes) {
			fmt.Fprintf(stdout, "tick %6d  jump on %v (volatility %.4f, score %.2f)\n",
				tick, j.Counter, j.Jump.Volatility, j.Jump.Score)
		}
		phase := mon.Phase()
		if phase != lastPhase {
			fmt.Fprintf(stdout, "tick %6d  phase: %v -> %v (free %.1f MiB, swap %.1f MiB)\n",
				tick, lastPhase, phase,
				counters.FreeMemoryBytes/(1<<20), counters.UsedSwapBytes/(1<<20))
			lastPhase = phase
		}
	}
	fmt.Fprintf(stdout, "final phase: %v (%d jumps across both counters)\n",
		lastPhase, len(mon.Jumps()))
	return nil
}
