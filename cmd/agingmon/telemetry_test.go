package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer lets the test read run()'s output while run() is still
// writing it from another goroutine.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var metricsURLPattern = regexp.MustCompile(`metrics: (http://\S+)/metrics`)

// scrape fetches one page off the run's metrics server.
func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	return string(body)
}

// sampleValue extracts the value of an exposition line by exact series
// prefix ("name" or `name{label="v"}`).
func sampleValue(t *testing.T, exposition, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(exposition, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			var v float64
			if _, err := fmt.Sscanf(rest, "%g", &v); err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("series %s not in exposition:\n%s", series, exposition)
	return 0
}

func TestRunServesLiveMetrics(t *testing.T) {
	out := &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-sim", "-seed", "1", "-max-ticks", "3000",
			"-tick-every", "1ms", "-metrics-addr", "127.0.0.1:0",
		}, nil, out)
	}()
	var base string
	for i := 0; i < 500 && base == ""; i++ {
		if m := metricsURLPattern.FindStringSubmatch(out.String()); m != nil {
			base = m[1]
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}
	if base == "" {
		t.Fatalf("bound metrics address never printed:\n%s", out.String())
	}
	first := scrape(t, base+"/metrics")
	for _, want := range []string{
		"agingmf_machine_free_pages",
		"agingmf_monitor_volatility",
		`agingmf_monitor_samples_total{counter="free-memory"}`,
		`agingmf_monitor_jumps_total{`,
	} {
		if !strings.Contains(first, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if got := scrape(t, base+"/healthz"); got != "ok\n" {
		t.Errorf("healthz = %q, want ok", got)
	}
	// Gauges and counters must move while the run is live.
	n1 := sampleValue(t, first, `agingmf_monitor_samples_total{counter="free-memory"}`)
	time.Sleep(200 * time.Millisecond)
	second := scrape(t, base+"/metrics")
	n2 := sampleValue(t, second, `agingmf_monitor_samples_total{counter="free-memory"}`)
	if n2 <= n1 {
		t.Errorf("samples_total did not advance during the run: %v -> %v", n1, n2)
	}
	if err := <-done; err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunEmitsEventJSONL(t *testing.T) {
	evPath := t.TempDir() + "/events.jsonl"
	var out bytes.Buffer
	if err := run([]string{"-seed", "1", "-max-ticks", "20000", "-events", evPath}, nil, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(evPath)
	if err != nil {
		t.Fatalf("read events: %v", err)
	}
	types := map[string]int{}
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("event line not JSON: %q: %v", line, err)
		}
		for _, key := range []string{"ts", "level", "event"} {
			if _, ok := rec[key].(string); !ok {
				t.Fatalf("event missing %q: %q", key, line)
			}
		}
		types[rec["event"].(string)]++
	}
	for _, want := range []string{"jump", "phase_change", "crash"} {
		if types[want] == 0 {
			t.Errorf("no %q event in stream (saw %v)", want, types)
		}
	}
}

func TestRunSaveFailureReported(t *testing.T) {
	// The state path is a directory: restore skips it, but the save at
	// exit must fail loudly instead of dropping the state on the floor.
	var out bytes.Buffer
	err := run([]string{"-stdin", "-state", t.TempDir()}, strings.NewReader("1000,0\n"), &out)
	if err == nil || !strings.Contains(err.Error(), "save state") {
		t.Errorf("unwritable state path not reported, got: %v", err)
	}
}

func TestRunStateSavedOnStreamError(t *testing.T) {
	// A malformed sample aborts the stream, but everything ingested
	// before it must still be persisted.
	state := t.TempDir() + "/mon.state"
	var out bytes.Buffer
	err := run([]string{"-stdin", "-state", state, "-max-bad-samples", "0"},
		strings.NewReader("1000,0\n2000,0\nnot-a-sample\n"), &out)
	if err == nil {
		t.Fatal("malformed sample should fail a strict-mode run")
	}
	var out2 bytes.Buffer
	if err := run([]string{"-stdin", "-state", state}, strings.NewReader(""), &out2); err != nil {
		t.Fatalf("restore run: %v", err)
	}
	if !strings.Contains(out2.String(), "restored monitor state: 2 samples") {
		t.Errorf("pre-error samples lost:\n%s", out2.String())
	}
}

func TestRunEventsOpenFailure(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-events", t.TempDir() + "/no/such/dir/e.jsonl", "-max-ticks", "10"}, nil, &out)
	if err == nil || !strings.Contains(err.Error(), "open events file") {
		t.Errorf("unopenable events path not reported, got: %v", err)
	}
}
