package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer lets the test read run()'s output while run() is still
// writing it from another goroutine.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var metricsURLPattern = regexp.MustCompile(`metrics: (http://\S+)/metrics`)

// scrape fetches one page off the run's metrics server.
func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	return string(body)
}

// sampleValue extracts the value of an exposition line by exact series
// prefix ("name" or `name{label="v"}`).
func sampleValue(t *testing.T, exposition, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(exposition, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			var v float64
			if _, err := fmt.Sscanf(rest, "%g", &v); err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("series %s not in exposition:\n%s", series, exposition)
	return 0
}

func TestRunServesLiveMetrics(t *testing.T) {
	out := &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-sim", "-seed", "1", "-max-ticks", "3000",
			"-tick-every", "1ms", "-metrics-addr", "127.0.0.1:0",
		}, nil, out)
	}()
	var base string
	for i := 0; i < 500 && base == ""; i++ {
		if m := metricsURLPattern.FindStringSubmatch(out.String()); m != nil {
			base = m[1]
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}
	if base == "" {
		t.Fatalf("bound metrics address never printed:\n%s", out.String())
	}
	first := scrape(t, base+"/metrics")
	for _, want := range []string{
		"agingmf_machine_free_pages",
		"agingmf_monitor_volatility",
		`agingmf_monitor_samples_total{counter="free-memory"}`,
		`agingmf_monitor_jumps_total{`,
	} {
		if !strings.Contains(first, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if got := scrape(t, base+"/healthz"); got != "ok\n" {
		t.Errorf("healthz = %q, want ok", got)
	}
	// Gauges and counters must move while the run is live.
	n1 := sampleValue(t, first, `agingmf_monitor_samples_total{counter="free-memory"}`)
	time.Sleep(200 * time.Millisecond)
	second := scrape(t, base+"/metrics")
	n2 := sampleValue(t, second, `agingmf_monitor_samples_total{counter="free-memory"}`)
	if n2 <= n1 {
		t.Errorf("samples_total did not advance during the run: %v -> %v", n1, n2)
	}
	if err := <-done; err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunEmitsEventJSONL(t *testing.T) {
	evPath := t.TempDir() + "/events.jsonl"
	var out bytes.Buffer
	if err := run([]string{"-seed", "1", "-max-ticks", "20000", "-events", evPath}, nil, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(evPath)
	if err != nil {
		t.Fatalf("read events: %v", err)
	}
	types := map[string]int{}
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("event line not JSON: %q: %v", line, err)
		}
		for _, key := range []string{"ts", "level", "event"} {
			if _, ok := rec[key].(string); !ok {
				t.Fatalf("event missing %q: %q", key, line)
			}
		}
		types[rec["event"].(string)]++
	}
	for _, want := range []string{"jump", "phase_change", "crash"} {
		if types[want] == 0 {
			t.Errorf("no %q event in stream (saw %v)", want, types)
		}
	}
}

func TestRunSaveFailureReported(t *testing.T) {
	// The state path is a directory: restore skips it, but the save at
	// exit must fail loudly instead of dropping the state on the floor.
	var out bytes.Buffer
	err := run([]string{"-stdin", "-state", t.TempDir()}, strings.NewReader("1000,0\n"), &out)
	if err == nil || !strings.Contains(err.Error(), "save state") {
		t.Errorf("unwritable state path not reported, got: %v", err)
	}
}

func TestRunStateSavedOnStreamError(t *testing.T) {
	// A malformed sample aborts the stream, but everything ingested
	// before it must still be persisted.
	state := t.TempDir() + "/mon.state"
	var out bytes.Buffer
	err := run([]string{"-stdin", "-state", state, "-max-bad-samples", "0"},
		strings.NewReader("1000,0\n2000,0\nnot-a-sample\n"), &out)
	if err == nil {
		t.Fatal("malformed sample should fail a strict-mode run")
	}
	var out2 bytes.Buffer
	if err := run([]string{"-stdin", "-state", state}, strings.NewReader(""), &out2); err != nil {
		t.Fatalf("restore run: %v", err)
	}
	if !strings.Contains(out2.String(), "restored monitor state: 2 samples") {
		t.Errorf("pre-error samples lost:\n%s", out2.String())
	}
}

func TestRunEventsOpenFailure(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-events", t.TempDir() + "/no/such/dir/e.jsonl", "-max-ticks", "10"}, nil, &out)
	if err == nil || !strings.Contains(err.Error(), "open events file") {
		t.Errorf("unopenable events path not reported, got: %v", err)
	}
}

// TestRunServesTraceEndpoints drives a traced simulation run and checks
// the observability surface that rides the metrics listener: the flight
// recorder under the mode's source label, the Chrome/Perfetto export,
// and the pipeline stage histograms.
func TestRunServesTraceEndpoints(t *testing.T) {
	out := &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-sim", "-seed", "1", "-max-ticks", "4000",
			"-tick-every", "1ms", "-metrics-addr", "127.0.0.1:0",
			"-trace-sample", "1/8", "-flight-recorder-depth", "16",
		}, nil, out)
	}()
	var base string
	for i := 0; i < 500 && base == ""; i++ {
		if m := metricsURLPattern.FindStringSubmatch(out.String()); m != nil {
			base = m[1]
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}
	if base == "" {
		t.Fatalf("bound metrics address never printed:\n%s", out.String())
	}

	// Poll until the recorder has content: the run is live, so the first
	// scrape can race the first item.
	var rec struct {
		Source  string           `json:"source"`
		Depth   int              `json:"depth"`
		Records []map[string]any `json:"records"`
	}
	deadline := time.Now().Add(5 * time.Second)
	for rec.Depth == 0 && time.Now().Before(deadline) {
		if err := json.Unmarshal([]byte(scrape(t, base+"/api/trace/sim")), &rec); err != nil {
			t.Fatalf("recorder endpoint not JSON: %v", err)
		}
		if rec.Depth == 0 {
			time.Sleep(10 * time.Millisecond)
		}
	}
	if rec.Source != "sim" || rec.Depth == 0 || len(rec.Records) != rec.Depth {
		t.Errorf("recorder = source %q depth %d (%d records), want sim with content",
			rec.Source, rec.Depth, len(rec.Records))
	}

	var export struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	for len(export.TraceEvents) == 0 && time.Now().Before(deadline) {
		if err := json.Unmarshal([]byte(scrape(t, base+"/api/trace/export")), &export); err != nil {
			t.Fatalf("trace export not JSON: %v", err)
		}
		if len(export.TraceEvents) == 0 {
			time.Sleep(10 * time.Millisecond)
		}
	}
	names := map[string]bool{}
	for _, ev := range export.TraceEvents {
		if n, ok := ev["name"].(string); ok {
			names[n] = true
		}
	}
	for _, want := range []string{"source.next", "detect"} {
		if !names[want] {
			t.Errorf("export has no %q span (saw %v)", want, names)
		}
	}

	if got := scrape(t, base+"/api/trace/export"); !strings.Contains(got, "displayTimeUnit") {
		t.Errorf("export missing Chrome trace envelope: %.120s", got)
	}
	resp, err := http.Get(base + "/api/trace/no-such-source")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown source label = status %d, want 404", resp.StatusCode)
	}
	if m := scrape(t, base+"/metrics"); !strings.Contains(m, "agingmf_pipeline_stage_seconds") {
		t.Error("stage histograms absent from /metrics")
	}

	if err := <-done; err != nil {
		t.Fatalf("run: %v", err)
	}
}
