package main

import (
	"flag"
	"time"
)

// options is the parsed flag surface of one agingmon run.
type options struct {
	seed         int64
	ramMiB       int
	swapMiB      int
	leak         float64
	maxTicks     int
	limit        int
	sim          bool
	stdin        bool
	state        string
	metricsAddr  string
	pprof        bool
	events       string
	tickEvery    time.Duration
	maxBad       int
	stallTimeout time.Duration
	traceSample  string
	flightDepth  int
	rejuvPolicy  string
}

// newFlagSet declares the agingmon flag surface — names and defaults are
// part of the command's compatibility contract (pinned by the
// flag-surface test).
func newFlagSet(opt *options) *flag.FlagSet {
	fs := flag.NewFlagSet("agingmon", flag.ContinueOnError)
	fs.Int64Var(&opt.seed, "seed", 1, "random seed")
	fs.IntVar(&opt.ramMiB, "ram-mib", 64, "physical memory in MiB")
	fs.IntVar(&opt.swapMiB, "swap-mib", 24, "swap space in MiB")
	fs.Float64Var(&opt.leak, "leak", 3.5, "server leak rate in pages/tick")
	fs.IntVar(&opt.maxTicks, "max-ticks", 60000, "simulation horizon in ticks")
	fs.IntVar(&opt.limit, "history-limit", 4096, "monitor history bound (0 = unlimited)")
	fs.BoolVar(&opt.sim, "sim", true, "monitor the built-in simulated machine (the default; -stdin overrides)")
	fs.BoolVar(&opt.stdin, "stdin", false, `read "free_bytes,swap_bytes" samples from stdin instead of simulating`)
	fs.StringVar(&opt.state, "state", "", "restore monitor state from this file at start, save on exit")
	fs.StringVar(&opt.metricsAddr, "metrics-addr", "", "serve /metrics and /healthz on this address while running (e.g. :9177; empty disables)")
	fs.BoolVar(&opt.pprof, "pprof", false, "also serve net/http/pprof under /debug/pprof/ (needs -metrics-addr)")
	fs.StringVar(&opt.events, "events", "", `append structured JSONL events to this file ("-" = stdout, empty disables)`)
	fs.DurationVar(&opt.tickEvery, "tick-every", 0, "pace simulation ticks in wall time (0 = as fast as possible)")
	fs.IntVar(&opt.maxBad, "max-bad-samples", 100, "tolerate this many malformed stdin samples before aborting (0 = abort on the first, negative = unlimited)")
	fs.DurationVar(&opt.stallTimeout, "stall-timeout", 0, `declare the stream "stalled" (503 on /healthz, stalled event) when no sample arrives within this long (0 disables)`)
	fs.StringVar(&opt.traceSample, "trace-sample", "0", `pipeline trace sampling: "1/N" or "N" traces one item in N, "0" disables; spans feed /api/trace/export and the agingmf_pipeline_stage_seconds histograms (needs -metrics-addr to serve them)`)
	fs.IntVar(&opt.flightDepth, "flight-recorder-depth", 64, "flight recorder: retain the last N annotated samples, served by /api/trace/{source} (0 disables)")
	fs.StringVar(&opt.rejuvPolicy, "rejuv-policy", "", `closed-loop rejuvenation policy: "periodic:<samples>" or "phase:<phase>[:<min-uptime>]" (empty disables); in sim mode decisions reboot the simulated machine, on a stream they are logged dry-run, status at GET /api/rejuv`)
	return fs
}
