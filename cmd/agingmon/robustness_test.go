package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

// waitContains polls the buffer until the substring shows up.
func waitContains(t *testing.T, b *syncBuffer, want string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if strings.Contains(b.String(), want) {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %q in output:\n%s", want, b.String())
}

func TestSignalDrainsAndSavesState(t *testing.T) {
	state := t.TempDir() + "/mon.state"
	pr, pw := io.Pipe()
	out := &syncBuffer{}
	errc := make(chan error, 1)
	go func() {
		errc <- run([]string{"-stdin", "-state", state}, pr, out)
	}()
	// Feed some warmup samples, then interrupt the process.
	level := 1e9
	for i := 0; i < 500; i++ {
		level -= 1e4
		if _, err := fmt.Fprintf(pw, "%.0f,0\n", level); err != nil {
			t.Fatal(err)
		}
	}
	// Give the monitor loop a moment to drain the buffered samples, then
	// interrupt while run's Notify handler is installed.
	time.Sleep(50 * time.Millisecond)
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("interrupted run returned %v, want graceful nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run did not drain after SIGINT")
	}
	pw.Close()
	if !strings.Contains(out.String(), "draining and saving state") {
		t.Errorf("signal not reported:\n%s", out.String())
	}
	// The warmup must have been persisted: a follow-up session restores it.
	var out2 bytes.Buffer
	if err := run([]string{"-stdin", "-state", state}, strings.NewReader("1,0\n"), &out2); err != nil {
		t.Fatalf("follow-up run: %v", err)
	}
	// The exact count depends on how many buffered samples the loop had
	// drained when the signal won the select; what matters is that the
	// warmup survived.
	if !strings.Contains(out2.String(), "restored monitor state:") {
		t.Errorf("state lost across the signal:\n%s", out2.String())
	}
}

func TestWatchdogStallSurfacesOnHealthz(t *testing.T) {
	events := t.TempDir() + "/events.jsonl"
	pr, pw := io.Pipe()
	out := &syncBuffer{}
	errc := make(chan error, 1)
	go func() {
		errc <- run([]string{
			"-stdin",
			"-stall-timeout", "30ms",
			"-metrics-addr", "127.0.0.1:0",
			"-events", events,
		}, pr, out)
	}()
	waitContains(t, out, "metrics: http://")
	m := metricsURLPattern.FindStringSubmatch(out.String())
	if m == nil {
		t.Fatalf("metrics URL not printed:\n%s", out.String())
	}
	base := m[1]

	healthz := func() (int, string) {
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			t.Fatalf("healthz: %v", err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	// Live stream: healthy.
	if _, err := fmt.Fprintf(pw, "1000000,0\n"); err != nil {
		t.Fatal(err)
	}
	if code, _ := healthz(); code != http.StatusOK {
		t.Fatalf("healthz = %d while samples flow, want 200", code)
	}

	// Starve the stream past the deadline: healthz must flip to 503.
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, body := healthz()
		if code == http.StatusServiceUnavailable {
			if !strings.Contains(body, "stalled") {
				t.Errorf("503 body %q does not explain the stall", body)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("healthz never reported the stall")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// A fresh sample recovers the stream.
	if _, err := fmt.Fprintf(pw, "999000,0\n"); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for {
		if code, _ := healthz(); code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("healthz never recovered after the stall")
		}
		time.Sleep(5 * time.Millisecond)
	}

	pw.Close()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run did not finish after stdin closed")
	}
	blob, err := os.ReadFile(events)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"event":"stalled"`, `"event":"resumed"`} {
		if !strings.Contains(string(blob), want) {
			t.Errorf("events missing %s:\n%s", want, blob)
		}
	}
}

func TestBadSampleCounterOnMetrics(t *testing.T) {
	pr, pw := io.Pipe()
	out := &syncBuffer{}
	errc := make(chan error, 1)
	go func() {
		errc <- run([]string{"-stdin", "-metrics-addr", "127.0.0.1:0"}, pr, out)
	}()
	waitContains(t, out, "metrics: http://")
	m := metricsURLPattern.FindStringSubmatch(out.String())
	if m == nil {
		t.Fatalf("metrics URL not printed:\n%s", out.String())
	}
	if _, err := io.WriteString(pw, "1000,0\ngarbage\nalso garbage\n2000,0\n"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(m[1] + "/metrics")
		if err != nil {
			t.Fatalf("metrics: %v", err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if strings.Contains(string(body), "agingmf_monitor_bad_samples_total 2") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("bad-sample counter never reached 2:\n%s", body)
		}
		time.Sleep(5 * time.Millisecond)
	}
	pw.Close()
	if err := <-errc; err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestCorruptStateQuarantinedOnRestore(t *testing.T) {
	state := t.TempDir() + "/mon.state"
	if err := os.WriteFile(state, []byte("garbage, not a monitor snapshot"), 0o600); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	// A corrupt state file must not wedge startup in a crash loop: the
	// run quarantines it, starts fresh, and persists a clean state.
	if err := run([]string{"-stdin", "-state", state}, strings.NewReader("1e9,0\n2e9,0\n"), &out); err != nil {
		t.Fatalf("run with corrupt state: %v", err)
	}
	if !strings.Contains(out.String(), "quarantined") {
		t.Errorf("quarantine not reported:\n%s", out.String())
	}
	if _, err := os.Stat(state + ".corrupt"); err != nil {
		t.Errorf("corrupt state not moved aside: %v", err)
	}
	// The fresh session saved a restorable snapshot at exit.
	var out2 bytes.Buffer
	if err := run([]string{"-stdin", "-state", state}, strings.NewReader("1e9,0\n"), &out2); err != nil {
		t.Fatalf("follow-up run: %v", err)
	}
	if !strings.Contains(out2.String(), "restored monitor state:") {
		t.Errorf("fresh state not persisted after quarantine:\n%s", out2.String())
	}
}
