package main

import (
	"math"
	"strings"
	"testing"

	"agingmf"
)

// FuzzParseSample drives the stdin sample parser with arbitrary lines —
// the exact input a hostile or corrupted producer controls. The parser
// (shared with cmd/agingd via agingmf.ParseIngestLine) must never panic,
// and accepted samples must carry only finite counters in every wire
// form: "free,swap", "free swap", "timestamp free swap", each optionally
// prefixed "source=ID ".
func FuzzParseSample(f *testing.F) {
	for _, seed := range []string{
		"1000000,2048",
		" 3.5e9 , 0 ",
		"-1,-2",
		"",
		"free,swap",
		"1,2,3",
		"NaN,0",
		"0,+Inf",
		"1e309,0",
		"0x10,0",
		"1.,.5",
		strings.Repeat("9", 400) + "," + strings.Repeat("9", 400),
		"1\x00,2",
		"\ufeff1,2",
		"1e6 2048",
		"17.5 1e6 2048",
		"source=web-01 1e6 2048",
		"source=web-01 1000000,2048",
		"source= 1,2",
		"source=" + strings.Repeat("x", 400) + " 1 2",
		"source=a,b 1 2",
		"1 2 3 4",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, line string) {
		free, swap, err := parseSample(line)
		if err != nil {
			return
		}
		// Accepted values must be finite — anything else would poison the
		// monitor's statistics downstream.
		if math.IsNaN(free) || math.IsInf(free, 0) || math.IsNaN(swap) || math.IsInf(swap, 0) {
			t.Fatalf("parseSample(%q) accepted non-finite values (%v, %v)", line, free, swap)
		}
		// The shared parser must agree with the local wrapper, and its
		// canonical re-rendering must round-trip to the same counters.
		s, err := agingmf.ParseIngestLine(line)
		if err != nil {
			t.Fatalf("parseSample(%q) accepted what ParseIngestLine rejects: %v", line, err)
		}
		if s.Free != free || s.Swap != swap {
			t.Fatalf("parseSample(%q) = (%v, %v), ParseIngestLine = (%v, %v)",
				line, free, swap, s.Free, s.Swap)
		}
		rt, err := agingmf.ParseIngestLine(agingmf.FormatIngestLine(s))
		if err != nil {
			t.Fatalf("FormatIngestLine(%q) does not re-parse: %v", line, err)
		}
		if rt != s {
			t.Fatalf("round trip of %q: got %+v, want %+v", line, rt, s)
		}
	})
}
