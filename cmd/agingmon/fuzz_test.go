package main

import (
	"math"
	"strings"
	"testing"

	"agingmf"
)

// FuzzParseSample drives the stdin sample parser with arbitrary lines —
// the exact input a hostile or corrupted producer controls. The parsers
// (shared with cmd/agingd via agingmf.ParseIngestLine / ParseIngestBatch)
// must never panic, and accepted samples must carry only finite counters
// in every wire form: "free,swap", "free swap", "timestamp free swap",
// "batch;free swap;...", each optionally prefixed/tagged "source=ID".
func FuzzParseSample(f *testing.F) {
	for _, seed := range []string{
		"1000000,2048",
		" 3.5e9 , 0 ",
		"-1,-2",
		"",
		"free,swap",
		"1,2,3",
		"NaN,0",
		"0,+Inf",
		"1e309,0",
		"0x10,0",
		"1.,.5",
		strings.Repeat("9", 400) + "," + strings.Repeat("9", 400),
		"1\x00,2",
		"\ufeff1,2",
		"1e6 2048",
		"17.5 1e6 2048",
		"source=web-01 1e6 2048",
		"source=web-01 1000000,2048",
		"source= 1,2",
		"source=" + strings.Repeat("x", 400) + " 1 2",
		"source=a,b 1 2",
		"1 2 3 4",
		"batch;1e6 2048;2e6 4096",
		"batch;source=web-01;1 2",
		"batch;NaN 0",
		"batch;1 2;;3 4",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, line string) {
		pairs, err := parseSamples(line)
		if err != nil {
			return
		}
		if len(pairs) == 0 {
			t.Fatalf("parseSamples(%q) accepted an empty line", line)
		}
		// Accepted values must be finite — anything else would poison the
		// monitor's statistics downstream.
		for _, p := range pairs {
			if math.IsNaN(p[0]) || math.IsInf(p[0], 0) || math.IsNaN(p[1]) || math.IsInf(p[1], 0) {
				t.Fatalf("parseSamples(%q) accepted non-finite values %v", line, p)
			}
		}
		// The local wrapper must agree with the shared parsers, and their
		// canonical re-rendering must round-trip to the same counters.
		if agingmf.IsIngestBatchLine(line) {
			b, err := agingmf.ParseIngestBatch(line)
			if err != nil {
				t.Fatalf("parseSamples(%q) accepted what ParseIngestBatch rejects: %v", line, err)
			}
			if len(b.Pairs) != len(pairs) {
				t.Fatalf("parseSamples(%q) = %d pairs, ParseIngestBatch = %d", line, len(pairs), len(b.Pairs))
			}
			return
		}
		s, err := agingmf.ParseIngestLine(line)
		if err != nil {
			t.Fatalf("parseSamples(%q) accepted what ParseIngestLine rejects: %v", line, err)
		}
		if len(pairs) != 1 || s.Free != pairs[0][0] || s.Swap != pairs[0][1] {
			t.Fatalf("parseSamples(%q) = %v, ParseIngestLine = (%v, %v)",
				line, pairs, s.Free, s.Swap)
		}
		rt, err := agingmf.ParseIngestLine(agingmf.FormatIngestLine(s))
		if err != nil {
			t.Fatalf("FormatIngestLine(%q) does not re-parse: %v", line, err)
		}
		if rt != s {
			t.Fatalf("round trip of %q: got %+v, want %+v", line, rt, s)
		}
	})
}
