package main

import (
	"math"
	"strings"
	"testing"
)

// FuzzParseSample drives the stdin sample parser with arbitrary lines —
// the exact input a hostile or corrupted producer controls. The parser
// must never panic and its accept/reject contract must hold: accepted
// samples are exactly two comma-separated finite floats.
func FuzzParseSample(f *testing.F) {
	for _, seed := range []string{
		"1000000,2048",
		" 3.5e9 , 0 ",
		"-1,-2",
		"",
		"free,swap",
		"1,2,3",
		"NaN,0",
		"0,+Inf",
		"1e309,0",
		"0x10,0",
		"1.,.5",
		strings.Repeat("9", 400) + "," + strings.Repeat("9", 400),
		"1\x00,2",
		"\ufeff1,2",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, line string) {
		free, swap, err := parseSample(line)
		if err != nil {
			return
		}
		// Accepted values must be finite — anything else would poison the
		// monitor's statistics downstream.
		if math.IsNaN(free) || math.IsInf(free, 0) || math.IsNaN(swap) || math.IsInf(swap, 0) {
			t.Fatalf("parseSample(%q) accepted non-finite values (%v, %v)", line, free, swap)
		}
		// The accept contract: exactly two fields, each itself re-parsable.
		parts := strings.Split(line, ",")
		if len(parts) != 2 {
			t.Fatalf("parseSample(%q) accepted %d fields", line, len(parts))
		}
		if _, _, err := parseSample(parts[0] + "," + parts[1]); err != nil {
			t.Fatalf("parseSample(%q) not idempotent: %v", line, err)
		}
	})
}
