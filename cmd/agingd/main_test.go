package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// syncBuf is a goroutine-safe stdout sink for a daemon under test.
type syncBuf struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// waitPrefix polls the daemon's stdout for a line with the given prefix
// and returns the rest of that line.
func waitPrefix(t *testing.T, buf *syncBuf, prefix string) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		for _, line := range strings.Split(buf.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, prefix); ok {
				return strings.TrimSpace(rest)
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("daemon never printed %q; output so far:\n%s", prefix, buf.String())
	return ""
}

// TestSelfTestMode runs the daemon's built-in end-to-end verification:
// simulated machines through the real socket, zero loss, monitor parity.
func TestSelfTestMode(t *testing.T) {
	var buf syncBuf
	err := run([]string{
		"-listen", "127.0.0.1:0", "-http", "",
		"-selftest", "-selftest-sources", "48", "-selftest-samples", "32",
		"-selftest-conns", "7", "-seed", "3",
	}, &buf)
	if err != nil {
		t.Fatalf("selftest failed: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "selftest: PASS") {
		t.Errorf("no PASS verdict:\n%s", buf.String())
	}
}

// TestSelfTestModeTraced runs the same verification with the pipeline
// tracer and flight recorder on: parity must hold on the annotated path,
// every source's recorder tail must match the wire trace, and the live
// /api/trace/export endpoint must serve valid Perfetto JSON.
func TestSelfTestModeTraced(t *testing.T) {
	var buf syncBuf
	err := run([]string{
		"-listen", "127.0.0.1:0", "-http", "127.0.0.1:0",
		"-trace-sample", "1/16", "-flight-recorder-depth", "32",
		"-selftest", "-selftest-sources", "24", "-selftest-samples", "48",
		"-selftest-conns", "5", "-seed", "11",
	}, &buf)
	if err != nil {
		t.Fatalf("traced selftest failed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "selftest: PASS") {
		t.Errorf("no PASS verdict:\n%s", out)
	}
	if !strings.Contains(out, "trace export ok") {
		t.Errorf("no trace export verification:\n%s", out)
	}
	if strings.Contains(out, " 0 trace spans") {
		t.Errorf("tracer recorded nothing:\n%s", out)
	}
}

// sourceStatus polls the daemon's HTTP API for one source's sample count.
func sourceSamples(t *testing.T, api, id string) (int64, bool) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("http://%s/api/sources/%s/status", api, id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, false
	}
	var st struct {
		Samples int64 `json:"samples"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st.Samples, true
}

func waitSamples(t *testing.T, api, id string, want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if n, ok := sourceSamples(t, api, id); ok && n >= want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("source %s never reached %d samples", id, want)
}

// TestInterruptRestartResumes is the daemon-level crash-recovery test:
// feed a daemon, kill it with SIGINT (graceful drain + final snapshot),
// restart it on the same snapshot file, and verify every source resumes
// exactly where its monitor stopped.
func TestInterruptRestartResumes(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "agingd.snap")

	daemon := func() (*syncBuf, chan error, string, string) {
		var buf syncBuf
		errc := make(chan error, 1)
		go func() {
			errc <- run([]string{
				"-listen", "127.0.0.1:0", "-http", "127.0.0.1:0",
				"-snapshot", snap, "-history-limit", "128",
			}, &buf)
		}()
		tcp := waitPrefix(t, &buf, "ingest: tcp://")
		api := waitPrefix(t, &buf, "api: http://")
		api = strings.TrimSuffix(api, "/api/sources")
		return &buf, errc, tcp, api
	}
	feed := func(tcp string, from, to int) {
		conn, err := net.Dial("tcp", tcp)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		w := bufio.NewWriter(conn)
		for i := from; i < to; i++ {
			fmt.Fprintf(w, "source=m %d %d\nsource=n %d 0\n", 1_000_000-i, i, 2_000_000-i)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	interrupt := func(buf *syncBuf, errc chan error) {
		// The daemon installs its handler before blocking on the signal
		// channel; both addresses printing means setup is done.
		if err := syscall.Kill(syscall.Getpid(), syscall.SIGINT); err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-errc:
			if err != nil {
				t.Fatalf("daemon exit: %v\n%s", err, buf.String())
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("daemon did not drain on SIGINT:\n%s", buf.String())
		}
		if !strings.Contains(buf.String(), "drained:") {
			t.Errorf("no drain report:\n%s", buf.String())
		}
	}

	buf1, errc1, tcp1, api1 := daemon()
	feed(tcp1, 0, 50)
	waitSamples(t, api1, "m", 50)
	waitSamples(t, api1, "n", 50)
	time.Sleep(20 * time.Millisecond) // let the daemon reach its signal wait
	interrupt(buf1, errc1)

	buf2, errc2, tcp2, api2 := daemon()
	if rest := waitPrefix(t, buf2, "restored "); !strings.HasPrefix(rest, "2 sources") {
		t.Errorf("restart restored %q, want 2 sources", rest)
	}
	if n, ok := sourceSamples(t, api2, "m"); !ok || n != 50 {
		t.Errorf("source m resumed at %d samples (ok=%v), want 50", n, ok)
	}
	if n, ok := sourceSamples(t, api2, "n"); !ok || n != 50 {
		t.Errorf("source n resumed at %d samples (ok=%v), want 50", n, ok)
	}
	feed(tcp2, 50, 80)
	waitSamples(t, api2, "m", 80)
	time.Sleep(20 * time.Millisecond)
	interrupt(buf2, errc2)
}

// TestBadFlags keeps flag parsing honest.
func TestBadFlags(t *testing.T) {
	var buf syncBuf
	if err := run([]string{"-definitely-not-a-flag"}, &buf); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run([]string{"-shards", "0", "-listen", "", "-http", "", "-selftest",
		"-selftest-sources", "2", "-selftest-samples", "4"}, &buf); err == nil {
		t.Error("selftest without a TCP listener succeeded")
	}
}
