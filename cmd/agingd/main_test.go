package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// syncBuf is a goroutine-safe stdout sink for a daemon under test.
type syncBuf struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// waitPrefix polls the daemon's stdout for a line with the given prefix
// and returns the rest of that line.
func waitPrefix(t *testing.T, buf *syncBuf, prefix string) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		for _, line := range strings.Split(buf.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, prefix); ok {
				return strings.TrimSpace(rest)
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("daemon never printed %q; output so far:\n%s", prefix, buf.String())
	return ""
}

// TestSelfTestMode runs the daemon's built-in end-to-end verification:
// simulated machines through the real socket, zero loss, monitor parity.
func TestSelfTestMode(t *testing.T) {
	var buf syncBuf
	err := run([]string{
		"-listen", "127.0.0.1:0", "-http", "",
		"-selftest", "-selftest-sources", "48", "-selftest-samples", "32",
		"-selftest-conns", "7", "-seed", "3",
	}, &buf)
	if err != nil {
		t.Fatalf("selftest failed: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "selftest: PASS") {
		t.Errorf("no PASS verdict:\n%s", buf.String())
	}
}

// TestSelfTestModeTraced runs the same verification with the pipeline
// tracer and flight recorder on: parity must hold on the annotated path,
// every source's recorder tail must match the wire trace, and the live
// /api/trace/export endpoint must serve valid Perfetto JSON.
func TestSelfTestModeTraced(t *testing.T) {
	var buf syncBuf
	err := run([]string{
		"-listen", "127.0.0.1:0", "-http", "127.0.0.1:0",
		"-trace-sample", "1/16", "-flight-recorder-depth", "32",
		"-selftest", "-selftest-sources", "24", "-selftest-samples", "48",
		"-selftest-conns", "5", "-seed", "11",
	}, &buf)
	if err != nil {
		t.Fatalf("traced selftest failed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "selftest: PASS") {
		t.Errorf("no PASS verdict:\n%s", out)
	}
	if !strings.Contains(out, "trace export ok") {
		t.Errorf("no trace export verification:\n%s", out)
	}
	if strings.Contains(out, " 0 trace spans") {
		t.Errorf("tracer recorded nothing:\n%s", out)
	}
}

// TestSelfTestWithRejuvenation runs the end-to-end verification with the
// rejuvenation controller live on the alert bus: the controller (dry-run
// actuation) must not perturb ingestion, parity or the PASS verdict.
func TestSelfTestWithRejuvenation(t *testing.T) {
	var buf syncBuf
	err := run([]string{
		"-listen", "127.0.0.1:0", "-http", "",
		"-rejuv-policy", "phase:aging-onset:8",
		"-selftest", "-selftest-sources", "24", "-selftest-samples", "48",
		"-selftest-conns", "5", "-seed", "3",
	}, &buf)
	if err != nil {
		t.Fatalf("selftest with rejuvenation failed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "selftest: PASS") {
		t.Errorf("no PASS verdict:\n%s", out)
	}
	if !strings.Contains(out, "rejuvenation: policy phase:aging-onset:8") {
		t.Errorf("controller banner missing:\n%s", out)
	}
}

// sourceStatus polls the daemon's HTTP API for one source's sample count.
func sourceSamples(t *testing.T, api, id string) (int64, bool) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("http://%s/api/sources/%s/status", api, id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, false
	}
	var st struct {
		Samples int64 `json:"samples"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st.Samples, true
}

func waitSamples(t *testing.T, api, id string, want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if n, ok := sourceSamples(t, api, id); ok && n >= want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("source %s never reached %d samples", id, want)
}

// TestInterruptRestartResumes is the daemon-level crash-recovery test:
// feed a daemon, kill it with SIGINT (graceful drain + final snapshot),
// restart it on the same snapshot file, and verify every source resumes
// exactly where its monitor stopped.
func TestInterruptRestartResumes(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "agingd.snap")

	daemon := func() (*syncBuf, chan error, string, string) {
		var buf syncBuf
		errc := make(chan error, 1)
		go func() {
			errc <- run([]string{
				"-listen", "127.0.0.1:0", "-http", "127.0.0.1:0",
				"-snapshot", snap, "-history-limit", "128",
			}, &buf)
		}()
		tcp := waitPrefix(t, &buf, "ingest: tcp://")
		api := waitPrefix(t, &buf, "api: http://")
		api = strings.TrimSuffix(api, "/api/sources")
		return &buf, errc, tcp, api
	}
	feed := func(tcp string, from, to int) {
		conn, err := net.Dial("tcp", tcp)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		w := bufio.NewWriter(conn)
		for i := from; i < to; i++ {
			fmt.Fprintf(w, "source=m %d %d\nsource=n %d 0\n", 1_000_000-i, i, 2_000_000-i)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	interrupt := func(buf *syncBuf, errc chan error) {
		// The daemon installs its handler before blocking on the signal
		// channel; both addresses printing means setup is done.
		if err := syscall.Kill(syscall.Getpid(), syscall.SIGINT); err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-errc:
			if err != nil {
				t.Fatalf("daemon exit: %v\n%s", err, buf.String())
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("daemon did not drain on SIGINT:\n%s", buf.String())
		}
		if !strings.Contains(buf.String(), "drained:") {
			t.Errorf("no drain report:\n%s", buf.String())
		}
	}

	buf1, errc1, tcp1, api1 := daemon()
	feed(tcp1, 0, 50)
	waitSamples(t, api1, "m", 50)
	waitSamples(t, api1, "n", 50)
	time.Sleep(20 * time.Millisecond) // let the daemon reach its signal wait
	interrupt(buf1, errc1)

	buf2, errc2, tcp2, api2 := daemon()
	if rest := waitPrefix(t, buf2, "restored "); !strings.HasPrefix(rest, "2 sources") {
		t.Errorf("restart restored %q, want 2 sources", rest)
	}
	if n, ok := sourceSamples(t, api2, "m"); !ok || n != 50 {
		t.Errorf("source m resumed at %d samples (ok=%v), want 50", n, ok)
	}
	if n, ok := sourceSamples(t, api2, "n"); !ok || n != 50 {
		t.Errorf("source n resumed at %d samples (ok=%v), want 50", n, ok)
	}
	feed(tcp2, 50, 80)
	waitSamples(t, api2, "m", 80)
	time.Sleep(20 * time.Millisecond)
	interrupt(buf2, errc2)
}

// TestClusterSelfTestSmoke runs the daemon's in-process cluster
// verification small: 3 nodes, kill/restart/rebalance churn, zero loss
// and oracle parity.
func TestClusterSelfTestSmoke(t *testing.T) {
	var buf syncBuf
	err := run([]string{
		"-selftest-cluster",
		"-selftest-cluster-sources", "300",
		"-selftest-cluster-samples", "9",
		"-seed", "5",
	}, &buf)
	if err != nil {
		t.Fatalf("cluster selftest failed: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "cluster selftest: PASS") {
		t.Errorf("no PASS verdict:\n%s", buf.String())
	}
}

// freeAddr reserves a loopback address a daemon can be told to advertise
// before its listener exists.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// TestClusterDaemonsRouteOverHTTP stands up two real daemons joined via
// -cluster-addr/-cluster-peers and verifies the wired path end to end:
// lines fed to one daemon's TCP socket land on each source's ring owner
// (forwarded over the /cluster/* HTTP protocol), every source is held by
// exactly one node, and /api/cluster reports a healthy membership.
func TestClusterDaemonsRouteOverHTTP(t *testing.T) {
	addrA, addrB := freeAddr(t), freeAddr(t)

	daemon := func(self, peer string) (*syncBuf, chan error, string) {
		var buf syncBuf
		errc := make(chan error, 1)
		go func() {
			errc <- run([]string{
				"-listen", "127.0.0.1:0", "-http", self,
				"-cluster-addr", self, "-cluster-peers", peer,
			}, &buf)
		}()
		tcp := waitPrefix(t, &buf, "ingest: tcp://")
		waitPrefix(t, &buf, "cluster: node")
		return &buf, errc, tcp
	}
	bufA, errcA, tcpA := daemon(addrA, addrB)
	bufB, errcB, _ := daemon(addrB, addrA)

	// Feed every line through daemon A: sources owned by B must be
	// forwarded, not double-counted.
	const sources, perSource = 16, 5
	conn, err := net.Dial("tcp", tcpA)
	if err != nil {
		t.Fatal(err)
	}
	w := bufio.NewWriter(conn)
	for k := 0; k < perSource; k++ {
		for i := 0; i < sources; i++ {
			fmt.Fprintf(w, "source=cl-%02d %d %d\n", i, 5_000_000-i*1000-k, k)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	onB := 0
	for i := 0; i < sources; i++ {
		id := fmt.Sprintf("cl-%02d", i)
		deadline := time.Now().Add(15 * time.Second)
		for {
			na, oka := sourceSamples(t, addrA, id)
			nb, okb := sourceSamples(t, addrB, id)
			if oka && na == perSource && !okb {
				break
			}
			if okb && nb == perSource && !oka {
				onB++
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("source %s never settled on one owner: A(%d,%v) B(%d,%v)\nA:\n%s\nB:\n%s",
					id, na, oka, nb, okb, bufA.String(), bufB.String())
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	if onB == 0 || onB == sources {
		dump := func(addr string) string {
			resp, err := http.Get("http://" + addr + "/api/cluster")
			if err != nil {
				return err.Error()
			}
			defer resp.Body.Close()
			b := new(strings.Builder)
			_, _ = fmt.Fprintf(b, "%d: ", resp.StatusCode)
			_, _ = io.Copy(b, resp.Body)
			return b.String()
		}
		t.Errorf("ownership never split across the ring: %d/%d on B\nA status: %s\nB status: %s",
			onB, sources, dump(addrA), dump(addrB))
	}

	// The status document must show both members and count the forwards.
	resp, err := http.Get("http://" + addrA + "/api/cluster")
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		Members  []struct{ Name string } `json:"members"`
		Forwards uint64                  `json:"forwards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(st.Members) != 2 {
		t.Errorf("/api/cluster reports %d members, want 2", len(st.Members))
	}
	if st.Forwards == 0 {
		t.Error("/api/cluster reports zero forwards after cross-owner ingest")
	}

	time.Sleep(20 * time.Millisecond) // let both daemons reach their signal wait
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	for _, d := range []struct {
		buf  *syncBuf
		errc chan error
	}{{bufA, errcA}, {bufB, errcB}} {
		select {
		case err := <-d.errc:
			if err != nil {
				t.Fatalf("daemon exit: %v\n%s", err, d.buf.String())
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("daemon did not drain on SIGINT:\n%s", d.buf.String())
		}
	}
}

// TestBadFlags keeps flag parsing honest.
func TestBadFlags(t *testing.T) {
	var buf syncBuf
	if err := run([]string{"-definitely-not-a-flag"}, &buf); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run([]string{"-shards", "0", "-listen", "", "-http", "", "-selftest",
		"-selftest-sources", "2", "-selftest-samples", "4"}, &buf); err == nil {
		t.Error("selftest without a TCP listener succeeded")
	}
}
