// Command agingd is the fleet aging daemon: it ingests memory-counter
// samples from many machines concurrently and runs one online
// multifractal aging monitor per source, raising jump/phase-change/stall
// alerts as machines age.
//
// Producers speak the line protocol over TCP (-listen) or HTTP POST
// /ingest (-http). Each line is "free,swap", "free swap" or
// "timestamp free swap", optionally prefixed "source=ID " to multiplex
// many machines over one connection; lines without a source are keyed by
// the peer host. A machine can self-report with nothing but a shell
// loop:
//
//	while true; do
//	  awk '/MemAvailable/{f=$2*1024} /SwapTotal/{t=$2*1024} /SwapFree/{s=$2*1024}
//	       END{printf "%d %d\n", f, t-s}' /proc/meminfo
//	  sleep 1
//	done | nc agingd-host 9178
//
// Each source runs the detector suite named by -detectors (default
// "holder"): the paper's Hölder-volatility monitor, optionally joined by
// "entropy" (a multiscale sample-entropy collapse detector) and
// "adaptive" (a Hölder detector that recalibrates after confirmed
// workload shifts instead of alarming on them). Every detector keeps its
// own verdicts; alerts and the per-source status report them under a
// detector label.
//
// The HTTP listener also serves the fleet API (GET /api/sources,
// /api/sources/{id}/status, /api/alerts, /api/shards) and telemetry
// (/metrics, /healthz, opt-in /debug/pprof). Alerts fan out to the API's
// recent ring, an optional JSONL sink (-alerts) and an optional webhook
// (-webhook, delivered with bounded retries).
//
// With -rejuv-policy the daemon closes the loop: a rejuvenation
// controller subscribed to the alert bus runs one policy per source
// ("periodic:<samples>" or "phase:<phase>[:<min-uptime>]") under
// anti-affinity staggering and a rolling cost budget, logging each
// would-be restart as a dry-run "rejuvenate" event and serving its
// decision state at GET /api/rejuv. Controller state persists beside
// -snapshot and survives restarts.
//
// Observability of the pipeline itself is opt-in: -trace-sample 1/N times
// one ingested unit in N through every stage (parse, queue wait, the
// detector's stream stages, alert fan-out), served as Chrome/Perfetto
// JSON at GET /api/trace/export and as agingmf_pipeline_stage_seconds
// histograms on /metrics. -flight-recorder-depth keeps the last N
// annotated samples per source (value, score, phase, verdict, stage
// timings) at GET /api/trace/{source} — the first thing to pull up when
// one machine's monitor behaves strangely. When a shard stops draining
// its queue for longer than -stall-timeout, /healthz flips to 503.
//
// State survives restarts: -snapshot names a file the daemon writes
// every -snapshot-every and on shutdown, and reads back at start — a
// restarted daemon resumes every source's monitor exactly where it
// stopped. SIGINT/SIGTERM drain gracefully: intake stops, queued samples
// reach their monitors, and the final snapshot is written before exit.
// A second signal force-exits a stuck drain.
//
// Several daemons can share one fleet: -cluster-addr names this node
// (the host:port peers reach its HTTP listener at) and -cluster-peers
// lists the other members. Sources are routed by consistent hashing over
// the live membership — a line arriving at the wrong node is forwarded
// to its owner — and ownership moves between nodes by live handoff that
// carries the source's exact monitor state, so verdicts stay
// byte-identical across a migration. Peer health rides heartbeats; a
// dead node's sources are adopted by the survivors from its last
// snapshot, and a graceful shutdown (SIGINT/SIGTERM) first hands every
// held source to the remaining peers. GET /api/cluster serves the
// membership and routing status.
//
// With -selftest the daemon exercises itself end-to-end: it drives
// -selftest-sources simulated machines (internal/memsim) through its own
// TCP socket and verifies that no sample was lost and that every
// source's monitor state is byte-for-byte identical to a single-process
// monitor fed the same trace, then exits non-zero on any discrepancy.
// -selftest-binary does the same over the binary columnar wire at full
// rate: deterministic quantized leak traces are streamed as pre-encoded
// frames, and the run passes only with zero loss, zero frame rejects and
// byte-for-byte parity against per-sample reference monitors, reporting
// the sustained samples/second.
// -selftest-cluster does the same for the clustered path: an in-process
// cluster of -selftest-cluster-nodes nodes streams
// -selftest-cluster-sources sources through kill/restart/rebalance churn
// and verifies single ownership, zero loss and oracle parity.
//
// Usage:
//
//	agingd [-listen HOST:PORT] [-http HOST:PORT] [-shards N] [-queue N]
//	       [-snapshot FILE] [-snapshot-every DURATION]
//	       [-stall-timeout DURATION] [-max-sources N] [-max-bad-lines N]
//	       [-history-limit N] [-detectors LIST] [-alerts FILE] [-events FILE]
//	       [-webhook URL] [-trace-sample 1/N] [-flight-recorder-depth N]
//	       [-pprof] [-rejuv-policy SPEC]
//	       [-cluster-addr HOST:PORT] [-cluster-peers HOST:PORT,...]
//	       [-selftest] [-selftest-sources N] [-selftest-samples N]
//	       [-selftest-conns N] [-selftest-batch N] [-seed N]
//	       [-selftest-binary] [-selftest-binary-sources N]
//	       [-selftest-binary-samples N] [-selftest-binary-frame N]
//	       [-selftest-cluster] [-selftest-cluster-nodes N]
//	       [-selftest-cluster-sources N] [-selftest-cluster-samples N]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"agingmf"
	"agingmf/internal/runtime"
)

// options is the parsed flag surface of one agingd run.
type options struct {
	listen        string
	httpAddr      string
	shards        int
	queue         int
	snapshot      string
	snapshotEvery time.Duration
	stallTimeout  time.Duration
	maxSources    int
	maxBadLines   int
	detectors     string
	idleTimeout   time.Duration
	historyLimit  int
	alerts        string
	events        string
	webhook       string
	traceSample   string
	flightDepth   int
	pprof         bool
	rejuvPolicy   string
	clusterAddr   string
	clusterPeers  string
	selftest      bool
	stSources     int
	stSamples     int
	stConns       int
	stBatch       int
	sbSelftest    bool
	sbSources     int
	sbSamples     int
	sbFrame       int
	scSelftest    bool
	scNodes       int
	scSources     int
	scSamples     int
	seed          int64
}

// newFlagSet declares the agingd flag surface — names and defaults are
// part of the daemon's compatibility contract (pinned by the
// flag-surface test).
func newFlagSet(opt *options) *flag.FlagSet {
	fs := flag.NewFlagSet("agingd", flag.ContinueOnError)
	fs.StringVar(&opt.listen, "listen", ":9178", "TCP line-protocol listener address (empty disables)")
	fs.StringVar(&opt.httpAddr, "http", ":9179", "HTTP listener: POST /ingest, the /api endpoints, /metrics, /healthz (empty disables)")
	fs.IntVar(&opt.shards, "shards", 8, "monitor shards (single-writer goroutines)")
	fs.IntVar(&opt.queue, "queue", 1024, "per-shard sample queue bound")
	fs.StringVar(&opt.snapshot, "snapshot", "", "state snapshot file: read at start, written every -snapshot-every and on shutdown (empty disables)")
	fs.DurationVar(&opt.snapshotEvery, "snapshot-every", time.Minute, "periodic snapshot cadence")
	fs.DurationVar(&opt.stallTimeout, "stall-timeout", 0, "raise a stall alert when a source is silent this long (0 disables)")
	fs.IntVar(&opt.maxSources, "max-sources", 65536, "cap on tracked sources (negative = unlimited)")
	fs.IntVar(&opt.maxBadLines, "max-bad-lines", 100, "per-connection malformed-line budget before the connection is closed (negative = unlimited)")
	fs.DurationVar(&opt.idleTimeout, "idle-timeout", 0, "close a TCP connection idle this long (0 disables)")
	fs.IntVar(&opt.historyLimit, "history-limit", 4096, "per-source monitor history bound (0 = unlimited; the registry holds one monitor per source)")
	fs.StringVar(&opt.detectors, "detectors", "holder", `comma-separated detector suite run per source: "holder" (Hölder volatility), "entropy" (multiscale sample entropy), "adaptive" (workload-shift-aware holder)`)
	fs.StringVar(&opt.alerts, "alerts", "", `append alert JSONL to this file ("-" = stdout, empty disables)`)
	fs.StringVar(&opt.events, "events", "", `append lifecycle JSONL events to this file ("-" = stdout, empty disables)`)
	fs.StringVar(&opt.webhook, "webhook", "", "POST each alert to this URL with bounded retries (empty disables)")
	fs.StringVar(&opt.traceSample, "trace-sample", "0", `pipeline trace sampling: "1/N" or "N" traces one ingested unit in N, "0" disables; spans feed /api/trace/export and the agingmf_pipeline_stage_seconds histograms`)
	fs.IntVar(&opt.flightDepth, "flight-recorder-depth", 64, "per-source flight recorder: retain the last N annotated samples, served by /api/trace/{source} (0 disables)")
	fs.BoolVar(&opt.pprof, "pprof", false, "serve net/http/pprof under /debug/pprof/ on the HTTP listener")
	fs.StringVar(&opt.rejuvPolicy, "rejuv-policy", "", `closed-loop rejuvenation policy driven by the alert bus: "periodic:<samples>" or "phase:<phase>[:<min-uptime>]" (empty disables); decisions are logged dry-run and served at GET /api/rejuv`)
	fs.StringVar(&opt.clusterAddr, "cluster-addr", "", "this node's advertised host:port for cluster peers — enables clustered routing over the HTTP listener (empty disables)")
	fs.StringVar(&opt.clusterPeers, "cluster-peers", "", "comma-separated peer host:port list for the cluster membership")
	fs.BoolVar(&opt.selftest, "selftest", false, "drive simulated machines through the real socket, verify zero loss and monitor parity, then exit")
	fs.IntVar(&opt.stSources, "selftest-sources", 64, "self-test: simulated machines")
	fs.IntVar(&opt.stSamples, "selftest-samples", 256, "self-test: samples per machine")
	fs.IntVar(&opt.stConns, "selftest-conns", 0, "self-test: TCP connections to multiplex over (0 = min(sources, 64))")
	fs.IntVar(&opt.stBatch, "selftest-batch", 8, "self-test: samples per batch; wire line (1 = plain per-sample lines)")
	fs.BoolVar(&opt.sbSelftest, "selftest-binary", false, "stream deterministic leak traces as binary columnar frames through the real socket, verify zero loss, zero rejects and row-path parity, report throughput, then exit")
	fs.IntVar(&opt.sbSources, "selftest-binary-sources", 4, "binary self-test: simulated machines")
	fs.IntVar(&opt.sbSamples, "selftest-binary-samples", 1<<21, "binary self-test: samples per machine")
	fs.IntVar(&opt.sbFrame, "selftest-binary-frame", 4096, "binary self-test: samples per wire frame")
	fs.BoolVar(&opt.scSelftest, "selftest-cluster", false, "drive an in-process multi-node cluster through kill/restart/rebalance churn, verify zero loss and oracle parity, then exit")
	fs.IntVar(&opt.scNodes, "selftest-cluster-nodes", 3, "cluster self-test: in-process nodes (minimum 3)")
	fs.IntVar(&opt.scSources, "selftest-cluster-sources", 100000, "cluster self-test: simulated fleet size")
	fs.IntVar(&opt.scSamples, "selftest-cluster-samples", 24, "cluster self-test: samples per source")
	fs.Int64Var(&opt.seed, "seed", 1, "self-test: deterministic trace seed")
	return fs
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "agingd:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	var opt options
	if err := newFlagSet(&opt).Parse(args); err != nil {
		return err
	}

	// The cluster self-test is fully in-process (MemTransport, shared
	// MemStore): no listeners, no event sinks — run it and exit.
	if opt.scSelftest {
		return runClusterSelfTest(stdout, opt)
	}

	events, closeEvents, err := runtime.OpenEvents(opt.events)
	if err != nil {
		return err
	}
	defer closeEvents()
	alertEvents, closeAlerts, err := runtime.OpenEvents(opt.alerts)
	if err != nil {
		return err
	}
	defer closeAlerts()

	sampleEvery, err := agingmf.ParseTraceSampleRate(opt.traceSample)
	if err != nil {
		return fmt.Errorf("-trace-sample: %w", err)
	}

	detectors, err := agingmf.ParseDetectorKinds(opt.detectors)
	if err != nil {
		return fmt.Errorf("-detectors: %w", err)
	}

	// The binary self-test measures peak columnar throughput; per-sample
	// observability (tracing, flight recorders) would force every frame
	// onto the row-bridge path and measure that instead.
	if opt.sbSelftest {
		sampleEvery = 0
		opt.flightDepth = 0
	}

	monCfg := agingmf.DefaultMonitorConfig()
	monCfg.HistoryLimit = opt.historyLimit
	met := agingmf.NewRegistry()
	srv, err := agingmf.NewIngestServer(agingmf.IngestServerConfig{
		Registry: agingmf.IngestConfig{
			Shards:              opt.shards,
			QueueSize:           opt.queue,
			Monitor:             monCfg,
			Detectors:           detectors,
			MaxSources:          opt.maxSources,
			StallTimeout:        opt.stallTimeout,
			Obs:                 met,
			Events:              events,
			TraceSampleEvery:    sampleEvery,
			FlightRecorderDepth: opt.flightDepth,
		},
		TCPAddr:       opt.listen,
		HTTPAddr:      opt.httpAddr,
		MaxBadLines:   opt.maxBadLines,
		IdleTimeout:   opt.idleTimeout,
		SnapshotPath:  opt.snapshot,
		SnapshotEvery: opt.snapshotEvery,
		EnablePprof:   opt.pprof,
	})
	if err != nil {
		return err
	}

	// Clustering: route every ingested line through the membership ring
	// (lines whose ring owner is a peer are forwarded), and mount the
	// node-to-node protocol plus /api/cluster on the HTTP listener.
	var node *agingmf.ClusterNode
	if opt.clusterAddr != "" {
		node, err = agingmf.NewClusterNode(agingmf.ClusterConfig{
			Self:           opt.clusterAddr,
			Peers:          splitPeers(opt.clusterPeers),
			Transport:      &agingmf.ClusterHTTPTransport{},
			Registry:       srv.Registry(),
			HeartbeatEvery: time.Second,
			Obs:            met,
			Events:         events,
		})
		if err != nil {
			return fmt.Errorf("cluster: %w", err)
		}
		srv.SetLineRouter(node)
		h := node.Handler()
		srv.Mount("/cluster/", h)
		srv.Mount("/api/cluster", h)
	}

	// Closed-loop rejuvenation: a controller subscribed to the alert bus
	// runs one policy per source. agingd cannot restart remote machines,
	// so decisions actuate through the dry-run actuator — each would-be
	// restart is a logged "rejuvenate" event plus a bus alert that an
	// operator (or an automation tailing -events) executes. When
	// clustered, sources sharing a ring owner form one anti-affinity
	// group and never rejuvenate inside the same stagger window.
	var rej *agingmf.Rejuvenator
	if opt.rejuvPolicy != "" {
		factory, err := agingmf.ParseRejuvenationPolicy(opt.rejuvPolicy)
		if err != nil {
			return fmt.Errorf("-rejuv-policy: %w", err)
		}
		if factory != nil {
			var group func(string) string
			if node != nil {
				group = func(id string) string { return node.Ring().Owner(id) }
			}
			rej, err = agingmf.NewRejuvenator(agingmf.RejuvenatorConfig{
				Bus:      srv.Registry().Alerts(),
				Actuator: &agingmf.DryRunActuator{Events: events},
				Policy:   factory,
				Group:    group,
				Events:   events,
				Obs:      met,
			})
			if err != nil {
				return fmt.Errorf("-rejuv-policy: %w", err)
			}
			if opt.snapshot != "" {
				if blob, rerr := os.ReadFile(rejuvStatePath(opt.snapshot)); rerr == nil {
					if rerr = rej.RestoreState(blob); rerr != nil {
						events.Warn("rejuv_restore_failed", agingmf.EventFields{"error": rerr.Error()})
					}
				}
			}
			srv.Mount("/api/rejuv", rejuvHandler(rej))
		}
	}

	if err := srv.Start(); err != nil {
		return err
	}
	if rej != nil {
		if err := rej.Start(); err != nil {
			return err
		}
		defer rej.Stop()
		fmt.Fprintf(stdout, "rejuvenation: policy %s (dry-run), status at /api/rejuv\n", opt.rejuvPolicy)
	}
	if node != nil {
		node.Start()
		fmt.Fprintf(stdout, "cluster: node %s, peers [%s]\n", opt.clusterAddr, opt.clusterPeers)
	}
	if n := srv.Registry().NumSources(); n > 0 {
		fmt.Fprintf(stdout, "restored %d sources from %s\n", n, opt.snapshot)
	}
	if a := srv.TCPAddr(); a != nil {
		fmt.Fprintf(stdout, "ingest: tcp://%s\n", a)
	}
	if a := srv.HTTPAddr(); a != nil {
		fmt.Fprintf(stdout, "api: http://%s/api/sources\n", a)
	}

	// Alert sinks drain their own bus subscriptions; a slow or dead sink
	// drops alerts (counted), never backpressures ingestion.
	sinkCtx, cancelSinks := context.WithCancel(context.Background())
	defer cancelSinks()
	if alertEvents != nil {
		go agingmf.IngestJSONLSink(srv.Registry().Alerts().Subscribe("jsonl", 256), alertEvents)
	}
	if opt.webhook != "" {
		go agingmf.IngestWebhookSink(sinkCtx, srv.Registry().Alerts().Subscribe("webhook", 256),
			agingmf.IngestWebhookConfig{URL: opt.webhook}, events)
	}

	if opt.sbSelftest {
		if node != nil {
			defer node.Stop()
		}
		return runBinarySelfTest(sinkCtx, srv, stdout, opt)
	}
	if opt.selftest {
		if node != nil {
			defer node.Stop()
		}
		return runSelfTest(sinkCtx, srv, stdout, opt)
	}

	// Serve until a termination signal, then drain: stop intake, feed
	// every queued sample to its monitor, write the final snapshot. A
	// second signal force-exits a stuck drain.
	ctx, stop := runtime.NotifyContext(context.Background(), runtime.SignalOptions{})
	defer stop()
	<-ctx.Done()
	sig, _ := runtime.Signal(ctx)
	fmt.Fprintf(stdout, "received %v: draining and saving state\n", sig)
	events.Warn("signal", agingmf.EventFields{"signal": sig.String()})

	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if node != nil {
		// Leave drains every held source to the surviving peers (live
		// handoff) before the server stops accepting; a peerless or
		// partitioned node just stops, keeping its snapshot.
		if err := node.Leave(shutCtx); err != nil {
			fmt.Fprintf(stdout, "cluster leave: %v\n", err)
			events.Warn("cluster_leave_failed", agingmf.EventFields{"error": err.Error()})
		}
	}
	if err := srv.Shutdown(shutCtx); err != nil {
		return err
	}
	if rej != nil {
		rej.Stop()
		if opt.snapshot != "" {
			if blob, serr := rej.SaveState(); serr == nil {
				if serr = runtime.WriteFileAtomic(rejuvStatePath(opt.snapshot), blob, 0o644); serr != nil {
					events.Warn("rejuv_snapshot_failed", agingmf.EventFields{"error": serr.Error()})
				}
			}
		}
	}
	reg := srv.Registry()
	fmt.Fprintf(stdout, "drained: %d sources, %d samples accepted, %d dropped, %d alerts\n",
		reg.NumSources(), reg.Accepted(), reg.Dropped(), reg.Alerts().Total())
	return nil
}

// rejuvStatePath names the rejuvenation controller's state blob. It
// lives beside the ingest snapshot but in its own file: the ingest gob
// envelope is a pinned compatibility surface and must not grow fields.
func rejuvStatePath(snapshot string) string { return snapshot + ".rejuv" }

// rejuvHandler serves the controller status as GET /api/rejuv.
func rejuvHandler(rej *agingmf.Rejuvenator) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rej.Status())
	})
}

// splitPeers parses the comma-separated -cluster-peers list.
func splitPeers(s string) []string {
	var peers []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, p)
		}
	}
	return peers
}

// runClusterSelfTest drives an in-process multi-node cluster through the
// kill/restart/rebalance churn campaign: routed streaming with full
// membership, a crash-kill forcing dead-node adoption from the shared
// snapshot store, and a rejoin forcing live migration under load. It
// returns an error on any ownership violation, sample loss or
// detector-state parity mismatch against the single-process oracle.
func runClusterSelfTest(stdout io.Writer, opt options) error {
	detectors, err := agingmf.ParseDetectorKinds(opt.detectors)
	if err != nil {
		return fmt.Errorf("-detectors: %w", err)
	}
	res, err := agingmf.RunClusterSelfTest(agingmf.ClusterSelfTestConfig{
		Nodes:     opt.scNodes,
		Sources:   opt.scSources,
		Samples:   opt.scSamples,
		Seed:      opt.seed,
		Detectors: detectors,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(stdout, format+"\n", args...)
		},
	})
	if err != nil {
		return fmt.Errorf("cluster selftest failed: %w", err)
	}
	fmt.Fprintf(stdout, "cluster selftest: %d lines, %d forwards, %d migrations, %d adoptions, loss %d, parity mismatches %d in %v\n",
		res.LinesSent, res.Forwards, res.Migrations, res.AdoptionsRestore,
		res.SampleLoss, res.ParityMismatches, res.Elapsed.Round(time.Millisecond))
	fmt.Fprintln(stdout, "cluster selftest: PASS")
	return nil
}

// runSelfTest exercises the daemon end-to-end and shuts it down.
func runSelfTest(ctx context.Context, srv *agingmf.IngestServer, stdout io.Writer, opt options) error {
	fmt.Fprintf(stdout, "selftest: %d sources x %d samples, batch %d, seed %d\n",
		opt.stSources, opt.stSamples, opt.stBatch, opt.seed)
	rep, err := agingmf.RunIngestSelfTest(ctx, srv, agingmf.IngestSelfTestConfig{
		Sources:   opt.stSources,
		Samples:   opt.stSamples,
		Conns:     opt.stConns,
		BatchSize: opt.stBatch,
		Seed:      opt.seed,
	})
	// While the server is still up, verify the trace export over the real
	// HTTP listener: when tracing is on, /api/trace/export must serve
	// valid Chrome/Perfetto JSON.
	var exportErr error
	if err == nil && rep.TraceSpans > 0 {
		exportErr = checkTraceExport(srv, stdout)
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	serr := srv.Shutdown(shutCtx)
	if err != nil {
		return err
	}
	if exportErr != nil {
		return exportErr
	}
	fmt.Fprintf(stdout, "selftest: sent %d, accepted %d, dropped %d, %d jumps, %d alerts, %d parity mismatches, %d recorder failures, %d trace spans in %v\n",
		rep.SamplesSent, rep.Accepted, rep.Dropped, rep.Jumps, rep.Alerts,
		len(rep.ParityMismatches), len(rep.RecorderFailures), rep.TraceSpans,
		rep.Elapsed.Round(time.Millisecond))
	if !rep.Ok() {
		return fmt.Errorf("selftest failed: accepted %d/%d, dropped %d, parity mismatches %v, recorder failures %v",
			rep.Accepted, rep.SamplesSent, rep.Dropped, rep.ParityMismatches, rep.RecorderFailures)
	}
	fmt.Fprintln(stdout, "selftest: PASS")
	return serr
}

// runBinarySelfTest streams deterministic leak traces through the real
// socket as binary columnar frames, verifies zero loss / zero rejects /
// byte-for-byte row-path parity, reports ingest throughput, and shuts
// the daemon down.
func runBinarySelfTest(ctx context.Context, srv *agingmf.IngestServer, stdout io.Writer, opt options) error {
	fmt.Fprintf(stdout, "selftest-binary: %d sources x %d samples, %d samples/frame, seed %d (tracing and flight recorder off)\n",
		opt.sbSources, opt.sbSamples, opt.sbFrame, opt.seed)
	rep, err := agingmf.RunBinaryIngestSelfTest(ctx, srv, agingmf.BinaryIngestSelfTestConfig{
		Sources:      opt.sbSources,
		Samples:      opt.sbSamples,
		FrameSamples: opt.sbFrame,
		Seed:         opt.seed,
	})
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	serr := srv.Shutdown(shutCtx)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "selftest-binary: sent %d samples in %d frames, accepted %d, dropped %d, bad frames %d, %d alerts, %d parity mismatches; %.2fM samples/s over %v wire time (%v total)\n",
		rep.SamplesSent, rep.FramesSent, rep.Accepted, rep.Dropped, rep.BadFrames,
		rep.Alerts, len(rep.ParityMismatches), rep.SamplesPerSec/1e6,
		rep.LoadElapsed.Round(time.Millisecond), rep.Elapsed.Round(time.Millisecond))
	if !rep.Ok() {
		return fmt.Errorf("selftest-binary failed: accepted %d/%d, dropped %d, bad frames %d, parity mismatches %v",
			rep.Accepted, rep.SamplesSent, rep.Dropped, rep.BadFrames, rep.ParityMismatches)
	}
	fmt.Fprintln(stdout, "selftest-binary: PASS")
	return serr
}

// checkTraceExport fetches /api/trace/export from the live HTTP listener
// and verifies it is valid JSON with at least one event.
func checkTraceExport(srv *agingmf.IngestServer, stdout io.Writer) error {
	addr := srv.HTTPAddr()
	if addr == nil {
		return nil // no API listener configured; nothing to verify
	}
	resp, err := http.Get("http://" + addr.String() + "/api/trace/export")
	if err != nil {
		return fmt.Errorf("selftest: trace export: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("selftest: trace export read: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("selftest: trace export status %d", resp.StatusCode)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		return fmt.Errorf("selftest: trace export is not valid JSON: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("selftest: trace export has no events")
	}
	fmt.Fprintf(stdout, "selftest: trace export ok (%d events, %d bytes)\n",
		len(doc.TraceEvents), len(body))
	return nil
}
