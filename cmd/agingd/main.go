// Command agingd is the fleet aging daemon: it ingests memory-counter
// samples from many machines concurrently and runs one online
// multifractal aging monitor per source, raising jump/phase-change/stall
// alerts as machines age.
//
// Producers speak the line protocol over TCP (-listen) or HTTP POST
// /ingest (-http). Each line is "free,swap", "free swap" or
// "timestamp free swap", optionally prefixed "source=ID " to multiplex
// many machines over one connection; lines without a source are keyed by
// the peer host. A machine can self-report with nothing but a shell
// loop:
//
//	while true; do
//	  awk '/MemAvailable/{f=$2*1024} /SwapTotal/{t=$2*1024} /SwapFree/{s=$2*1024}
//	       END{printf "%d %d\n", f, t-s}' /proc/meminfo
//	  sleep 1
//	done | nc agingd-host 9178
//
// The HTTP listener also serves the fleet API (GET /api/sources,
// /api/sources/{id}/status, /api/alerts, /api/shards) and telemetry
// (/metrics, /healthz, opt-in /debug/pprof). Alerts fan out to the API's
// recent ring, an optional JSONL sink (-alerts) and an optional webhook
// (-webhook, delivered with bounded retries).
//
// State survives restarts: -snapshot names a file the daemon writes
// every -snapshot-every and on shutdown, and reads back at start — a
// restarted daemon resumes every source's monitor exactly where it
// stopped. SIGINT/SIGTERM drain gracefully: intake stops, queued samples
// reach their monitors, and the final snapshot is written before exit.
//
// With -selftest the daemon exercises itself end-to-end: it drives
// -selftest-sources simulated machines (internal/memsim) through its own
// TCP socket and verifies that no sample was lost and that every
// source's monitor state is byte-for-byte identical to a single-process
// monitor fed the same trace, then exits non-zero on any discrepancy.
//
// Usage:
//
//	agingd [-listen HOST:PORT] [-http HOST:PORT] [-shards N] [-queue N]
//	       [-snapshot FILE] [-snapshot-every DURATION]
//	       [-stall-timeout DURATION] [-max-sources N] [-max-bad-lines N]
//	       [-history-limit N] [-alerts FILE] [-events FILE]
//	       [-webhook URL] [-pprof]
//	       [-selftest] [-selftest-sources N] [-selftest-samples N]
//	       [-selftest-conns N] [-selftest-batch N] [-seed N]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"agingmf"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "agingd:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("agingd", flag.ContinueOnError)
	var (
		listen        = fs.String("listen", ":9178", "TCP line-protocol listener address (empty disables)")
		httpAddr      = fs.String("http", ":9179", "HTTP listener: POST /ingest, the /api endpoints, /metrics, /healthz (empty disables)")
		shards        = fs.Int("shards", 8, "monitor shards (single-writer goroutines)")
		queue         = fs.Int("queue", 1024, "per-shard sample queue bound")
		snapshot      = fs.String("snapshot", "", "state snapshot file: read at start, written every -snapshot-every and on shutdown (empty disables)")
		snapshotEvery = fs.Duration("snapshot-every", time.Minute, "periodic snapshot cadence")
		stallTimeout  = fs.Duration("stall-timeout", 0, "raise a stall alert when a source is silent this long (0 disables)")
		maxSources    = fs.Int("max-sources", 65536, "cap on tracked sources (negative = unlimited)")
		maxBadLines   = fs.Int("max-bad-lines", 100, "per-connection malformed-line budget before the connection is closed (negative = unlimited)")
		idleTimeout   = fs.Duration("idle-timeout", 0, "close a TCP connection idle this long (0 disables)")
		historyLimit  = fs.Int("history-limit", 4096, "per-source monitor history bound (0 = unlimited; the registry holds one monitor per source)")
		alertsPath    = fs.String("alerts", "", `append alert JSONL to this file ("-" = stdout, empty disables)`)
		eventsPath    = fs.String("events", "", `append lifecycle JSONL events to this file ("-" = stdout, empty disables)`)
		webhook       = fs.String("webhook", "", "POST each alert to this URL with bounded retries (empty disables)")
		pprofFlag     = fs.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ on the HTTP listener")
		selftest      = fs.Bool("selftest", false, "drive simulated machines through the real socket, verify zero loss and monitor parity, then exit")
		stSources     = fs.Int("selftest-sources", 64, "self-test: simulated machines")
		stSamples     = fs.Int("selftest-samples", 256, "self-test: samples per machine")
		stConns       = fs.Int("selftest-conns", 0, "self-test: TCP connections to multiplex over (0 = min(sources, 64))")
		stBatch       = fs.Int("selftest-batch", 8, "self-test: samples per batch; wire line (1 = plain per-sample lines)")
		seed          = fs.Int64("seed", 1, "self-test: deterministic trace seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	events, closeEvents, err := openEvents(*eventsPath)
	if err != nil {
		return err
	}
	defer closeEvents()
	alertEvents, closeAlerts, err := openEvents(*alertsPath)
	if err != nil {
		return err
	}
	defer closeAlerts()

	monCfg := agingmf.DefaultMonitorConfig()
	monCfg.HistoryLimit = *historyLimit
	srv, err := agingmf.NewIngestServer(agingmf.IngestServerConfig{
		Registry: agingmf.IngestConfig{
			Shards:       *shards,
			QueueSize:    *queue,
			Monitor:      monCfg,
			MaxSources:   *maxSources,
			StallTimeout: *stallTimeout,
			Obs:          agingmf.NewRegistry(),
			Events:       events,
		},
		TCPAddr:       *listen,
		HTTPAddr:      *httpAddr,
		MaxBadLines:   *maxBadLines,
		IdleTimeout:   *idleTimeout,
		SnapshotPath:  *snapshot,
		SnapshotEvery: *snapshotEvery,
		EnablePprof:   *pprofFlag,
	})
	if err != nil {
		return err
	}
	if err := srv.Start(); err != nil {
		return err
	}
	if n := srv.Registry().NumSources(); n > 0 {
		fmt.Fprintf(stdout, "restored %d sources from %s\n", n, *snapshot)
	}
	if a := srv.TCPAddr(); a != nil {
		fmt.Fprintf(stdout, "ingest: tcp://%s\n", a)
	}
	if a := srv.HTTPAddr(); a != nil {
		fmt.Fprintf(stdout, "api: http://%s/api/sources\n", a)
	}

	// Alert sinks drain their own bus subscriptions; a slow or dead sink
	// drops alerts (counted), never backpressures ingestion.
	ctx, cancelSinks := context.WithCancel(context.Background())
	defer cancelSinks()
	if alertEvents != nil {
		go agingmf.IngestJSONLSink(srv.Registry().Alerts().Subscribe("jsonl", 256), alertEvents)
	}
	if *webhook != "" {
		go agingmf.IngestWebhookSink(ctx, srv.Registry().Alerts().Subscribe("webhook", 256),
			agingmf.IngestWebhookConfig{URL: *webhook}, events)
	}

	if *selftest {
		return runSelfTest(ctx, srv, stdout, *stSources, *stSamples, *stConns, *stBatch, *seed)
	}

	// Serve until a termination signal, then drain: stop intake, feed
	// every queued sample to its monitor, write the final snapshot.
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	sig := <-sigc
	fmt.Fprintf(stdout, "received %v: draining and saving state\n", sig)
	events.Warn("signal", agingmf.EventFields{"signal": sig.String()})

	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		return err
	}
	reg := srv.Registry()
	fmt.Fprintf(stdout, "drained: %d sources, %d samples accepted, %d dropped, %d alerts\n",
		reg.NumSources(), reg.Accepted(), reg.Dropped(), reg.Alerts().Total())
	return nil
}

// runSelfTest exercises the daemon end-to-end and shuts it down.
func runSelfTest(ctx context.Context, srv *agingmf.IngestServer, stdout io.Writer, sources, samples, conns, batch int, seed int64) error {
	fmt.Fprintf(stdout, "selftest: %d sources x %d samples, batch %d, seed %d\n", sources, samples, batch, seed)
	rep, err := agingmf.RunIngestSelfTest(ctx, srv, agingmf.IngestSelfTestConfig{
		Sources:   sources,
		Samples:   samples,
		Conns:     conns,
		BatchSize: batch,
		Seed:      seed,
	})
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	serr := srv.Shutdown(shutCtx)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "selftest: sent %d, accepted %d, dropped %d, %d jumps, %d alerts, %d parity mismatches in %v\n",
		rep.SamplesSent, rep.Accepted, rep.Dropped, rep.Jumps, rep.Alerts,
		len(rep.ParityMismatches), rep.Elapsed.Round(time.Millisecond))
	if !rep.Ok() {
		return fmt.Errorf("selftest failed: accepted %d/%d, dropped %d, parity mismatches %v",
			rep.Accepted, rep.SamplesSent, rep.Dropped, rep.ParityMismatches)
	}
	fmt.Fprintln(stdout, "selftest: PASS")
	return serr
}

// openEvents opens one JSONL sink ("-" = stdout, "" = disabled). The
// returned Events is nil when disabled — every agingmf events API is
// nil-safe.
func openEvents(path string) (*agingmf.Events, func(), error) {
	switch path {
	case "":
		return nil, func() {}, nil
	case "-":
		return agingmf.NewEvents(os.Stdout, agingmf.LevelInfo), func() {}, nil
	default:
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("open events file %s: %w", path, err)
		}
		return agingmf.NewEvents(f, agingmf.LevelInfo), func() { f.Close() }, nil
	}
}
