package main

import (
	"testing"

	"agingmf/internal/runtime"
)

// TestFlagSurface pins the daemon's flag names and defaults: they are
// part of the CLI compatibility contract, and a rename or default change
// here must be a conscious, test-visible decision.
func TestFlagSurface(t *testing.T) {
	var opt options
	got := runtime.FlagDefaults(newFlagSet(&opt))
	want := map[string]string{
		"listen":                   ":9178",
		"http":                     ":9179",
		"shards":                   "8",
		"queue":                    "1024",
		"snapshot":                 "",
		"snapshot-every":           "1m0s",
		"stall-timeout":            "0s",
		"max-sources":              "65536",
		"max-bad-lines":            "100",
		"idle-timeout":             "0s",
		"history-limit":            "4096",
		"detectors":                "holder",
		"alerts":                   "",
		"events":                   "",
		"webhook":                  "",
		"trace-sample":             "0",
		"flight-recorder-depth":    "64",
		"pprof":                    "false",
		"rejuv-policy":             "",
		"cluster-addr":             "",
		"cluster-peers":            "",
		"selftest":                 "false",
		"selftest-sources":         "64",
		"selftest-samples":         "256",
		"selftest-conns":           "0",
		"selftest-batch":           "8",
		"selftest-binary":          "false",
		"selftest-binary-sources":  "4",
		"selftest-binary-samples":  "2097152",
		"selftest-binary-frame":    "4096",
		"selftest-cluster":         "false",
		"selftest-cluster-nodes":   "3",
		"selftest-cluster-sources": "100000",
		"selftest-cluster-samples": "24",
		"seed":                     "1",
	}
	for name, def := range want {
		gotDef, ok := got[name]
		if !ok {
			t.Errorf("flag -%s is missing", name)
			continue
		}
		if gotDef != def {
			t.Errorf("flag -%s default %q, want %q", name, gotDef, def)
		}
	}
	for name := range got {
		if _, ok := want[name]; !ok {
			t.Errorf("unexpected flag -%s (default %q): extend the surface table deliberately", name, got[name])
		}
	}
}
